"""Example 2.1 of the paper: rectangles as generalized tuples.

A rectangle named ``z`` with corners ``(a, b)`` and ``(c, d)`` is stored as
the generalized tuple

    R'(z, x, y)  with  (a <= x <= c)  AND  (b <= y <= d)

so the set of all pairs of distinct intersecting rectangles is expressible
without the case analysis the classical relational formulation needs
(compare the two queries in Section 2.1 of the paper).

The script

1. builds the generalized relation for a random rectangle set,
2. evaluates the intersection join naively and through the generalized
   one-dimensional index on ``x`` (Proposition 2.2: the index is an external
   interval-management structure over the x-projections),
3. shows a one-dimensional *range restriction* — the basic indexing
   operation of Section 2.1 — together with its I/O cost.

Run with::

    python examples/constraint_rectangles.py
"""

import random
import time

from repro import Engine, Range
from repro.constraints.rectangles import intersecting_pairs, rectangle_relation

N_RECTANGLES = 250
BLOCK_SIZE = 16


def build_rectangles(seed: int = 3):
    rnd = random.Random(seed)
    rects = []
    for i in range(N_RECTANGLES):
        a, b = rnd.uniform(0, 1000), rnd.uniform(0, 1000)
        rects.append((f"rect-{i}", a, b, a + rnd.uniform(5, 40), b + rnd.uniform(5, 40)))
    return rects


def main() -> None:
    rects = build_rectangles()
    relation = rectangle_relation(rects)
    print(f"generalized relation: {relation}")
    sample = relation.tuples[0]
    print(f"example tuple: {sample}\n")

    engine = Engine(block_size=BLOCK_SIZE)
    index = engine.create_constraint_index("rects", relation, attribute="x")

    # --- the intersection join of Example 2.1 ------------------------------- #
    start = time.perf_counter()
    naive = intersecting_pairs(relation)
    naive_s = time.perf_counter() - start

    start = time.perf_counter()
    indexed = intersecting_pairs(relation, index)
    indexed_s = time.perf_counter() - start

    assert set(map(frozenset, naive)) == set(map(frozenset, indexed))
    print(f"intersecting pairs: {len(indexed)}")
    print(f"  naive evaluation   (all pairs tested): {naive_s * 1000:7.1f} ms")
    print(f"  indexed evaluation (generalized keys): {indexed_s * 1000:7.1f} ms")
    print()

    # --- one-dimensional range restriction ---------------------------------- #
    lo, hi = 200.0, 260.0
    with engine.measure() as m:
        restricted = index.range_query(lo, hi)
    print(f"range restriction x in [{lo}, {hi}]:")
    print(f"  tuples in the restricted relation: {len(restricted)} of {len(relation)}")
    print(f"  I/Os: {m.ios}   (scanning the whole relation would read "
          f"{len(relation) // BLOCK_SIZE + 1} blocks)")

    # the same restriction as a lazy stream of tuples (the engine surface)
    lazy = engine.query("rects", Range(lo, hi))
    assert len(lazy.all()) == len(restricted) and lazy.ios == m.ios
    some_point = {"x": (lo + hi) / 2, "y": 500.0}
    print(f"  membership of {some_point}: {restricted.contains_point(some_point)}")

    # the result is itself a generalized relation: constraints stay symbolic
    example = restricted.tuples[0] if len(restricted) else None
    if example is not None:
        print(f"  example restricted tuple: {example}")


if __name__ == "__main__":
    main()
