"""Example: indexing validity intervals of a versioned (temporal) table.

This is the constraint-indexing use case the paper motivates in Section 2.1:
every record version is a generalized tuple whose projection on the time
attribute is one interval ``[valid_from, valid_to]``.  Indexing the table on
time is therefore *dynamic interval management*, which the metablock tree
solves with optimal I/O (Proposition 2.2 + Theorem 3.2).

The script builds a version history inside an :class:`~repro.engine.Engine`
(pass ``--file`` to run it against real pages in a :class:`FileDisk`), then
answers

* "as-of" queries   — which versions were valid at time ``t``           (stabbing), and
* "audit" queries   — which versions overlap a reporting window          (intersection),

through lazy :class:`~repro.engine.QueryResult` streams, comparing each
query's own I/O count against the paper's bound and a naive full scan.

Run with::

    python examples/temporal_versions.py [--file]
"""

import random
import sys

from repro import Engine, FileDisk, Interval, Range, SimulatedDisk, Stab

BLOCK_SIZE = 32
N_RECORDS = 4_000


def build_history(seed: int = 42):
    """Synthesize a version history: each record has a few consecutive versions."""
    rnd = random.Random(seed)
    versions = []
    for record_id in range(N_RECORDS // 4):
        t = rnd.uniform(0, 800)
        for version in range(4):
            duration = rnd.expovariate(1 / 40.0)
            versions.append(
                Interval(t, t + duration, payload=(f"record-{record_id}", f"v{version}"))
            )
            t += duration + rnd.uniform(0, 5)
    return versions


def main() -> None:
    versions = build_history()
    backend = (
        FileDisk(block_size=BLOCK_SIZE) if "--file" in sys.argv[1:]
        else SimulatedDisk(BLOCK_SIZE)
    )
    with Engine(backend) as engine:
        index = engine.create_interval_index("versions", versions)
        scan_blocks = -(-len(versions) // BLOCK_SIZE)

        print(f"version history: {len(versions)} versions, page size B={BLOCK_SIZE} "
              f"on {type(backend).__name__}")
        print(f"index size: {index.block_count()} blocks "
              f"(a plain heap file would be {scan_blocks})")
        print()

        print("as-of queries (stabbing):")
        print(f"{'time':>8} {'versions':>9} {'I/Os':>6} {'bound':>7} {'scan':>6}")
        times = (100.0, 400.0, 700.0, 950.0)
        for t, result in zip(times, engine.query_many(("versions", Stab(t)) for t in times)):
            alive = result.all()
            print(f"{t:8.0f} {len(alive):9d} {result.ios:6d} "
                  f"{result.bound:7.1f} {scan_blocks:6d}")
        print()

        print("audit queries (intersection with a reporting window):")
        print(f"{'window':>16} {'versions':>9} {'I/Os':>6} {'scan':>6}")
        for lo, hi in ((100, 130), (400, 480), (800, 900)):
            rows = engine.query("versions", Range(float(lo), float(hi)))
            print(f"[{lo:5d}, {hi:5d}] {len(rows.all()):9d} {rows.ios:6d} {scan_blocks:6d}")
        print()

        # the table keeps growing: new versions are appended as records change
        print("appending 500 new versions ...")
        rnd = random.Random(7)
        with engine.measure() as m:
            for i in range(500):
                start = rnd.uniform(900, 1000)
                engine.insert(
                    "versions",
                    Interval(start, start + rnd.uniform(1, 30), payload=(f"new-{i}", "v0")),
                )
        print(f"amortized insert cost: {m.ios / 500:.2f} I/Os per version")

        latest = engine.query("versions", Stab(990.0))
        print(f"as-of t=990 after the appends: {len(latest.all())} versions in {latest.ios} I/Os")


if __name__ == "__main__":
    main()
