"""Quickstart: the two headline indexes through the ``Engine`` facade.

Run with::

    python examples/quickstart.py

The example builds one :class:`~repro.engine.Engine`, hangs (1) an external
interval index over validity intervals and (2) a class index over a small
object hierarchy off it, runs a lazy query on each, and prints the exact
number of disk-block I/Os each query cost — the quantity all of the paper's
bounds are about.  Swap ``Engine()`` for ``Engine(FileDisk(block_size=16))``
and the identical workload runs against real pages on disk.
"""

from repro import ClassHierarchy, ClassObject, ClassRange, Engine, Interval, Range, Stab


def interval_quickstart(engine: Engine) -> None:
    print("=== external dynamic interval management (Sections 2.1 + 3) ===")
    intervals = [Interval(lo, lo + width, payload=f"job-{i}")
                 for i, (lo, width) in enumerate((i * 3.0, 10 + (i % 7)) for i in range(200))]
    index = engine.create_interval_index("jobs", intervals)

    engine.insert("jobs", Interval(300.0, 310.0, payload="hot-job"))

    active = engine.query("jobs", Stab(305.0))        # lazy: no I/O yet
    names = sorted(iv.payload for iv in active)       # streaming starts here
    print(f"jobs active at t=305: {len(names)} (e.g. {names[:3]} ...)")
    print(f"I/Os for the stabbing query: {active.ios}  "
          f"(bound {active.bound:.1f}; a full scan would read "
          f"{len(index) // engine.block_size + 1} blocks)")

    overlapping = engine.query("jobs", Range(100.0, 120.0))
    print(f"jobs overlapping [100, 120]: {len(overlapping.all())} in {overlapping.ios} I/Os")
    print(f"blocks used by the index: {index.block_count()}")
    print()


def class_quickstart(engine: Engine) -> None:
    print("=== class indexing (Sections 2.2 + 4) ===")
    hierarchy = ClassHierarchy()
    hierarchy.add_class("Person")
    hierarchy.add_class("Professor", "Person")
    hierarchy.add_class("Student", "Person")
    hierarchy.add_class("AssistantProfessor", "Professor")

    objects = []
    for i in range(300):
        cls = ("Person", "Professor", "Student", "AssistantProfessor")[i % 4]
        objects.append(ClassObject(key=30_000 + 500.0 * i, class_name=cls, payload=f"p{i}"))

    index = engine.create_class_index("people", hierarchy, objects, method="combined")

    professors = engine.query("people", ClassRange("Professor", 50_000, 90_000))
    print(f"professors (full extent) earning 50k-90k: {len(professors.all())}")
    print(f"I/Os for the full-extent query: {professors.ios} (bound {professors.bound:.1f})")
    print(f"blocks used by the index: {index.block_count()}")


if __name__ == "__main__":
    with Engine(block_size=16) as engine:
        interval_quickstart(engine)
        class_quickstart(engine)
