"""Quickstart: the two headline indexes in a dozen lines each.

Run with::

    python examples/quickstart.py

The example builds (1) an external interval index over validity intervals
and (2) a class index over a small object hierarchy, runs a query on each,
and prints the exact number of disk-block I/Os the queries cost on the
simulated disk — the quantity all of the paper's bounds are about.
"""

from repro import (
    ClassHierarchy,
    ClassIndexer,
    ClassObject,
    ExternalIntervalManager,
    Interval,
    SimulatedDisk,
)


def interval_quickstart() -> None:
    print("=== external dynamic interval management (Sections 2.1 + 3) ===")
    disk = SimulatedDisk(block_size=16)

    intervals = [Interval(lo, lo + width, payload=f"job-{i}")
                 for i, (lo, width) in enumerate((i * 3.0, 10 + (i % 7)) for i in range(200))]
    manager = ExternalIntervalManager(disk, intervals)

    manager.insert(Interval(300.0, 310.0, payload="hot-job"))

    with disk.measure() as m:
        active = manager.stabbing_query(305.0)
    print(f"jobs active at t=305: {len(active)} "
          f"(e.g. {sorted(iv.payload for iv in active)[:3]} ...)")
    print(f"I/Os for the stabbing query: {m.ios}  "
          f"(a full scan would read {len(manager) // disk.block_size + 1} blocks)")

    with disk.measure() as m:
        overlapping = manager.intersection_query(100.0, 120.0)
    print(f"jobs overlapping [100, 120]: {len(overlapping)} in {m.ios} I/Os")
    print(f"blocks used by the index: {manager.block_count()}")
    print()


def class_quickstart() -> None:
    print("=== class indexing (Sections 2.2 + 4) ===")
    hierarchy = ClassHierarchy()
    hierarchy.add_class("Person")
    hierarchy.add_class("Professor", "Person")
    hierarchy.add_class("Student", "Person")
    hierarchy.add_class("AssistantProfessor", "Professor")

    objects = []
    for i in range(300):
        cls = ("Person", "Professor", "Student", "AssistantProfessor")[i % 4]
        objects.append(ClassObject(key=30_000 + 500.0 * i, class_name=cls, payload=f"p{i}"))

    disk = SimulatedDisk(block_size=16)
    index = ClassIndexer(disk, hierarchy, objects, method="combined")

    with disk.measure() as m:
        professors = index.query("Professor", 50_000, 90_000)
    print(f"professors (full extent) earning 50k-90k: {len(professors)}")
    print(f"I/Os for the full-extent query: {m.ios}")
    print(f"blocks used by the index: {index.block_count()}")


if __name__ == "__main__":
    interval_quickstart()
    class_quickstart()
