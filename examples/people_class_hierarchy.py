"""Example 2.3 / 2.4 of the paper: people, professors and salary queries.

Objects (people) live in the class hierarchy

    Person
    ├── Professor
    │   └── AssistantProfessor
    └── Student

and "indexing classes" means answering salary-range queries against the
*full extent* of any class — e.g. all people in (the full extent of) class
``Professor`` with income between 85k and 95k (Example 2.4).

The script populates the hierarchy, runs the same queries through every
scheme the paper discusses, and prints the measured I/O and space numbers so
the trade-offs of Section 2.2 / Theorem 2.6 / Theorem 4.7 are visible side
by side.

Run with::

    python examples/people_class_hierarchy.py
"""

import random

from repro import ClassIndexer, ClassObject, ClassRange, Engine
from repro.classes.hierarchy import people_hierarchy

BLOCK_SIZE = 16
N_PEOPLE = 5_000


def build_population(seed: int = 1):
    rnd = random.Random(seed)
    hierarchy = people_hierarchy()
    salary_ranges = {
        "Person": (20_000, 80_000),
        "Student": (5_000, 30_000),
        "Professor": (70_000, 160_000),
        "AssistantProfessor": (60_000, 110_000),
    }
    weights = {"Person": 0.4, "Student": 0.35, "Professor": 0.15, "AssistantProfessor": 0.10}
    people = []
    classes = list(weights)
    for i in range(N_PEOPLE):
        cls = rnd.choices(classes, weights=[weights[c] for c in classes])[0]
        lo, hi = salary_ranges[cls]
        people.append(ClassObject(rnd.uniform(lo, hi), cls, payload=f"person-{i}"))
    return hierarchy, people


def main() -> None:
    hierarchy, people = build_population()
    queries = [
        ("Professor", 85_000, 95_000),
        ("Person", 100_000, 200_000),
        ("Student", 10_000, 20_000),
        ("AssistantProfessor", 60_000, 70_000),
    ]

    print(f"{N_PEOPLE} people over {len(hierarchy)} classes, page size B={BLOCK_SIZE}\n")
    header = f"{'scheme':>18} {'blocks':>8}" + "".join(f"{q[0][:10]:>14}" for q in queries)
    print(header + "   (I/Os per query)")

    reference = None
    for method in ClassIndexer.methods():
        engine = Engine(block_size=BLOCK_SIZE)
        index = engine.create_class_index("people", hierarchy, people, method=method)
        costs = []
        answers = []
        for result in engine.query_many(
            ("people", ClassRange(cls, lo, hi)) for cls, lo, hi in queries
        ):
            answers.append(sorted(o.payload for o in result))
            costs.append(result.ios)
        if reference is None:
            reference = answers
        assert answers == reference, "every scheme must return identical answers"
        row = f"{method:>18} {index.block_count():>8}" + "".join(f"{c:>14}" for c in costs)
        print(row)

    print("\nanswer sizes:", [len(a) for a in reference])
    print("\nreading the table:")
    print(" * 'single'      — one B+-tree over everyone; pays for every person in the salary")
    print("                   range, whatever their class (no output compaction).")
    print(" * 'extent'      — one B+-tree per class extent; queries visit one tree per")
    print("                   descendant class.")
    print(" * 'full-extent' — one B+-tree per class full extent; optimal queries, but the")
    print("                   most space and the slowest updates.")
    print(" * 'simple'      — Theorem 2.6: log2(c) collections per object.")
    print(" * 'combined'    — Theorem 4.7: query cost independent of the hierarchy size.")


if __name__ == "__main__":
    main()
