"""Tour of the query algebra, multi-index Collections, and the planner.

Builds one logical set of ~5000 "reservation" intervals, registers it as a
multi-index Collection (interval manager + endpoint B+-trees), and walks
through composed queries: for each, it prints the plan the cost-aware
planner chose, the paper's predicted bound, and the observed I/O count —
then cross-checks the answer against the brute-force ``matches`` oracle.

Run: ``python examples/planner_tour.py``
"""

from repro import EndpointRange, Engine, Not, Param, Range, Stab
from repro.workloads import random_intervals

N = 5_000
B = 16


def show(engine, coll, title, q):
    plan = engine.explain("reservations", q)
    result = engine.query("reservations", q)
    got = result.all()
    want = coll.oracle(q)
    assert {iv.payload for iv in got} == {iv.payload for iv in want}, title
    assert result.plan == plan
    print(f"--- {title}")
    print(f"    query: {q!r}")
    print("    " + plan.describe().replace("\n", "\n    "))
    print(f"    t={len(got)}  observed ios={result.ios}  "
          f"predicted bound(t)={result.bound:.1f}")
    print()


def main():
    print("query algebra & cost-aware planner tour")
    print(f"n={N} intervals, B={B}\n")

    engine = Engine(block_size=B)
    intervals = random_intervals(N, seed=42, mean_length=25.0)
    coll = engine.create_collection("reservations", intervals)
    print(f"{coll!r}\n")

    show(engine, coll, "stabbing query -> interval manager (Theorem 3.2)",
         Stab(500.0))

    show(engine, coll, "endpoint range -> endpoint B+-tree (not an overlap scan)",
         EndpointRange("low", 100.0, 120.0))

    show(engine, coll, "conjunction -> cheapest pushdown + residual filter",
         Stab(500.0) & EndpointRange("low", 450.0, 500.0))

    show(engine, coll, "disjunction -> deduplicated union of subplans",
         Stab(100.0) | Stab(900.0))

    show(engine, coll, "negation alone -> full scan through the oracle",
         Not(Range(0.0, 950.0)))

    show(engine, coll, "modifiers: order_by + limit on top of any plan",
         (Range(400.0, 600.0) & ~Stab(500.0)).order_by("low").limit(8))

    # cursor pagination preserves laziness
    result = engine.query("reservations", Range(0.0, 1000.0))
    first_page = next(result.pages(100))
    print(f"pagination: first page of {len(first_page)} records cost "
          f"{result.ios} I/Os (full drain would cost more)")

    # prepared queries: plan once, bind per call, skip planning entirely
    stab = engine.prepare("reservations", Stab(Param("x")))
    for x in (250.0, 500.0, 750.0):
        hits = stab.run(x=x)
        want = coll.oracle(Stab(x))
        assert {iv.payload for iv in hits.all()} == {iv.payload for iv in want}
        print(f"prepared stab(x={x}): t={hits.count} ios={hits.ios} "
              f"served from cached plan: {stab.last_from_cache}")
    info = coll.planner.cache_info()
    print(f"plan cache: {info['entries']} entries, {info['hits']} hits, "
          f"{info['misses']} misses (generation {info['generation']})")


if __name__ == "__main__":
    main()
