"""A miniature version of the full evaluation: I/O scaling of the main result.

Prints the per-query I/O cost of the static metablock tree as ``n`` grows,
next to the bound ``log_B n + t/B`` of Theorem 3.2 and the cost of a naive
external scan, then does the same for the class indexes as the hierarchy
grows (Theorem 2.6 vs. Theorem 4.7).  The full parameter sweeps live in
``benchmarks/``; this script gives the shape of the result in a few seconds.

Run with::

    python examples/io_scaling_study.py
"""

import random

from repro import ClassRange, Engine, SimulatedDisk, StaticMetablockTree
from repro.analysis.complexity import (
    combined_class_query_bound,
    metablock_query_bound,
    simple_class_query_bound,
)
from repro.workloads import interval_points, random_class_objects, random_hierarchy, random_intervals

B = 16


def interval_scaling() -> None:
    print("=== Theorem 3.2: diagonal-corner query I/O vs n (B = 16) ===")
    print(f"{'n':>8} {'avg t':>8} {'I/Os':>8} {'bound':>8} {'ratio':>7} {'scan':>7}")
    rnd = random.Random(1)
    queries = [rnd.uniform(0, 1000) for _ in range(20)]
    for n in (1_000, 4_000, 16_000, 32_000):
        disk = SimulatedDisk(B)
        tree = StaticMetablockTree(disk, interval_points(random_intervals(n, seed=2, mean_length=20)))
        with disk.measure() as m:
            total = sum(len(tree.diagonal_query(q)) for q in queries)
        t_avg = total / len(queries)
        ios = m.ios / len(queries)
        bound = metablock_query_bound(n, B, t_avg)
        print(f"{n:>8} {t_avg:>8.1f} {ios:>8.1f} {bound:>8.1f} {ios / bound:>7.2f} {n / B:>7.0f}")
    print()


def class_scaling() -> None:
    print("=== Theorem 2.6 vs Theorem 4.7: class-index query I/O vs c (n = 4000, B = 16) ===")
    print(f"{'c':>6} {'simple I/Os':>12} {'2.6 bound':>10} {'combined I/Os':>14} {'4.7 bound':>10}")
    n = 4_000
    for c in (4, 16, 64, 256):
        hierarchy = random_hierarchy(c, seed=3)
        objects = random_class_objects(hierarchy, n, seed=4)
        rnd = random.Random(5)
        # query classes high in the hierarchy: their full extents span many
        # classes, which is where the log2(c) factor of Theorem 2.6 shows up
        by_size = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
        queries = []
        for i in range(15):
            cls = by_size[i % max(1, len(by_size) // 4)]
            lo = rnd.uniform(0, 900)
            queries.append((cls, lo, lo + 60))

        costs = {}
        outputs = 0
        for name in ("simple", "combined"):
            engine = Engine(block_size=B)
            engine.create_class_index("people", hierarchy, objects, method=name)
            batch = engine.query_many(
                ("people", ClassRange(cls, lo, hi)) for cls, lo, hi in queries
            )
            outputs = sum(len(r.all()) for r in batch)
            costs[name] = sum(r.ios for r in batch) / len(queries)
        t_avg = outputs / len(queries)
        print(
            f"{c:>6} {costs['simple']:>12.1f} "
            f"{simple_class_query_bound(n, B, c, t_avg):>10.1f} "
            f"{costs['combined']:>14.1f} "
            f"{combined_class_query_bound(n, B, t_avg):>10.1f}"
        )
    print()
    print("the 'simple' scheme touches O(log2 c) B+-trees per query, so its cost (and its")
    print("bound) grows with the hierarchy size, while the 'combined' scheme's cost tracks")
    print("the c-independent bound of Theorem 4.7.  At these moderate sizes both answer in")
    print("a handful of I/Os; the separation is in how the two bounds scale.")


if __name__ == "__main__":
    interval_scaling()
    class_scaling()
