"""Serving tour: one engine, one server, four concurrent clients.

Spins up an in-process :class:`~repro.server.ReproServer` over a
collection of 4,000 intervals, then lets four client threads loose on it
through real sockets — prepared stabbing queries, live inserts and
deletes, every answer checked against the brute-force oracle while the
interleaving happens.  Finishes with the per-session I/O ledger the
``stats`` wire command reports: each session's queries were attributed
to it individually (thread-local sinks on the shared backend), so the
paper's per-query bounds stay checkable per request even under
concurrency.

Run::

    python examples/server_tour.py
"""

from __future__ import annotations

import threading
import time

from repro import Engine, Interval, Param, SimulatedDisk, Stab
from repro.server import ReproClient, ReproServer
from repro.workloads import random_intervals

N = 4_000
CLIENTS = 4
QUERIES = 25


def main() -> None:
    engine = Engine(SimulatedDisk(16))
    base = random_intervals(N, seed=11, mean_length=15.0)
    engine.create_collection("base", base)

    print(f"== serving {N} intervals to {CLIENTS} concurrent clients ==")
    with ReproServer(engine) as server:
        host, port = server.address
        print(f"server listening on {host}:{port}\n")

        results = {}
        errors = []

        def client_worker(tid: int) -> None:
            try:
                with ReproClient(host, port) as db:
                    handle = db.prepare("base", Stab(Param("x")))
                    checked = ios = hits = 0
                    for i in range(QUERIES):
                        x = 25.0 + 40.0 * tid + 9.0 * i
                        res = handle.run(x=x)
                        want = {iv.uid for iv in base if Stab(x).matches(iv)}
                        assert {r.uid for r in res.records} == want, (tid, x)
                        checked += 1
                        ios += res.ios
                        hits += res.count
                    # a write turn in the middle of everyone else's reads
                    stored = db.insert(
                        "base", Interval(2000.0 + tid, 2001.0 + tid))
                    assert db.query("base", Stab(2000.5 + tid)).count == 1
                    assert db.delete("base", stored)["removed"] == 1
                    results[tid] = (checked, ios, hits)
            except Exception as exc:  # noqa: BLE001
                errors.append((tid, exc))

        threads = [
            threading.Thread(target=client_worker, args=(t,))
            for t in range(CLIENTS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        if errors:
            raise SystemExit(f"client failures: {errors}")

        print("per-client results (every answer oracle-checked):")
        total_q = total_ios = 0
        for tid in sorted(results):
            checked, ios, hits = results[tid]
            total_q += checked
            total_ios += ios
            print(f"  client {tid}: {checked} queries, {hits} hits, "
                  f"{ios} I/Os ({ios / checked:.1f} ios/query)")
        print(f"\naggregate: {total_q} queries, "
              f"{total_ios / total_q:.1f} ios/query\n")

        with ReproClient(host, port) as db:
            # a closed client socket retires its server session
            # asynchronously (the handler thread notices EOF on its own
            # schedule); poll briefly so the ledger below is complete
            deadline = time.monotonic() + 5.0
            while True:
                stats = db.stats()
                if stats["retired"]["sessions"] >= CLIENTS:
                    break
                if time.monotonic() > deadline:
                    print("warning: ledger incomplete — "
                          f"{stats['retired']['sessions']}/{CLIENTS} sessions "
                          "retired before the poll deadline")
                    break
                time.sleep(0.05)
            print("server-side I/O attribution (wire `stats`):")
            for sid, row in stats["sessions"].items():
                print(f"  live session {sid}: requests={row['requests']} "
                      f"reads={row['reads']} total={row['total']}")
            retired = stats["retired"]
            print(f"  retired sessions: {retired['sessions']} "
                  f"({retired['requests']} requests, "
                  f"{retired['ios']} attributed I/Os)")
            engine_row = stats["engine"]
            print(f"global: reads={engine_row['reads']} "
                  f"writes={engine_row['writes']} "
                  f"blocks={engine_row['blocks']}")
    print("\nserver tour ok")


if __name__ == "__main__":
    main()
