"""Tour of the lifecycle-complete write path and the persistent catalog.

Walks the whole life of a small "bookings" database:

1. **bulk load** a collection (one reorganisation, not n tree inserts),
2. mutate it — ``insert`` / ``delete`` / ``update`` one record at a time,
3. group writes with a **WriteBatch** (``with coll.batch(): ...``),
4. **close** the engine on a real page file — the catalog is serialized
   through the storage backend — and **reopen** it as a second process
   would, asserting the answers (and the I/O bounds) survived the trip.

Run: ``python examples/lifecycle_tour.py``
"""

import os
import tempfile

from repro import Engine, Stab
from repro.interval import Interval
from repro.io import FileDisk
from repro.workloads import random_intervals

N = 2_000
B = 16


def report(title, result):
    hits = result.all()
    print(f"--- {title}")
    print(f"    t={len(hits)}  observed ios={result.ios}  "
          f"predicted bound(t)={result.bound:.1f}")
    return hits


def build_database(path):
    """First process: bulk-load, mutate, batch, close (which checkpoints)."""
    engine = Engine(FileDisk(path, block_size=B))
    bookings = engine.create_collection("bookings")

    loaded = bookings.bulk_load(random_intervals(N, seed=21, mean_length=20.0))
    print(f"bulk-loaded {loaded} bookings in one reorganisation "
          f"({bookings.block_count()} blocks)\n")

    report("stabbing query after the load", engine.query("bookings", Stab(500.0)))

    # single-record writes: delete one hit, update another, add a walk-in
    hits = engine.query("bookings", Stab(500.0)).all()
    cancelled, rebooked = hits[0], hits[1]
    bookings.delete(cancelled)
    bookings.update(rebooked, Interval(rebooked.low, rebooked.high + 5.0))
    bookings.insert(Interval(499.0, 501.0, payload="walk-in"))

    # grouped writes: a WriteBatch defers and flushes runs of inserts as bulk
    with bookings.batch(max_size=256):
        for iv in random_intervals(300, seed=22, mean_length=10.0):
            bookings.insert(iv)
    print(f"\nafter writes: {bookings.live_count} live records")

    print("\ncatalog to be persisted on close():")
    for entry in engine.catalog():
        print(f"  {entry['name']}: kind={entry['kind']} records={entry['records']}")

    final = report("\nstabbing query before close", engine.query("bookings", Stab(500.0)))
    engine.close()  # checkpoint -> sidecar -> reopenable database
    return sorted(iv.uid for iv in final)


def reopen_database(path, want_uids):
    """Second process: Engine.open restores the catalog without re-inserting."""
    engine = Engine.open(path)
    print(f"\nreopened {path}: indexes={engine.names()}")
    result = engine.query("bookings", Stab(500.0))
    hits = report("same stabbing query after reopen", result)
    assert sorted(iv.uid for iv in hits) == want_uids, "answers changed across reopen"
    assert result.ios <= 4 * result.bound + 8, "I/O bound violated after reopen"
    print("    answers and I/O bound identical across the reopen")
    engine.close()


def main():
    print("write path & persistence tour")
    print(f"n={N} bookings, B={B}\n")
    path = os.path.join(tempfile.mkdtemp(prefix="repro-lifecycle-"), "bookings.pages")
    want = build_database(path)
    reopen_database(path, want)
    print("\nlifecycle tour ok")


if __name__ == "__main__":
    main()
