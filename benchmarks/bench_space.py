"""E12 — space accounting for every structure in the repository.

For each structure the paper gives a space bound in disk blocks; this
benchmark builds them all on the same workload sizes and reports
blocks-used / bound so EXPERIMENTS.md can quote a single table.
"""

import pytest

from repro.analysis.complexity import linear_space_bound, simple_class_space_bound
from repro.btree import BPlusTree
from repro.classes import CombinedClassIndex, FullExtentPerClassIndex, SimpleClassIndex
from repro.core import ExternalIntervalManager
from repro.io import SimulatedDisk
from repro.metablock import StaticMetablockTree, ThreeSidedMetablockTree
from repro.pst import ExternalPST
from repro.workloads import (
    interval_points,
    random_class_objects,
    random_hierarchy,
    random_intervals,
    random_points,
)

from benchmarks.conftest import record

N = 8_000
B = 16
C = 64


def test_space_usage_all_structures(benchmark):
    intervals = random_intervals(N, seed=91)
    points = interval_points(intervals)
    square_points = random_points(N, seed=92)
    hierarchy = random_hierarchy(C, seed=93)
    objects = random_class_objects(hierarchy, N, seed=94)

    rows = {}

    disk = SimulatedDisk(B)
    rows["btree"] = BPlusTree.bulk_load(disk, ((iv.low, iv) for iv in intervals)).block_count()

    disk = SimulatedDisk(B)
    rows["metablock_static"] = StaticMetablockTree(disk, points).block_count()

    disk = SimulatedDisk(B)
    rows["external_pst"] = ExternalPST(disk, square_points).block_count()

    disk = SimulatedDisk(B)
    rows["three_sided_metablock"] = ThreeSidedMetablockTree(disk, square_points).block_count()

    disk = SimulatedDisk(B)
    rows["interval_manager"] = ExternalIntervalManager(disk, intervals, dynamic=False).block_count()

    disk = SimulatedDisk(B)
    rows["class_simple"] = SimpleClassIndex(disk, hierarchy, objects).block_count()

    disk = SimulatedDisk(B)
    rows["class_combined"] = CombinedClassIndex(disk, hierarchy, objects).block_count()

    disk = SimulatedDisk(B)
    rows["class_full_extent_per_class"] = FullExtentPerClassIndex(
        disk, hierarchy, objects
    ).block_count()

    linear = linear_space_bound(N, B)
    logc = simple_class_space_bound(N, B, C)
    record(
        benchmark,
        n=N,
        B=B,
        c=C,
        linear_bound_blocks=linear,
        log_c_bound_blocks=logc,
        **{f"{name}_blocks": blocks for name, blocks in rows.items()},
        **{f"{name}_per_linear_bound": round(blocks / linear, 2) for name, blocks in rows.items()},
    )
    benchmark.pedantic(
        lambda: StaticMetablockTree(SimulatedDisk(B), points[:2000]).block_count(),
        rounds=1,
        iterations=1,
    )
