"""Multi-client serving benchmark — emits ``BENCH_concurrency.json``.

Boots a ``repro serve`` subprocess (or drives a running one via
``--connect``), then replays the concurrent scenario matrix of
:mod:`repro.workloads.concurrent` from N closed-loop client threads:
read-only thread scaling on the stab/endpoint shapes, a mixed
insert-query-delete workload, and the shared-collection snapshot
consistency check — every response verified against the brute-force
oracle while the interleaving happens.

The **sharded legs** (``--cluster-sweep``) additionally boot
range-partitioned ``repro cluster`` processes per shard count and measure
write throughput from 16 closed-loop clients — the gate requires the
rate to rise monotonically with shard count (S shards = S independent
commit pipelines) — plus a range-partition pruning leg whose stab
queries must touch at most 2 of the shards while staying oracle-exact.
``--cluster N`` instead routes the whole base matrix through a spawned
N-shard cluster (the protocol is identical, so the driver cannot tell).

Usage::

    python -m benchmarks.bench_concurrency --out BENCH_concurrency.json
    python -m benchmarks.bench_concurrency --smoke --check       # CI gate
    python -m benchmarks.bench_concurrency --connect 127.0.0.1:7411 --smoke
    python -m benchmarks.bench_concurrency --cluster-sweep 1 2 4 --check

``--check`` exits non-zero on any oracle mismatch, bound violation,
unclean shutdown, non-monotonic sharded write scaling or un-pruned
range read; ``--require-scaling X`` additionally enforces the read-only
speedup (used when regenerating the committed numbers, not in CI smoke,
where wall-clock on a loaded runner is noise).
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads import concurrent as C


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--queries", type=int, default=60,
                        help="read queries per client thread")
    parser.add_argument("--threads", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--write-ops", type=int, default=12)
    parser.add_argument("--think-ms", type=float, default=5.0,
                        help="closed-loop client think time (ms)")
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="drive an already-running server instead of "
                             "spawning one")
    parser.add_argument("--cluster", type=int, default=None, metavar="SHARDS",
                        help="spawn a hash cluster with this many shards and "
                             "run the base matrix through its router")
    parser.add_argument("--strategy", choices=["hash", "range"],
                        default="hash", help="[--cluster] partition strategy")
    parser.add_argument("--cluster-sweep", type=int, nargs="+", default=None,
                        metavar="SHARDS",
                        help="run the sharded write-scaling legs over these "
                             "shard counts (plus the range-pruning leg)")
    parser.add_argument("--cluster-clients", type=int, default=16,
                        help="closed-loop clients per sharded leg")
    parser.add_argument("--no-shutdown", action="store_true",
                        help="[--connect] leave the server running (the "
                             "caller owns its lifecycle, e.g. a SIGTERM "
                             "drain check)")
    parser.add_argument("--out", default=None, metavar="JSON")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on oracle/bound/shutdown failures")
    parser.add_argument("--require-scaling", type=float, default=None,
                        metavar="X")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI: n=600, 8 queries, "
                             "threads 1+2, 4 write ops")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n, args.queries, args.write_ops = 600, 8, 4
        args.threads = [1, 2]

    proc = None
    if args.connect:
        host, port_s = args.connect.rsplit(":", 1)
        host, port = host, int(port_s)
    elif args.cluster:
        proc, host, port = C.spawn_cluster(
            shards=args.cluster, strategy=args.strategy,
            block_size=args.block_size,
        )
    else:
        proc, host, port = C.spawn_server(block_size=args.block_size)
    print(f"bench concurrency: n={args.n} queries/thread={args.queries} "
          f"threads={args.threads} think={args.think_ms}ms "
          f"server={host}:{port}"
          + (f" cluster={args.cluster}x{args.strategy}" if args.cluster else ""))
    clean = None
    try:
        payload = C.run_matrix(
            host, port,
            n=args.n, queries=args.queries, thread_counts=tuple(args.threads),
            write_ops=args.write_ops, think_ms=args.think_ms,
            shutdown=not args.no_shutdown,
        )
    finally:
        if proc is not None:
            clean = C.wait_for_clean_exit(proc)
            print(f"  server exit clean: {clean}")
    if clean is not None:
        payload["summary"]["server_exit_clean"] = clean

    if args.cluster_sweep:
        print(f"bench concurrency: sharded legs over {args.cluster_sweep} "
              f"shards, {args.cluster_clients} clients")
        rows, sharded = C.run_sharded_legs(
            shard_counts=tuple(args.cluster_sweep),
            clients=args.cluster_clients,
            write_ops=args.write_ops * 3,
            block_size=args.block_size,
        )
        payload["scenarios"].extend(rows)
        payload["summary"]["sharded"] = sharded
        payload["summary"]["oracle_ok"] &= sharded["oracle_ok"]
        payload["summary"]["bound_ok"] &= sharded["bound_ok"]

    C.report(payload, out=args.out)
    if args.check:
        return C.run_gate(payload, require_scaling=args.require_scaling)
    return 0


if __name__ == "__main__":
    sys.exit(main())
