"""Multi-client serving benchmark — emits ``BENCH_concurrency.json``.

Boots a ``repro serve`` subprocess (or drives a running one via
``--connect``), then replays the concurrent scenario matrix of
:mod:`repro.workloads.concurrent` from N closed-loop client threads:
read-only thread scaling on the stab/endpoint shapes, a mixed
insert-query-delete workload, and the shared-collection snapshot
consistency check — every response verified against the brute-force
oracle while the interleaving happens.

Usage::

    python -m benchmarks.bench_concurrency --out BENCH_concurrency.json
    python -m benchmarks.bench_concurrency --smoke --check       # CI gate
    python -m benchmarks.bench_concurrency --connect 127.0.0.1:7411 --smoke

``--check`` exits non-zero on any oracle mismatch, bound violation or
unclean shutdown; ``--require-scaling X`` additionally enforces the
read-only speedup (used when regenerating the committed numbers, not in
CI smoke, where wall-clock on a loaded runner is noise).
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads import concurrent as C


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--queries", type=int, default=60,
                        help="read queries per client thread")
    parser.add_argument("--threads", type=int, nargs="+", default=[1, 2, 4])
    parser.add_argument("--write-ops", type=int, default=12)
    parser.add_argument("--think-ms", type=float, default=5.0,
                        help="closed-loop client think time (ms)")
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--connect", default=None, metavar="HOST:PORT",
                        help="drive an already-running server instead of "
                             "spawning one")
    parser.add_argument("--out", default=None, metavar="JSON")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 on oracle/bound/shutdown failures")
    parser.add_argument("--require-scaling", type=float, default=None,
                        metavar="X")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI: n=600, 8 queries, "
                             "threads 1+2, 4 write ops")
    args = parser.parse_args(argv)

    if args.smoke:
        args.n, args.queries, args.write_ops = 600, 8, 4
        args.threads = [1, 2]

    proc = None
    if args.connect:
        host, port_s = args.connect.rsplit(":", 1)
        host, port = host, int(port_s)
    else:
        proc, host, port = C.spawn_server(block_size=args.block_size)
    print(f"bench concurrency: n={args.n} queries/thread={args.queries} "
          f"threads={args.threads} think={args.think_ms}ms "
          f"server={host}:{port}")
    clean = None
    try:
        payload = C.run_matrix(
            host, port,
            n=args.n, queries=args.queries, thread_counts=tuple(args.threads),
            write_ops=args.write_ops, think_ms=args.think_ms,
            shutdown=True,
        )
    finally:
        if proc is not None:
            clean = C.wait_for_clean_exit(proc)
            print(f"  server exit clean: {clean}")
    if clean is not None:
        payload["summary"]["server_exit_clean"] = clean
    C.report(payload, out=args.out)
    if args.check:
        return C.run_gate(payload, require_scaling=args.require_scaling)
    return 0


if __name__ == "__main__":
    sys.exit(main())
