"""E1 — Theorem 3.2: static metablock tree diagonal-corner queries.

Regenerates the evaluation the paper states analytically: query I/O
``O(log_B n + t/B)`` and space ``O(n/B)`` blocks, swept over ``n``, ``B`` and
the output size ``t``.  The ``ios_per_bound`` column in the benchmark
extra-info should stay roughly constant across the sweep (see
EXPERIMENTS.md, experiment E1).
"""

import random

import pytest

from repro.analysis.complexity import linear_space_bound, metablock_query_bound
from repro.io import SimulatedDisk
from repro.metablock import StaticMetablockTree
from repro.workloads import interval_points, random_intervals

from benchmarks.conftest import measure_ios, record

_CACHE = {}


def build_tree(n, block_size, mean_length=30.0):
    key = (n, block_size, mean_length)
    if key not in _CACHE:
        disk = SimulatedDisk(block_size)
        points = interval_points(random_intervals(n, seed=7, mean_length=mean_length))
        _CACHE[key] = (disk, StaticMetablockTree(disk, points), points)
    return _CACHE[key]


@pytest.mark.parametrize("n", [2_000, 8_000, 32_000])
def test_query_io_scaling_with_n(benchmark, n):
    """Query cost vs. n at fixed B and selectivity (paper: grows like log_B n)."""
    B = 16
    disk, tree, points = build_tree(n, B)
    rnd = random.Random(1)
    queries = [rnd.uniform(0, 1000) for _ in range(20)]

    def run():
        total = 0
        for q in queries:
            total += len(tree.diagonal_query(q))
        return total

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = metablock_query_bound(n, B, t_avg)
    record(
        benchmark,
        n=n,
        B=B,
        avg_output=t_avg,
        ios_per_query=ios / len(queries),
        bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
        space_blocks=tree.block_count(),
        space_per_bound=tree.block_count() / linear_space_bound(n, B),
    )
    benchmark(run)


@pytest.mark.parametrize("block_size", [8, 16, 32])
def test_query_io_scaling_with_block_size(benchmark, block_size):
    """Query cost vs. B at fixed n (paper: larger pages help, cost ~ log_B n + t/B)."""
    n = 8_000
    disk, tree, points = build_tree(n, block_size)
    rnd = random.Random(2)
    queries = [rnd.uniform(0, 1000) for _ in range(20)]

    def run():
        return sum(len(tree.diagonal_query(q)) for q in queries)

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = metablock_query_bound(n, block_size, t_avg)
    record(
        benchmark,
        n=n,
        B=block_size,
        ios_per_query=ios / len(queries),
        bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
    )
    benchmark(run)


@pytest.mark.parametrize("selectivity", ["point", "narrow", "wide"])
def test_query_io_scaling_with_output_size(benchmark, selectivity):
    """Query cost vs. output size t (paper: the t/B term dominates for large t)."""
    n, B = 16_000, 16
    mean_length = {"point": 0.5, "narrow": 20.0, "wide": 300.0}[selectivity]
    disk, tree, points = build_tree(n, B, mean_length)
    rnd = random.Random(3)
    queries = [rnd.uniform(100, 900) for _ in range(10)]

    def run():
        return sum(len(tree.diagonal_query(q)) for q in queries)

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = metablock_query_bound(n, B, t_avg)
    record(
        benchmark,
        n=n,
        B=B,
        selectivity=selectivity,
        avg_output=t_avg,
        ios_per_query=ios / len(queries),
        bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
    )
    benchmark(run)


def test_construction(benchmark):
    """Cost of building the static structure (not a headline bound; context only)."""
    points = interval_points(random_intervals(8_000, seed=9))

    def build():
        return StaticMetablockTree(SimulatedDisk(16), points)

    tree = benchmark(build)
    record(benchmark, n=8_000, B=16, space_blocks=tree.block_count())
