"""E8 — Lemma 4.1: blocked priority search tree for 3-sided queries.

Measured query I/O divided by ``log2 n + t/B`` should stay constant as n
grows; space stays at ``O(n/B)`` blocks.
"""

import random

import pytest

from repro.analysis.complexity import external_pst_query_bound, linear_space_bound
from repro.io import SimulatedDisk
from repro.pst import ExternalPST
from repro.workloads import random_points

from benchmarks.conftest import measure_ios, record


@pytest.mark.parametrize("n", [2_000, 8_000, 32_000])
def test_three_sided_query_io(benchmark, n):
    B = 16
    disk = SimulatedDisk(B)
    points = random_points(n, seed=51)
    pst = ExternalPST(disk, points)
    rnd = random.Random(52)
    queries = []
    for _ in range(25):
        x1 = rnd.uniform(0, 900)
        queries.append((x1, x1 + 60.0, rnd.uniform(0, 1000)))

    def run():
        return sum(len(pst.query_3sided(x1, x2, y0)) for x1, x2, y0 in queries)

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = external_pst_query_bound(n, B, t_avg)
    record(
        benchmark,
        n=n,
        B=B,
        avg_output=t_avg,
        ios_per_query=ios / len(queries),
        bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
        space_blocks=pst.block_count(),
        space_per_bound=pst.block_count() / linear_space_bound(n, B),
    )
    benchmark(run)
