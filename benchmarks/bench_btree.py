"""E11 — the B+-tree reference point (Section 1.1).

The paper measures everything against external one-dimensional range
searching with B+-trees: space ``O(n/B)``, query ``O(log_B n + t/B)``,
update ``O(log_B n)``.  This benchmark reproduces those reference numbers on
the same simulated disk the other structures use.
"""

import random

import pytest

from repro.analysis.complexity import btree_query_bound, linear_space_bound
from repro.btree import BPlusTree
from repro.io import SimulatedDisk

from benchmarks.conftest import measure_ios, record


@pytest.mark.parametrize("n", [2_000, 16_000, 64_000])
def test_range_query_io(benchmark, n):
    B = 16
    disk = SimulatedDisk(B)
    tree = BPlusTree.bulk_load(disk, ((float(i), i) for i in range(n)))
    rnd = random.Random(71)
    queries = [(lo, lo + n * 0.01) for lo in (rnd.uniform(0, n * 0.99) for _ in range(25))]

    def run():
        return sum(len(tree.range_search(lo, hi)) for lo, hi in queries)

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = btree_query_bound(n, B, t_avg)
    record(
        benchmark,
        n=n,
        B=B,
        avg_output=t_avg,
        ios_per_query=ios / len(queries),
        bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
        space_blocks=tree.block_count(),
        space_per_bound=tree.block_count() / linear_space_bound(n, B),
    )
    benchmark(run)


@pytest.mark.parametrize("n", [2_000, 16_000])
def test_insert_io(benchmark, n):
    B = 16
    disk = SimulatedDisk(B)
    tree = BPlusTree.bulk_load(disk, ((float(i), i) for i in range(n)))
    rnd = random.Random(72)
    keys = [rnd.uniform(0, n) for _ in range(500)]
    _, ios = measure_ios(disk, lambda: [tree.insert(k, None) for k in keys])
    record(
        benchmark,
        n=n,
        B=B,
        ios_per_insert=ios / len(keys),
        bound=btree_query_bound(n, B, 0),
    )
    benchmark.pedantic(lambda: [tree.insert(rnd.uniform(0, n), None) for _ in range(100)],
                       rounds=2, iterations=1)
