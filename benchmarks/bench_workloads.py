"""E9 — the workload scenario matrix: prepared vs ad-hoc planning.

``python -m benchmarks.bench_workloads`` runs the deterministic scenario
matrix of :mod:`repro.workloads.scenarios` (stab-heavy, endpoint-heavy,
class-hierarchy, Zipf-skewed, mixed read/write — each in ad-hoc and
prepared planner modes) and writes machine-readable
``BENCH_workloads.json`` at the repository root (``--out`` overrides).

``--check`` (implied by ``--smoke``) turns the run into a perf gate: it
fails — exit status 1 — when the prepared path's ops/sec drops below
``--threshold`` × the ad-hoc path on the stab-heavy scenario, or when the
two paths stop doing identical I/O.  CI runs ``--smoke`` (a small ``n``
with the gate on) so the prepared-query win stays guarded.
"""

import json
from pathlib import Path

from repro.workloads.scenarios import report, run_gate, run_matrix

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_workloads.json"


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="emit BENCH_workloads.json (scenario matrix, prepared vs ad-hoc)"
    )
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--repeat", type=int, default=3)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--check", action="store_true",
        help="exit 1 if the prepared path regresses below the ad-hoc path",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.8,
        help="minimum prepared/adhoc ops-per-sec ratio --check enforces "
             "(below 1.0 on purpose: CI wall-clock is noisy at smoke "
             "sizes, and a real regression lands far lower; timings are "
             "best-of --repeat)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="small-n CI mode: n=2000, 10 queries, extra repeats, gate enabled",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n = min(args.n, 2_000)
        args.queries = min(args.queries, 10)
        args.repeat = max(args.repeat, 5)  # smoke passes are cheap; damp noise
        args.check = True

    payload = run_matrix(
        n=args.n, block_size=args.block_size,
        queries=args.queries, repeat=args.repeat,
    )
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    report(payload)
    return run_gate(payload, args.threshold) if args.check else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI / by hand
    raise SystemExit(main())
