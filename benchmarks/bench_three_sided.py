"""E9 — Lemma 4.4: 3-sided metablock variant.

Query I/O should track ``log_B n + log2 B + t/B`` (better base than the
blocked PST of Lemma 4.1 for the logarithmic term), with linear space and
polylogarithmic amortized inserts.
"""

import random

import pytest

from repro.analysis.complexity import (
    external_pst_query_bound,
    linear_space_bound,
    three_sided_query_bound,
)
from repro.io import SimulatedDisk
from repro.metablock import ThreeSidedMetablockTree
from repro.pst import ExternalPST
from repro.workloads import random_points

from benchmarks.conftest import measure_ios, record


def _queries(count=20, seed=61):
    rnd = random.Random(seed)
    out = []
    for _ in range(count):
        x1 = rnd.uniform(0, 900)
        out.append((x1, x1 + 60.0, rnd.uniform(0, 1000)))
    return out


@pytest.mark.parametrize("n", [2_000, 8_000, 24_000])
def test_three_sided_query_io(benchmark, n):
    B = 16
    disk = SimulatedDisk(B)
    points = random_points(n, seed=62)
    tree = ThreeSidedMetablockTree(disk, points)
    queries = _queries()

    def run():
        return sum(len(tree.query_3sided(x1, x2, y0)) for x1, x2, y0 in queries)

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = three_sided_query_bound(n, B, t_avg)
    record(
        benchmark,
        n=n,
        B=B,
        avg_output=t_avg,
        ios_per_query=ios / len(queries),
        bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
        space_blocks=tree.block_count(),
        space_per_bound=tree.block_count() / linear_space_bound(n, B),
    )
    benchmark(run)


def test_three_sided_vs_blocked_pst(benchmark):
    """Head-to-head at the same workload (the Lemma 4.1 -> Lemma 4.4 improvement)."""
    n, B = 16_000, 16
    points = random_points(n, seed=63)
    queries = _queries()

    disk_a = SimulatedDisk(B)
    metablock = ThreeSidedMetablockTree(disk_a, points)
    _, ios_metablock = measure_ios(
        disk_a, lambda: [metablock.query_3sided(*q) for q in queries]
    )

    disk_b = SimulatedDisk(B)
    pst = ExternalPST(disk_b, points)
    _, ios_pst = measure_ios(disk_b, lambda: [pst.query_3sided(*q) for q in queries])

    record(
        benchmark,
        n=n,
        B=B,
        metablock_ios_per_query=ios_metablock / len(queries),
        blocked_pst_ios_per_query=ios_pst / len(queries),
        metablock_bound=three_sided_query_bound(n, B, 50),
        pst_bound=external_pst_query_bound(n, B, 50),
    )
    benchmark(lambda: [metablock.query_3sided(*q) for q in queries])


def test_insert_cost(benchmark):
    n, B = 8_000, 16
    disk = SimulatedDisk(B)
    tree = ThreeSidedMetablockTree(disk, random_points(n, seed=64))
    extra = random_points(400, seed=65)
    _, ios = measure_ios(disk, lambda: tree.insert_many(extra))
    record(benchmark, n=n, B=B, ios_per_insert=ios / len(extra))
    more = random_points(50, seed=66)
    benchmark.pedantic(lambda: tree.insert_many(more), rounds=1, iterations=1)
