"""E2 — Proposition 3.3: the metablock tree meets the lower bound.

The lower-bound instance is the staircase ``{(x, x+1)}`` with queries at
``(x + 1/2, x + 1/2)``: every query returns exactly one point, so any
structure must pay ``Ω(log_B n)`` I/Os per query and ``Ω(n/B)`` blocks.  The
measured metablock-tree cost divided by ``log_B n + t/B`` should stay a
small constant as ``n`` grows — i.e. the structure is within a constant
factor of the information-theoretic optimum.
"""

import pytest

from repro.analysis.complexity import linear_space_bound, metablock_query_bound
from repro.io import SimulatedDisk
from repro.metablock import StaticMetablockTree
from repro.workloads import diagonal_staircase_points

from benchmarks.conftest import measure_ios, record


@pytest.mark.parametrize("n", [1_000, 8_000, 32_000])
def test_staircase_queries_meet_lower_bound(benchmark, n):
    B = 16
    disk = SimulatedDisk(B)
    tree = StaticMetablockTree(disk, diagonal_staircase_points(n))
    queries = [x + 0.5 for x in range(1, n, max(1, n // 50))][:50]

    def run():
        total = 0
        for q in queries:
            total += len(tree.diagonal_query(q))
        return total

    reported, ios = measure_ios(disk, run)
    assert reported == len(queries)  # each staircase query returns exactly one point
    per_query = ios / len(queries)
    bound = metablock_query_bound(n, B, 1)
    record(
        benchmark,
        n=n,
        B=B,
        ios_per_query=per_query,
        lower_bound=bound,
        ios_per_bound=per_query / bound,
        space_blocks=tree.block_count(),
        space_per_lower_bound=tree.block_count() / linear_space_bound(n, B),
    )
    benchmark(run)
