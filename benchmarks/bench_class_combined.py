"""E6 — Theorem 4.7: the combined class index removes the log2 c query factor.

Sweeps the hierarchy size ``c`` at fixed ``n`` and compares per-query I/O of
the simple index (Theorem 2.6, cost growing with ``log2 c``) against the
combined rake-and-contract index (Theorem 4.7, cost independent of ``c`` up
to the additive ``log2 B``).  Also reports the replication factor
(copies per object), which both schemes bound by ``log2 c``.
"""

import random

import pytest

from repro.analysis.complexity import combined_class_query_bound, simple_class_query_bound
from repro.classes import CombinedClassIndex, SimpleClassIndex
from repro.io import SimulatedDisk
from repro.workloads import chain_hierarchy, random_class_objects, random_hierarchy

from benchmarks.conftest import measure_ios, record

N_OBJECTS = 6_000
B = 16


def _run_queries(disk, index, hierarchy, seed):
    rnd = random.Random(seed)
    # favour classes whose full extents span many classes: that is where the
    # log2(c) factor of the simple scheme bites
    by_size = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
    candidates = by_size[: max(4, len(by_size) // 4)]
    queries = []
    for _ in range(20):
        cls = rnd.choice(candidates)
        lo = rnd.uniform(0, 900)
        queries.append((cls, lo, lo + 50.0))

    def run():
        return sum(len(index.query(cls, lo, hi)) for cls, lo, hi in queries)

    reported, ios = measure_ios(disk, run)
    return run, reported / len(queries), ios / len(queries)


@pytest.mark.parametrize("c", [8, 64, 256])
@pytest.mark.parametrize("scheme_name", ["simple", "combined"])
def test_query_io_vs_hierarchy_size(benchmark, c, scheme_name):
    hierarchy = random_hierarchy(c, seed=21)
    objects = random_class_objects(hierarchy, N_OBJECTS, seed=22)
    disk = SimulatedDisk(B)
    scheme = SimpleClassIndex if scheme_name == "simple" else CombinedClassIndex
    index = scheme(disk, hierarchy, objects)
    run, t_avg, ios_per_query = _run_queries(disk, index, hierarchy, seed=23)
    bound = (
        simple_class_query_bound(N_OBJECTS, B, c, t_avg)
        if scheme_name == "simple"
        else combined_class_query_bound(N_OBJECTS, B, t_avg)
    )
    record(
        benchmark,
        scheme=scheme_name,
        c=c,
        n=N_OBJECTS,
        B=B,
        avg_output=t_avg,
        ios_per_query=ios_per_query,
        bound=bound,
        ios_per_bound=ios_per_query / bound,
        space_blocks=index.block_count(),
        copies_per_object=getattr(index, "copies_per_object", lambda: 1)(),
    )
    benchmark(run)


@pytest.mark.parametrize("depth", [8, 32, 128])
def test_degenerate_hierarchy_uses_three_sided_structure(benchmark, depth):
    """Lemma 4.3: a chain hierarchy is answered by one 3-sided structure."""
    hierarchy = chain_hierarchy(depth)
    objects = random_class_objects(hierarchy, 4_000, seed=31)
    disk = SimulatedDisk(B)
    index = CombinedClassIndex(disk, hierarchy, objects)
    run, t_avg, ios_per_query = _run_queries(disk, index, hierarchy, seed=32)
    bound = combined_class_query_bound(4_000, B, t_avg)
    record(
        benchmark,
        c=depth,
        n=4_000,
        B=B,
        avg_output=t_avg,
        ios_per_query=ios_per_query,
        bound=bound,
        ios_per_bound=ios_per_query / bound,
        pieces=len(index.decomposition.pieces),
        copies_per_object=index.copies_per_object(),
    )
    benchmark(run)


def test_combined_index_insert_cost(benchmark):
    """Theorem 4.7 amortized insert: O(log2 c (log_B n + (log_B n)^2/B))."""
    hierarchy = random_hierarchy(64, seed=41)
    objects = random_class_objects(hierarchy, 4_000, seed=42)
    disk = SimulatedDisk(B)
    index = CombinedClassIndex(disk, hierarchy, objects)
    extra = random_class_objects(hierarchy, 300, seed=43)
    _, ios = measure_ios(disk, lambda: [index.insert(o) for o in extra])
    record(benchmark, c=64, n=4_000, B=B, ios_per_insert=ios / len(extra))
    more = random_class_objects(hierarchy, 50, seed=44)
    benchmark.pedantic(lambda: [index.insert(o) for o in more], rounds=1, iterations=1)
