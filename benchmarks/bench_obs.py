"""Observability overhead benchmark — emits ``BENCH_obs.json``.

The tracing instrumentation brackets the hottest paths in the engine
(the commit kernel, the planner, every session request), so its cost
when **disabled** — the shipping default — must be provably negligible.
This benchmark measures the prepared-stab read path (the engine's
fastest request, hence the worst case for relative overhead) in three
modes, interleaved pass-by-pass so machine noise hits all three alike:

* ``bypass``   — ``repro.obs.tracer.BYPASS = True``: every ``span()``
  call returns the shared no-op before even reading the ``ACTIVE``
  flag.  The closest measurable stand-in for "the instrumentation was
  never added" (the seed baseline the gate compares against).
* ``disabled`` — the shipping default (``ACTIVE = False``): each
  instrumented site pays one module-global flag test plus the shared
  null context manager.
* ``enabled``  — full span trees on every request (``obs.enable()``).

Gate (``--check``): the *disabled* mode must stay within ``--threshold``
percent (default 3%) of *bypass* throughput.  The *enabled* overhead is
reported but not gated — turning tracing on is an explicit choice.

Usage::

    python -m benchmarks.bench_obs --out BENCH_obs.json --check
"""

import argparse
import json
import random
import sys
import time
from typing import Any, Dict, List

from repro.durability.wal import bench_fragment as wal_bench_fragment
from repro.engine import Engine, Param, Stab
from repro.io import SimulatedDisk
from repro.obs import tracer as obs_tracer
from repro.workloads import random_intervals

MODES = ("bypass", "disabled", "enabled")


def _set_mode(mode: str) -> None:
    obs_tracer.BYPASS = mode == "bypass"
    obs_tracer.ACTIVE = mode == "enabled"


def run_bench(
    n: int = 10_000,
    block_size: int = 16,
    queries: int = 200,
    repeat: int = 9,
) -> Dict[str, Any]:
    engine = Engine(SimulatedDisk(block_size))
    session = engine.session()
    session.create_collection(
        "c", random_intervals(n, seed=5, mean_length=20.0), dynamic=False
    )
    prepared = session.prepare("c", Stab(Param("x")))
    rnd = random.Random(6)
    points = [rnd.uniform(0, 1000) for _ in range(queries)]

    def one_pass() -> int:
        return sum(len(session.run(prepared, x=x)) for x in points)

    one_pass()  # warm-up: plan cache primed, allocator warmed

    best = {mode: float("inf") for mode in MODES}
    outputs = {}
    try:
        # interleave the modes inside each repeat so CPU-frequency and
        # scheduler drift cannot bias one mode's best-of
        for _ in range(repeat):
            for mode in MODES:
                _set_mode(mode)
                start = time.perf_counter()
                outputs[mode] = one_pass()
                best[mode] = min(best[mode], time.perf_counter() - start)
    finally:
        _set_mode("disabled")

    assert len(set(outputs.values())) == 1, "modes must compute identical answers"

    rows = [
        {
            "mode": mode,
            "queries": queries,
            "best_seconds": round(best[mode], 6),
            "ops_per_sec": round(queries / best[mode], 1),
        }
        for mode in MODES
    ]
    overhead = {
        mode: round((best[mode] / best["bypass"] - 1.0) * 100.0, 2)
        for mode in ("disabled", "enabled")
    }
    return {
        "bench": "obs",
        "params": {
            "n": n, "block_size": block_size,
            "queries": queries, "repeat": repeat,
        },
        "generated_by": "python -m benchmarks.bench_obs",
        "modes": rows,
        "summary": {
            "overhead_disabled_pct": overhead["disabled"],
            "overhead_enabled_pct": overhead["enabled"],
            "tracer": obs_tracer.TRACER.stats_dict(),
        },
        # the uniform durability block every BENCH_*.json carries (zeros:
        # this is a read-path benchmark on a WAL-less engine)
        "wal": wal_bench_fragment(engine),
    }


def gate_failures(payload: Dict[str, Any], threshold: float) -> List[str]:
    """Disabled-tracer overhead must stay within ``threshold`` percent."""
    overhead = payload["summary"]["overhead_disabled_pct"]
    if overhead > threshold:
        return [
            f"disabled-tracer overhead {overhead}% exceeds {threshold}% "
            "of the bypass (never-instrumented) baseline"
        ]
    return []


def main(argv: Any = None) -> int:
    parser = argparse.ArgumentParser(
        description="emit BENCH_obs.json (tracing overhead on the "
                    "prepared-stab path)"
    )
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--block-size", type=int, default=16)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--repeat", type=int, default=9)
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="max disabled-vs-bypass overhead percent "
                             "the --check gate allows")
    parser.add_argument("--out", default=None, metavar="JSON")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when the overhead gate fails")
    args = parser.parse_args(argv)

    payload = run_bench(
        n=args.n, block_size=args.block_size,
        queries=args.queries, repeat=args.repeat,
    )
    for row in payload["modes"]:
        print(f"  {row['mode']:9s} ops/s={row['ops_per_sec']:10.1f} "
              f"(best {row['best_seconds']}s)")
    summary = payload["summary"]
    print(f"  overhead : disabled={summary['overhead_disabled_pct']:+.2f}%  "
          f"enabled={summary['overhead_enabled_pct']:+.2f}%  "
          f"(gate: disabled <= {args.threshold}%)")
    if args.out:
        with open(args.out, "w") as fh:
            print(json.dumps(payload, indent=2, sort_keys=True), file=fh)
        print(f"  wrote {args.out}")
    if args.check:
        failures = gate_failures(payload, args.threshold)
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
