"""E10 — Section 2.1 / Example 2.1: indexing constraints.

Measures the rectangle-intersection query of Example 2.1 evaluated

* naively (every pair of generalized tuples tested for joint
  satisfiability — the "add the constraint to every tuple" strategy the
  paper calls trivial but inefficient), and
* through the generalized one-dimensional index on ``x`` (only tuples whose
  generalized keys intersect are tested),

plus the I/O cost of one-dimensional range restriction on the generalized
relation.
"""

import random

import pytest

from repro.constraints import GeneralizedOneDimensionalIndex
from repro.constraints.rectangles import intersecting_pairs, rectangle_relation
from repro.io import SimulatedDisk

from benchmarks.conftest import measure_ios, record


def _rectangles(n, seed=81, side=20.0, domain=1000.0):
    rnd = random.Random(seed)
    rects = []
    for i in range(n):
        a, b = rnd.uniform(0, domain), rnd.uniform(0, domain)
        rects.append((f"r{i}", a, b, a + rnd.uniform(1, side), b + rnd.uniform(1, side)))
    return rects


@pytest.mark.parametrize("n", [100, 300])
def test_rectangle_join_naive_vs_indexed(benchmark, n):
    relation = rectangle_relation(_rectangles(n))
    disk = SimulatedDisk(16)
    index = GeneralizedOneDimensionalIndex(disk, relation, "x")

    import time

    start = time.perf_counter()
    naive_pairs = intersecting_pairs(relation)
    naive_seconds = time.perf_counter() - start

    start = time.perf_counter()
    indexed_pairs = intersecting_pairs(relation, index)
    indexed_seconds = time.perf_counter() - start

    assert set(map(frozenset, naive_pairs)) == set(map(frozenset, indexed_pairs))
    record(
        benchmark,
        n_rectangles=n,
        pairs=len(indexed_pairs),
        naive_seconds=round(naive_seconds, 4),
        indexed_seconds=round(indexed_seconds, 4),
        speedup=round(naive_seconds / max(indexed_seconds, 1e-9), 2),
    )
    benchmark.pedantic(lambda: intersecting_pairs(relation, index), rounds=2, iterations=1)


def test_range_restriction_io(benchmark):
    n = 4_000
    relation = rectangle_relation(_rectangles(n, side=10.0))
    disk = SimulatedDisk(16)
    index = GeneralizedOneDimensionalIndex(disk, relation, "x")
    rnd = random.Random(82)
    windows = [(lo, lo + 15.0) for lo in (rnd.uniform(0, 980) for _ in range(20))]

    def run():
        return sum(len(index.range_query(lo, hi, prune=False)) for lo, hi in windows)

    reported, ios = measure_ios(disk, run)
    record(
        benchmark,
        n_tuples=n,
        avg_selected=reported / len(windows),
        ios_per_query=ios / len(windows),
        full_scan_blocks=n / 16,
    )
    benchmark(run)
