"""E8 — the Engine facade: batch throughput, backends, planner vs. hand-picked.

Two harnesses share this module:

* the pytest-benchmark suite (``python -m pytest benchmarks/bench_engine.py``)
  measures wall-clock next to I/O counts, as before; and
* ``python -m benchmarks.bench_engine`` runs a deterministic workload matrix
  and writes machine-readable ``BENCH_engine.json`` at the repository root
  (``--out`` overrides), recording **ops/sec and I/Os per query** for the
  planner-chosen plan next to a hand-picked physical index, so the perf
  trajectory is tracked across PRs.
"""

import json
import random
import time
from pathlib import Path

import pytest

from repro.durability.wal import bench_fragment as wal_bench_fragment
from repro.engine import EndpointRange, Engine, Range, Stab
from repro.io import FileDisk, SimulatedDisk
from repro.workloads import random_intervals

from benchmarks.conftest import measure_ios, record

N = 10_000
B = 16
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _queries(count=25):
    rnd = random.Random(6)
    return [rnd.uniform(0, 1000) for _ in range(count)]


def _build(backend):
    engine = Engine(backend)
    engine.create_interval_index("intervals", random_intervals(N, seed=5, mean_length=20.0),
                                 dynamic=False)
    return engine


@pytest.mark.parametrize("backend_kind", ["memory", "file"])
def test_engine_batch_stabbing(benchmark, backend_kind, tmp_path):
    backend = (
        FileDisk(str(tmp_path / "pages.bin"), block_size=B)
        if backend_kind == "file"
        else SimulatedDisk(B)
    )
    engine = _build(backend)
    queries = _queries()

    def run():
        batch = engine.query_many(("intervals", Stab(q)) for q in queries)
        return sum(len(r.all()) for r in batch)

    reported, ios = measure_ios(engine.disk, run)
    record(benchmark, backend=backend_kind, n=N, B=B,
           avg_output=reported / len(queries), ios_per_query=ios / len(queries))
    benchmark(run)
    engine.close()


def test_engine_first_hit_laziness(benchmark):
    engine = _build(SimulatedDisk(B))
    queries = _queries()

    def run_first():
        batch = engine.query_many(("intervals", Stab(q)) for q in queries)
        return sum(1 for r in batch if r.first() is not None)

    def run_full():
        batch = engine.query_many(("intervals", Stab(q)) for q in queries)
        return sum(len(r.all()) for r in batch)

    _, first_ios = measure_ios(engine.disk, run_first)
    _, full_ios = measure_ios(engine.disk, run_full)
    record(benchmark, n=N, B=B,
           first_hit_ios=first_ios / len(queries),
           full_drain_ios=full_ios / len(queries))
    assert first_ios <= full_ios
    benchmark(run_first)


def test_planner_endpoint_beats_handpicked_overlap(benchmark):
    """Planner routes ``EndpointRange`` to the endpoint B+-tree; the naive
    hand-picked alternative (overlap query on the interval manager +
    post-filter) reads strictly more blocks."""
    engine = Engine(SimulatedDisk(B))
    coll = engine.create_collection(
        "c", random_intervals(N, seed=5, mean_length=20.0), dynamic=False
    )
    windows = [(lo, lo + 5.0) for lo in _queries()]

    def run_planner():
        total = 0
        for lo, hi in windows:
            total += len(engine.query("c", EndpointRange("low", lo, hi)).all())
        return total

    def run_handpicked():
        manager = coll._accessors[0].index
        total = 0
        for lo, hi in windows:
            hits = [iv for iv in manager.query(Range(lo, hi)) if lo <= iv.low <= hi]
            total += len(hits)
        return total

    t_planner, planner_ios = measure_ios(engine.disk, run_planner)
    t_hand, hand_ios = measure_ios(engine.disk, run_handpicked)
    assert t_planner == t_hand
    assert planner_ios < hand_ios
    record(benchmark, n=N, B=B,
           planner_ios_per_query=planner_ios / len(windows),
           handpicked_ios_per_query=hand_ios / len(windows))
    benchmark(run_planner)


# --------------------------------------------------------------------------- #
# the machine-readable trajectory file
# --------------------------------------------------------------------------- #
def _timed(fn, repeat=3):
    """(result, passes_per_sec) — best of ``repeat`` full passes."""
    best = float("inf")
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return result, (1.0 / best if best > 0 else float("inf"))


def collect(n=N, b=B, queries=25):
    """The scenario matrix: each entry reports ops/sec + I/Os per query."""
    engine = Engine(SimulatedDisk(b))
    intervals = random_intervals(n, seed=5, mean_length=20.0)
    coll = engine.create_collection("c", intervals, dynamic=False)
    engine.create_interval_index("plain", intervals, dynamic=False)
    points = _queries(queries)
    windows = [(x, x + 5.0) for x in points]
    manager = coll._accessors[0].index

    def batches(make_query, name):
        def run():
            return sum(len(engine.query(name, make_query(i)).all())
                       for i in range(queries))
        return run

    scenarios = [
        ("stab/handpicked", batches(lambda i: Stab(points[i]), "plain")),
        ("stab/planner", batches(lambda i: Stab(points[i]), "c")),
        ("endpoint/planner",
         batches(lambda i: EndpointRange("low", *windows[i]), "c")),
        ("endpoint/handpicked-overlap-filter",
         lambda: sum(
             len([iv for iv in manager.query(Range(lo, hi)) if lo <= iv.low <= hi])
             for lo, hi in windows
         )),
        ("and-composed/planner",
         batches(lambda i: Stab(points[i]) & EndpointRange("low",
                 points[i] - 10.0, points[i]), "c")),
        ("or-composed/planner",
         batches(lambda i: Stab(points[i]) | Stab(1000.0 - points[i]), "c")),
    ]

    results = []
    for name, run in scenarios:
        (outputs, ios), passes_per_sec = _timed(
            lambda run=run: measure_ios(engine.disk, run)
        )
        results.append({
            "name": name,
            "queries": queries,
            "avg_output": round(outputs / queries, 2),
            "ios_per_query": round(ios / queries, 2),
            "ops_per_sec": round(passes_per_sec * queries, 1),
        })
    return {
        "benchmark": "engine",
        "n": n,
        "block_size": b,
        "generated_by": "python -m benchmarks.bench_engine",
        "results": results,
        "write_path": write_path_comparison(n=n, b=b, m=max(queries * 40, 200)),
        # the uniform durability block every BENCH_*.json carries (zeros:
        # the read matrix runs WAL-less; bench_durability owns real values)
        "wal": wal_bench_fragment(engine),
    }


def write_path_comparison(n=N, b=B, m=2_000):
    """``bulk_load`` vs repeated ``insert`` of ``m`` records (I/Os + wall time).

    Each mode gets its own engine over a fresh ``n``-record collection, so
    the two runs start from identical structures; records are distinct
    objects (fresh uids) per run, exactly as a real ingest would present
    them.  One-shot timing — the write is not idempotent.
    """
    out = []
    for mode in ("insert", "bulk_load"):
        engine = Engine(SimulatedDisk(b))
        coll = engine.create_collection(
            "c", random_intervals(n, seed=5, mean_length=20.0)
        )
        batch = random_intervals(m, seed=99, mean_length=20.0)

        def run(mode=mode, coll=coll, batch=batch):
            if mode == "insert":
                for iv in batch:
                    coll.insert(iv)
            else:
                coll.bulk_load(batch)
            return len(batch)

        start = time.perf_counter()
        _, ios = measure_ios(engine.disk, run)
        elapsed = time.perf_counter() - start
        out.append({
            "mode": mode,
            "base_n": n,
            "records": m,
            "ios": ios,
            "ios_per_record": round(ios / m, 2),
            "wall_s": round(elapsed, 4),
            "records_per_sec": round(m / elapsed, 1) if elapsed > 0 else float("inf"),
        })
    return out


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(
        description="emit BENCH_engine.json (planner vs. hand-picked index)"
    )
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--block-size", type=int, default=B)
    parser.add_argument("--queries", type=int, default=25)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    args = parser.parse_args(argv)

    payload = collect(args.n, args.block_size, args.queries)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}")
    for row in payload["results"]:
        print(f"  {row['name']:40s} ios/q={row['ios_per_query']:8.2f} "
              f"ops/s={row['ops_per_sec']:10.1f}")
    for row in payload["write_path"]:
        print(f"  write/{row['mode']:34s} ios/rec={row['ios_per_record']:7.2f} "
              f"rec/s={row['records_per_sec']:10.1f}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI / by hand
    raise SystemExit(main())
