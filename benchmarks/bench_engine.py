"""E8 — the Engine facade: batch throughput and backend comparison.

Measures the same stabbing workload through ``Engine.query_many``

* on the in-memory :class:`SimulatedDisk` vs. the file-backed
  :class:`FileDisk` (identical I/O *counts*; the file backend adds real
  (de)serialization cost, which is the wall-clock delta pytest-benchmark
  records), and
* draining results fully vs. taking only the first hit of each query —
  the laziness dividend: partially-consumed streams pay only for the
  blocks they touched.
"""

import random

import pytest

from repro.engine import Engine, Stab
from repro.io import FileDisk, SimulatedDisk
from repro.workloads import random_intervals

from benchmarks.conftest import measure_ios, record

N = 10_000
B = 16


def _queries(count=25):
    rnd = random.Random(6)
    return [rnd.uniform(0, 1000) for _ in range(count)]


def _build(backend):
    engine = Engine(backend)
    engine.create_interval_index("intervals", random_intervals(N, seed=5, mean_length=20.0),
                                 dynamic=False)
    return engine


@pytest.mark.parametrize("backend_kind", ["memory", "file"])
def test_engine_batch_stabbing(benchmark, backend_kind, tmp_path):
    backend = (
        FileDisk(str(tmp_path / "pages.bin"), block_size=B)
        if backend_kind == "file"
        else SimulatedDisk(B)
    )
    engine = _build(backend)
    queries = _queries()

    def run():
        batch = engine.query_many(("intervals", Stab(q)) for q in queries)
        return sum(len(r.all()) for r in batch)

    reported, ios = measure_ios(engine.disk, run)
    record(benchmark, backend=backend_kind, n=N, B=B,
           avg_output=reported / len(queries), ios_per_query=ios / len(queries))
    benchmark(run)
    engine.close()


def test_engine_first_hit_laziness(benchmark):
    engine = _build(SimulatedDisk(B))
    queries = _queries()

    def run_first():
        batch = engine.query_many(("intervals", Stab(q)) for q in queries)
        return sum(1 for r in batch if r.first() is not None)

    def run_full():
        batch = engine.query_many(("intervals", Stab(q)) for q in queries)
        return sum(len(r.all()) for r in batch)

    _, first_ios = measure_ios(engine.disk, run_first)
    _, full_ios = measure_ios(engine.disk, run_full)
    record(benchmark, n=N, B=B,
           first_hit_ios=first_ios / len(queries),
           full_drain_ios=full_ios / len(queries))
    assert first_ios <= full_ios
    benchmark(run_first)
