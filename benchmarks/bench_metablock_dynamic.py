"""E3 — Theorem 3.7: semi-dynamic metablock tree insertions.

Measures amortized insert I/O against the bound ``log_B n + (log_B n)^2/B``
and verifies queries stay at the static cost after a long insert sequence.
"""

import random

import pytest

from repro.analysis.complexity import metablock_insert_bound, metablock_query_bound
from repro.io import SimulatedDisk
from repro.metablock import AugmentedMetablockTree
from repro.workloads import interval_points, random_intervals

from benchmarks.conftest import measure_ios, record


@pytest.mark.parametrize("n", [1_000, 4_000, 16_000])
def test_amortized_insert_io(benchmark, n):
    B = 16
    base = interval_points(random_intervals(n, seed=1))
    extra = interval_points(random_intervals(500, seed=2))
    disk = SimulatedDisk(B)
    tree = AugmentedMetablockTree(disk, base)

    _, ios = measure_ios(disk, lambda: tree.insert_many(extra))
    per_insert = ios / len(extra)
    bound = metablock_insert_bound(n, B)
    record(
        benchmark,
        n=n,
        B=B,
        ios_per_insert=per_insert,
        bound=bound,
        ios_per_bound=per_insert / bound,
    )

    def insert_batch():
        t = AugmentedMetablockTree(SimulatedDisk(B), base)
        t.insert_many(extra[:100])
        return t

    benchmark.pedantic(insert_batch, rounds=2, iterations=1)


@pytest.mark.parametrize("n", [2_000, 8_000])
def test_query_after_incremental_build(benchmark, n):
    """The structure built purely by inserts must still answer queries optimally."""
    B = 16
    points = interval_points(random_intervals(n, seed=3, mean_length=20.0))
    disk = SimulatedDisk(B)
    tree = AugmentedMetablockTree(disk)
    tree.insert_many(points)
    rnd = random.Random(4)
    queries = [rnd.uniform(0, 1000) for _ in range(20)]

    def run():
        return sum(len(tree.diagonal_query(q)) for q in queries)

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = metablock_query_bound(n, B, t_avg)
    record(
        benchmark,
        n=n,
        B=B,
        ios_per_query=ios / len(queries),
        bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
    )
    benchmark(run)
