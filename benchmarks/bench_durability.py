"""Durability benchmark — emits ``BENCH_durability.json``.

Four legs, each measuring one claim the durability subsystem makes:

* **commit throughput** — single-threaded acknowledged inserts against a
  file-backed engine, WAL fsync on vs. off vs. no WAL at all, so the
  price of the durability barrier is a number, not a vibe;
* **group commit** — N threads committing concurrently; the gate checks
  ``fsyncs / commit < 1``, i.e. that concurrent commits actually share
  barriers instead of queueing one fsync each;
* **crash recovery** — a child process performs acknowledged commits and
  ``os._exit``\\ s; the parent reopens (WAL-tail replay) and verifies
  **zero acknowledged commits lost**, reporting the recovery wall time;
* **MVCC snapshot reads** — reader latency on one collection while a
  bulk writer hammers another: the gate checks the contended p50 stays
  within a small factor of the idle p50 (readers never wait for other
  indexes' commits or for any fsync).

Usage::

    python -m benchmarks.bench_durability --out BENCH_durability.json
    python -m benchmarks.bench_durability --smoke --check       # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from typing import Any, Dict, List

from repro import Engine, Interval, Stab
from repro.durability.wal import bench_fragment as wal_bench_fragment
from repro.io import FileDisk

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")


def _percentile(values: List[float], fraction: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    k = min(len(ordered) - 1, max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[k]


def _intervals(n: int, *, seed: int = 0) -> List[Interval]:
    import random

    rnd = random.Random(seed)
    out = []
    for i in range(n):
        low = rnd.uniform(0.0, 1000.0)
        out.append(Interval(low, low + rnd.uniform(1.0, 40.0), payload=i))
    return out


# ---------------------------------------------------------------------- #
# leg 1: commit throughput (the price of the barrier)
# ---------------------------------------------------------------------- #
def leg_commit_throughput(workdir: str, n: int) -> Dict[str, Any]:
    rows = []
    for mode in ("no-wal", "wal-nosync", "wal-fsync"):
        path = os.path.join(workdir, f"commit-{mode}.pages")
        engine = Engine(FileDisk(path, block_size=16))
        if mode == "wal-nosync":
            engine.attach_wal(fsync=False)
        elif mode == "wal-fsync":
            engine.attach_wal()
        engine.create_collection("c", dynamic=True)
        batch = _intervals(n, seed=1)
        start = time.perf_counter()
        for iv in batch:
            engine.insert("c", iv)
        elapsed = time.perf_counter() - start
        stats = engine.io_stats().snapshot()
        rows.append(
            {
                "mode": mode,
                "commits": n,
                "seconds": round(elapsed, 4),
                "commits_per_sec": round(n / elapsed, 1),
                "fsyncs": stats.fsyncs,
                "wal_records": 0 if engine.wal is None else engine.wal.record_count,
            }
        )
        engine.close()
    return {"n": n, "modes": rows}


# ---------------------------------------------------------------------- #
# leg 2: group commit (barriers amortize under concurrency)
# ---------------------------------------------------------------------- #
def leg_group_commit(workdir: str, threads: int, per_thread: int) -> Dict[str, Any]:
    path = os.path.join(workdir, "group.pages")
    engine = Engine(FileDisk(path, block_size=16))
    engine.attach_wal()
    engine.create_collection("c", dynamic=True)
    batches = [
        _intervals(per_thread, seed=100 + t) for t in range(threads)
    ]
    start = time.perf_counter()

    def committer(tid: int) -> None:
        session = engine.session()
        for iv in batches[tid]:
            session.insert("c", iv)

    workers = [
        threading.Thread(target=committer, args=(t,)) for t in range(threads)
    ]
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    elapsed = time.perf_counter() - start
    wal = engine.wal
    total = threads * per_thread
    out = {
        "threads": threads,
        "commits": total,
        "seconds": round(elapsed, 4),
        "commits_per_sec": round(total / elapsed, 1),
        "syncs": wal.syncs,
        "group_absorbed": wal.group_absorbed,
        "fsyncs_per_commit": round(wal.syncs / max(wal.commits, 1), 4),
        # the uniform durability block every BENCH_*.json carries
        "wal": wal_bench_fragment(engine),
    }
    engine.close()
    return out


# ---------------------------------------------------------------------- #
# leg 3: crash recovery (kill -9 semantics, zero acknowledged loss)
# ---------------------------------------------------------------------- #
_CHILD = """
import os, sys, time
db, n = sys.argv[1], int(sys.argv[2])
import random
from repro import Engine, Interval
from repro.io import FileDisk
engine = Engine(FileDisk(db, block_size=16))
engine.attach_wal()
engine.create_collection("c", dynamic=True)
rnd = random.Random(2)
start = time.perf_counter()
for i in range(n):
    low = rnd.uniform(0.0, 1000.0)
    engine.insert("c", Interval(low, low + rnd.uniform(1.0, 40.0), payload=i))
elapsed = time.perf_counter() - start
print(f"{n} {elapsed:.4f}", flush=True)
os._exit(1)
"""


def leg_crash_recovery(workdir: str, n: int) -> Dict[str, Any]:
    db = os.path.join(workdir, "crash.pages")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, db, str(n)],
        capture_output=True,
        text=True,
        env=env,
        timeout=600,
    )
    if proc.returncode != 1 or not proc.stdout.strip():
        raise RuntimeError(f"crash child failed: {proc.stderr}")
    acked_s, commit_secs = proc.stdout.split()
    acked = int(acked_s)
    wal_bytes = os.path.getsize(db + ".wal")
    start = time.perf_counter()
    engine = Engine.open(db)
    recovery_secs = time.perf_counter() - start
    from repro.engine.queries import Range

    recovered = {r.payload for r in engine.query("c", Range(-1e9, 1e9)).all()}
    engine.close()
    lost = acked - len(recovered)
    return {
        "acked_commits": acked,
        "commit_seconds": float(commit_secs),
        "wal_bytes_at_crash": wal_bytes,
        "recovered": len(recovered),
        "lost": lost,
        "recovery_seconds": round(recovery_secs, 4),
    }


# ---------------------------------------------------------------------- #
# leg 4: MVCC snapshot reads (readers vs. a bulk writer)
# ---------------------------------------------------------------------- #
def leg_mvcc_reads(workdir: str, n: int, duration: float) -> Dict[str, Any]:
    path = os.path.join(workdir, "mvcc.pages")
    engine = Engine(FileDisk(path, block_size=16))
    engine.attach_wal()
    read_set = _intervals(n, seed=3)
    engine.create_collection("readers", read_set, dynamic=True)
    engine.create_collection("writers", dynamic=True)
    probes = [iv.low + 0.5 for iv in read_set[:64]]

    def read_loop(latencies: List[float], stop: threading.Event) -> None:
        session = engine.session()
        i = 0
        while not stop.is_set():
            t0 = time.perf_counter()
            session.query("readers", Stab(probes[i % len(probes)]))
            latencies.append(time.perf_counter() - t0)
            i += 1

    # idle baseline: reader alone
    idle: List[float] = []
    stop = threading.Event()
    reader = threading.Thread(target=read_loop, args=(idle, stop))
    reader.start()
    time.sleep(duration)
    stop.set()
    reader.join()

    # contended: same reader loop while a writer bulk-commits (fsync per
    # group) into the other collection
    contended: List[float] = []
    stop = threading.Event()
    writes = [0]

    def write_loop() -> None:
        session = engine.session()
        fresh = _intervals(100000, seed=4)
        done = 0
        while not stop.is_set():
            session.insert("writers", fresh[done % len(fresh)])
            done += 1
        # single publish of a thread-private counter: the main thread only
        # reads this after join(), so no lock is needed — unlike the bare
        # `writes[0] += 1` per insert this replaces, which raced the cell
        writes[0] = done

    reader = threading.Thread(target=read_loop, args=(contended, stop))
    writer = threading.Thread(target=write_loop)
    reader.start()
    writer.start()
    time.sleep(duration)
    stop.set()
    reader.join()
    writer.join()
    out = {
        "n": n,
        "duration_seconds": duration,
        "idle": {
            "reads": len(idle),
            "p50_ms": round(_percentile(idle, 0.5) * 1e3, 3),
            "p99_ms": round(_percentile(idle, 0.99) * 1e3, 3),
        },
        "contended": {
            "reads": len(contended),
            "writes": writes[0],
            "p50_ms": round(_percentile(contended, 0.5) * 1e3, 3),
            "p99_ms": round(_percentile(contended, 0.99) * 1e3, 3),
        },
    }
    idle_p50 = max(out["idle"]["p50_ms"], 1e-6)
    out["p50_ratio"] = round(out["contended"]["p50_ms"] / idle_p50, 2)
    engine.close()
    return out


# ---------------------------------------------------------------------- #
# gate + report
# ---------------------------------------------------------------------- #
def gate_failures(payload: Dict[str, Any]) -> List[str]:
    failures = []
    crash = payload["crash_recovery"]
    if crash["lost"] != 0:
        failures.append(
            f"crash recovery lost {crash['lost']} acknowledged commits"
        )
    group = payload["group_commit"]
    if group["fsyncs_per_commit"] >= 1.0:
        failures.append(
            f"group commit is not amortizing: {group['fsyncs_per_commit']} "
            "fsyncs per commit (expected < 1)"
        )
    mvcc = payload["mvcc_reads"]
    # generous: the reader shares a process and a disk with the writer;
    # what the gate rejects is readers queueing behind write turns again
    if mvcc["p50_ratio"] > 5.0:
        failures.append(
            f"contended read p50 is {mvcc['p50_ratio']}x idle (expected <= 5x)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--commits", type=int, default=2000,
                        help="single-threaded commits for the throughput leg")
    parser.add_argument("--threads", type=int, default=8,
                        help="committers in the group-commit leg")
    parser.add_argument("--per-thread", type=int, default=250)
    parser.add_argument("--crash-commits", type=int, default=1500,
                        help="acknowledged commits before the child dies")
    parser.add_argument("--n", type=int, default=5000,
                        help="resident records in the MVCC read leg")
    parser.add_argument("--read-seconds", type=float, default=3.0,
                        help="sampling window per MVCC scenario")
    parser.add_argument("--out", default=None, metavar="JSON")
    parser.add_argument("--check", action="store_true",
                        help="exit 1 when a durability gate fails")
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    args = parser.parse_args(argv)

    if args.smoke:
        args.commits, args.per_thread = 300, 60
        args.crash_commits, args.n = 300, 1200
        args.read_seconds = 1.5

    workdir = tempfile.mkdtemp(prefix="bench-durability-")
    try:
        print(f"bench durability: commits={args.commits} "
              f"threads={args.threads}x{args.per_thread} "
              f"crash={args.crash_commits} mvcc n={args.n}")
        throughput = leg_commit_throughput(workdir, args.commits)
        for row in throughput["modes"]:
            print(f"  commit {row['mode']:>10s}: "
                  f"{row['commits_per_sec']:>9.1f} commits/s "
                  f"fsyncs={row['fsyncs']}")
        group = leg_group_commit(workdir, args.threads, args.per_thread)
        print(f"  group commit    : {group['commits']} commits "
              f"{group['syncs']} fsync barriers "
              f"({group['fsyncs_per_commit']:.3f}/commit, "
              f"{group['group_absorbed']} absorbed)")
        crash = leg_crash_recovery(workdir, args.crash_commits)
        print(f"  crash recovery  : {crash['acked_commits']} acked, "
              f"{crash['recovered']} recovered, lost={crash['lost']}, "
              f"replay {crash['recovery_seconds']}s")
        mvcc = leg_mvcc_reads(workdir, args.n, args.read_seconds)
        print(f"  mvcc reads      : idle p50={mvcc['idle']['p50_ms']}ms, "
              f"contended p50={mvcc['contended']['p50_ms']}ms "
              f"({mvcc['p50_ratio']}x) with {mvcc['contended']['writes']} "
              "concurrent writes")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "bench": "durability",
        "params": {
            "commits": args.commits,
            "threads": args.threads,
            "per_thread": args.per_thread,
            "crash_commits": args.crash_commits,
            "n": args.n,
            "read_seconds": args.read_seconds,
            "smoke": args.smoke,
        },
        "commit_throughput": throughput,
        "group_commit": group,
        "crash_recovery": crash,
        "mvcc_reads": mvcc,
    }
    failures = gate_failures(payload)
    payload["summary"] = {
        "zero_acked_loss": crash["lost"] == 0,
        "fsyncs_per_commit": group["fsyncs_per_commit"],
        "mvcc_p50_ratio": mvcc["p50_ratio"],
        "gate_failures": failures,
        "wal": group["wal"],
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {args.out}")
    if args.check:
        for failure in failures:
            print(f"GATE FAIL: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
