"""E7 — Lemma 2.7 / Theorem 2.8: the tessellation lower bound.

Measures how many blocks a row query touches on a square rectangular
tessellation of a ``p x p`` grid (the layout grid files, k-d-B-trees and
hB-trees produce on uniform data), against the optimal ``t/B``.  The ratio
should grow like ``sqrt(B)``, and no rectangular aspect ratio can be good
for rows and columns simultaneously.
"""

import math

import pytest

from repro.analysis.tessellation import GridTessellation, best_achievable_ratio

from benchmarks.conftest import record


@pytest.mark.parametrize("block_size", [4, 16, 64, 256])
def test_row_query_ratio_grows_with_sqrt_b(benchmark, block_size):
    p = 256
    tess = GridTessellation(p, block_size)
    stats = tess.measure()
    record(
        benchmark,
        p=p,
        B=block_size,
        blocks_per_row_query=stats.row_query_blocks,
        optimal_blocks=stats.optimal_blocks,
        ratio=stats.ratio,
        sqrt_B=math.sqrt(block_size),
    )
    benchmark(lambda: tess.row_query_blocks(p // 2))


def test_no_aspect_ratio_is_good_for_rows_and_columns(benchmark):
    p, B = 128, 64
    ratios = best_achievable_ratio(p, B)
    best = min(ratios.values())
    record(benchmark, p=p, B=B, best_worst_axis_ratio=best, sqrt_B=math.sqrt(B))
    benchmark.pedantic(lambda: best_achievable_ratio(64, 16), rounds=2, iterations=1)
