"""E4 — Proposition 2.2: external interval management vs. the baselines.

Compares, at equal workloads, the I/O cost of stabbing and intersection
queries through

* the metablock-tree-backed :class:`ExternalIntervalManager` (the paper's
  proposal),
* a naive external scan (one read per block of intervals), and
* an external port of the in-core priority search tree idea with one node
  per block but *without* the metablock machinery (the blocked PST of
  Lemma 4.1) — the "previous best" the paper improves on for 2-sided
  queries.

The paper's claim is qualitative: the metablock tree is the only one that
is simultaneously linear-space and ``O(log_B n + t/B)`` per query; the
others lose either on the logarithm base or on the scan term.
"""

import random

import pytest

from repro.core import ExternalIntervalManager
from repro.engine import Engine, Stab
from repro.io import SimulatedDisk
from repro.metablock.geometry import PlanarPoint
from repro.pst import ExternalPST
from repro.workloads import random_intervals

from benchmarks.conftest import measure_ios, record

N = 10_000
B = 16


def _workload():
    return random_intervals(N, seed=5, mean_length=20.0)


def _queries(count=25):
    rnd = random.Random(6)
    return [rnd.uniform(0, 1000) for _ in range(count)]


def test_metablock_manager_stabbing(benchmark):
    engine = Engine(SimulatedDisk(B))
    engine.create_interval_index("intervals", _workload(), dynamic=False)
    queries = _queries()

    def run():
        batch = engine.query_many(("intervals", Stab(q)) for q in queries)
        return sum(len(r.all()) for r in batch)

    reported, ios = measure_ios(engine.disk, run)
    record(benchmark, structure="metablock", n=N, B=B,
           avg_output=reported / len(queries), ios_per_query=ios / len(queries))
    benchmark(run)


def test_external_pst_stabbing(benchmark):
    intervals = _workload()
    disk = SimulatedDisk(B)
    pst = ExternalPST(disk, [PlanarPoint(iv.low, iv.high, payload=iv) for iv in intervals])
    queries = _queries()

    def run():
        return sum(len(pst.query_2sided(q, q)) for q in queries)

    reported, ios = measure_ios(disk, run)
    record(benchmark, structure="blocked-pst", n=N, B=B,
           avg_output=reported / len(queries), ios_per_query=ios / len(queries))
    benchmark(run)


def test_naive_scan_stabbing(benchmark):
    intervals = _workload()
    disk = SimulatedDisk(B)
    blocks = [disk.allocate(records=list(intervals[i : i + B])) for i in range(0, N, B)]
    queries = _queries()

    def run():
        total = 0
        for q in queries:
            for block in blocks:
                blk = disk.read(block.block_id)
                total += sum(1 for iv in blk.records if iv.contains(q))
        return total

    reported, ios = measure_ios(disk, run)
    record(benchmark, structure="naive-scan", n=N, B=B,
           avg_output=reported / len(queries), ios_per_query=ios / len(queries))
    benchmark.pedantic(run, rounds=1, iterations=1)


def test_metablock_manager_intersection(benchmark):
    intervals = _workload()
    disk = SimulatedDisk(B)
    manager = ExternalIntervalManager(disk, intervals, dynamic=False)
    rnd = random.Random(7)
    windows = [(lo, lo + rnd.uniform(0, 40)) for lo in (rnd.uniform(0, 960) for _ in range(25))]

    def run():
        return sum(len(manager.intersection_query(lo, hi)) for lo, hi in windows)

    reported, ios = measure_ios(disk, run)
    record(benchmark, structure="metablock", kind="intersection", n=N, B=B,
           avg_output=reported / len(windows), ios_per_query=ios / len(windows))
    benchmark(run)


@pytest.mark.parametrize("shape", ["uniform", "clustered", "nested"])
def test_workload_shapes(benchmark, shape):
    from repro.workloads import clustered_intervals, nested_intervals

    make = {
        "uniform": lambda: random_intervals(4_000, seed=8, mean_length=25.0),
        "clustered": lambda: clustered_intervals(4_000, clusters=8, seed=8),
        "nested": lambda: nested_intervals(4_000, seed=8),
    }[shape]
    intervals = make()
    disk = SimulatedDisk(B)
    manager = ExternalIntervalManager(disk, intervals, dynamic=False)
    queries = _queries(15)

    def run():
        return sum(len(manager.stabbing_query(q)) for q in queries)

    reported, ios = measure_ios(disk, run)
    record(benchmark, workload=shape, n=4_000, B=B,
           avg_output=reported / len(queries), ios_per_query=ios / len(queries))
    benchmark(run)
