"""Shared fixtures/helpers for the benchmark harness.

Every benchmark measures two things:

* wall-clock time of the operation (via pytest-benchmark), and
* the number of disk-block I/Os it performs on the simulated disk, which is
  the quantity the paper's bounds talk about.  The I/O count, the relevant
  bound, and their ratio are attached to ``benchmark.extra_info`` so they
  appear in the saved benchmark JSON and can be compared against
  EXPERIMENTS.md.

Workloads are deterministic (fixed seeds), so re-running the harness
reproduces the same I/O counts exactly.
"""

from __future__ import annotations

import pytest


def record(benchmark, **info) -> None:
    """Attach experiment observations to the pytest-benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = round(value, 3) if isinstance(value, float) else value


def measure_ios(disk, fn):
    """Run ``fn`` once and return (result, ios)."""
    with disk.measure() as m:
        result = fn()
    return result, m.ios
