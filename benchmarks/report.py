"""Generate the measured tables quoted in EXPERIMENTS.md.

Run with::

    python benchmarks/report.py

The script executes a compact version of every experiment (E1-E12), printing
one table per experiment with the measured I/O counts, the corresponding
paper bound, and their ratio.  It is deterministic, so the numbers in
EXPERIMENTS.md can be regenerated exactly.
"""

from __future__ import annotations

import math
import random
import time

from repro.analysis.complexity import (
    btree_query_bound,
    combined_class_query_bound,
    external_pst_query_bound,
    linear_space_bound,
    metablock_insert_bound,
    metablock_query_bound,
    simple_class_query_bound,
    simple_class_space_bound,
    three_sided_query_bound,
)
from repro.analysis.tessellation import GridTessellation
from repro.btree import BPlusTree
from repro.classes import CombinedClassIndex, FullExtentPerClassIndex, SimpleClassIndex, SingleCollectionIndex
from repro.constraints import GeneralizedOneDimensionalIndex
from repro.constraints.rectangles import intersecting_pairs, rectangle_relation
from repro.core import ExternalIntervalManager
from repro.io import SimulatedDisk
from repro.metablock import AugmentedMetablockTree, StaticMetablockTree, ThreeSidedMetablockTree
from repro.pst import ExternalPST
from repro.workloads import (
    diagonal_staircase_points,
    interval_points,
    random_class_objects,
    random_hierarchy,
    random_intervals,
    random_points,
)

B = 16


def header(title: str) -> None:
    print()
    print(f"## {title}")


def table(rows, columns) -> None:
    widths = [max(len(str(c)), max((len(f"{r[i]}") for r in rows), default=0)) for i, c in enumerate(columns)]
    print(" | ".join(str(c).ljust(w) for c, w in zip(columns, widths)))
    print("-|-".join("-" * w for w in widths))
    for r in rows:
        print(" | ".join(f"{v}".ljust(w) for v, w in zip(r, widths)))


def fmt(x: float) -> str:
    return f"{x:.1f}"


def class_queries(hierarchy, count, seed):
    rnd = random.Random(seed)
    by_size = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
    candidates = by_size[: max(4, len(by_size) // 4)]
    return [(rnd.choice(candidates), lo, lo + 50.0) for lo in (rnd.uniform(0, 900) for _ in range(count))]


def e1_static_metablock():
    header("E1  Theorem 3.2 — static metablock tree (query I/O and space vs n, B=16)")
    rows = []
    rnd = random.Random(1)
    queries = [rnd.uniform(0, 1000) for _ in range(20)]
    for n in (2_000, 8_000, 32_000):
        disk = SimulatedDisk(B)
        tree = StaticMetablockTree(disk, interval_points(random_intervals(n, seed=7, mean_length=30)))
        with disk.measure() as m:
            t = sum(len(tree.diagonal_query(q)) for q in queries) / len(queries)
        ios = m.ios / len(queries)
        bound = metablock_query_bound(n, B, t)
        rows.append([n, fmt(t), fmt(ios), fmt(bound), fmt(ios / bound),
                     tree.block_count(), fmt(tree.block_count() / linear_space_bound(n, B))])
    table(rows, ["n", "avg t", "I/Os per query", "bound", "ratio", "blocks", "blocks per n/B"])


def e2_lower_bound():
    header("E2  Proposition 3.3 — staircase lower-bound instance (t = 1 per query)")
    rows = []
    for n in (1_000, 8_000, 32_000):
        disk = SimulatedDisk(B)
        tree = StaticMetablockTree(disk, diagonal_staircase_points(n))
        queries = [x + 0.5 for x in range(1, n, max(1, n // 50))][:50]
        with disk.measure() as m:
            total = sum(len(tree.diagonal_query(q)) for q in queries)
        assert total == len(queries)
        ios = m.ios / len(queries)
        bound = metablock_query_bound(n, B, 1)
        rows.append([n, fmt(ios), fmt(bound), fmt(ios / bound),
                     tree.block_count(), fmt(tree.block_count() / linear_space_bound(n, B))])
    table(rows, ["n", "I/Os per query", "log_B n + t/B", "ratio", "blocks", "blocks per n/B"])


def e3_dynamic_inserts():
    header("E3  Theorem 3.7 — semi-dynamic inserts (amortized I/O per insert, B=16)")
    rows = []
    extra = interval_points(random_intervals(500, seed=2))
    for n in (1_000, 4_000, 16_000):
        disk = SimulatedDisk(B)
        tree = AugmentedMetablockTree(disk, interval_points(random_intervals(n, seed=1)))
        with disk.measure() as m:
            tree.insert_many(extra)
        per = m.ios / len(extra)
        bound = metablock_insert_bound(n, B)
        rows.append([n, fmt(per), fmt(bound), fmt(per / bound)])
    table(rows, ["n (before inserts)", "I/Os per insert", "bound", "ratio"])

    rnd = random.Random(4)
    queries = [rnd.uniform(0, 1000) for _ in range(20)]
    rows = []
    for n in (2_000, 8_000):
        disk = SimulatedDisk(B)
        tree = AugmentedMetablockTree(disk)
        tree.insert_many(interval_points(random_intervals(n, seed=3, mean_length=20.0)))
        with disk.measure() as m:
            t = sum(len(tree.diagonal_query(q)) for q in queries) / len(queries)
        ios = m.ios / len(queries)
        bound = metablock_query_bound(n, B, t)
        rows.append([n, fmt(t), fmt(ios), fmt(bound), fmt(ios / bound)])
    print()
    print("queries against a tree built purely by inserts:")
    table(rows, ["n", "avg t", "I/Os per query", "bound", "ratio"])


def e4_interval_management():
    header("E4  Proposition 2.2 — interval stabbing: metablock manager vs baselines (n=10000, B=16)")
    intervals = random_intervals(10_000, seed=5, mean_length=20.0)
    rnd = random.Random(6)
    queries = [rnd.uniform(0, 1000) for _ in range(25)]
    rows = []

    disk = SimulatedDisk(B)
    manager = ExternalIntervalManager(disk, intervals, dynamic=False)
    with disk.measure() as m:
        t = sum(len(manager.stabbing_query(q)) for q in queries) / len(queries)
    rows.append(["metablock interval manager", fmt(t), fmt(m.ios / len(queries))])

    disk = SimulatedDisk(B)
    from repro.metablock.geometry import PlanarPoint

    pst = ExternalPST(disk, [PlanarPoint(iv.low, iv.high, payload=iv) for iv in intervals])
    with disk.measure() as m:
        sum(len(pst.query_2sided(q, q)) for q in queries)
    rows.append(["blocked PST (Lemma 4.1 port)", fmt(t), fmt(m.ios / len(queries))])

    disk = SimulatedDisk(B)
    blocks = [disk.allocate(records=list(intervals[i : i + B])) for i in range(0, len(intervals), B)]
    with disk.measure() as m:
        for q in queries[:5]:
            for blk_ in blocks:
                disk.read(blk_.block_id)
    rows.append(["naive external scan", fmt(t), fmt(m.ios / 5)])
    table(rows, ["structure", "avg t", "I/Os per stabbing query"])


def e5_e6_class_indexing():
    header("E5/E6  Theorems 2.6 and 4.7 — class indexing (n=6000, B=16, queries on large classes)")
    rows = []
    for c in (8, 32, 128, 256):
        hierarchy = random_hierarchy(c, seed=21)
        objects = random_class_objects(hierarchy, 6_000, seed=22)
        queries = class_queries(hierarchy, 20, seed=23)
        row = [c]
        t_avg = 0.0
        for scheme in (SingleCollectionIndex, FullExtentPerClassIndex, SimpleClassIndex, CombinedClassIndex):
            disk = SimulatedDisk(B)
            index = scheme(disk, hierarchy, objects)
            with disk.measure() as m:
                t_avg = sum(len(index.query(*q)) for q in queries) / len(queries)
            row.append(fmt(m.ios / len(queries)))
            if scheme in (SimpleClassIndex, CombinedClassIndex):
                row.append(index.block_count())
        row.append(fmt(simple_class_query_bound(6_000, B, c, t_avg)))
        row.append(fmt(combined_class_query_bound(6_000, B, t_avg)))
        rows.append(row)
    table(
        rows,
        ["c", "single I/O", "full-extent I/O", "simple I/O", "simple blocks",
         "combined I/O", "combined blocks", "Thm2.6 bound", "Thm4.7 bound"],
    )

    print()
    print("update cost (I/Os per inserted object, c=128):")
    hierarchy = random_hierarchy(128, seed=21)
    objects = random_class_objects(hierarchy, 6_000, seed=22)
    extra = random_class_objects(hierarchy, 200, seed=99)
    rows = []
    for name, scheme in (
        ("single", SingleCollectionIndex),
        ("full-extent-per-class", FullExtentPerClassIndex),
        ("simple (Thm 2.6)", SimpleClassIndex),
        ("combined (Thm 4.7)", CombinedClassIndex),
    ):
        disk = SimulatedDisk(B)
        index = scheme(disk, hierarchy, objects)
        with disk.measure() as m:
            for o in extra:
                index.insert(o)
        rows.append([name, fmt(m.ios / len(extra)), index.block_count()])
    table(rows, ["scheme", "I/Os per insert", "blocks"])


def e7_tessellation():
    header("E7  Lemma 2.7 — square tessellation of a 256x256 grid: row-query cost vs optimal")
    rows = []
    for block_size in (4, 16, 64, 256):
        stats = GridTessellation(256, block_size).measure()
        rows.append([block_size, fmt(stats.row_query_blocks), fmt(stats.optimal_blocks),
                     fmt(stats.ratio), fmt(math.sqrt(block_size))])
    table(rows, ["B", "blocks per row query", "optimal t/B", "ratio", "sqrt(B)"])


def e8_e9_three_sided():
    header("E8/E9  Lemmas 4.1 and 4.4 — 3-sided queries: blocked PST vs 3-sided metablock tree (B=16)")
    rnd = random.Random(61)
    queries = [(x1, x1 + 60.0, rnd.uniform(0, 1000)) for x1 in (rnd.uniform(0, 900) for _ in range(20))]
    rows = []
    for n in (2_000, 8_000, 32_000):
        points = random_points(n, seed=62)
        disk = SimulatedDisk(B)
        pst = ExternalPST(disk, points)
        with disk.measure() as m:
            t = sum(len(pst.query_3sided(*q)) for q in queries) / len(queries)
        pst_ios = m.ios / len(queries)

        disk = SimulatedDisk(B)
        tree = ThreeSidedMetablockTree(disk, points)
        with disk.measure() as m:
            sum(len(tree.query_3sided(*q)) for q in queries)
        tree_ios = m.ios / len(queries)
        rows.append([n, fmt(t), fmt(pst_ios), fmt(external_pst_query_bound(n, B, t)),
                     fmt(tree_ios), fmt(three_sided_query_bound(n, B, t))])
    table(rows, ["n", "avg t", "PST I/Os", "PST bound", "metablock I/Os", "metablock bound"])


def e10_constraints():
    header("E10  Example 2.1 — rectangle intersection via the generalized 1-D index")
    rows = []
    for n in (100, 300):
        rnd = random.Random(81)
        rects = []
        for i in range(n):
            a, b = rnd.uniform(0, 1000), rnd.uniform(0, 1000)
            rects.append((f"r{i}", a, b, a + rnd.uniform(1, 20), b + rnd.uniform(1, 20)))
        relation = rectangle_relation(rects)
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(B), relation, "x")
        start = time.perf_counter()
        naive = intersecting_pairs(relation)
        naive_s = time.perf_counter() - start
        start = time.perf_counter()
        indexed = intersecting_pairs(relation, index)
        indexed_s = time.perf_counter() - start
        assert set(map(frozenset, naive)) == set(map(frozenset, indexed))
        rows.append([n, len(indexed), f"{naive_s*1000:.0f} ms", f"{indexed_s*1000:.0f} ms",
                     fmt(naive_s / max(indexed_s, 1e-9))])
    table(rows, ["rectangles", "pairs", "naive join", "indexed join", "speedup"])


def e11_btree():
    header("E11  B+-tree reference point (Section 1.1)")
    rows = []
    rnd = random.Random(71)
    for n in (2_000, 16_000, 64_000):
        disk = SimulatedDisk(B)
        tree = BPlusTree.bulk_load(disk, ((float(i), i) for i in range(n)))
        queries = [(lo, lo + n * 0.01) for lo in (rnd.uniform(0, n * 0.99) for _ in range(25))]
        with disk.measure() as m:
            t = sum(len(tree.range_search(lo, hi)) for lo, hi in queries) / len(queries)
        ios = m.ios / len(queries)
        bound = btree_query_bound(n, B, t)
        rows.append([n, fmt(t), fmt(ios), fmt(bound), fmt(ios / bound), tree.block_count()])
    table(rows, ["n", "avg t", "I/Os per range query", "bound", "ratio", "blocks"])


def e12_space():
    header("E12  Space accounting (n=8000, B=16, c=64) — blocks used vs bounds")
    intervals = random_intervals(8_000, seed=91)
    points = interval_points(intervals)
    square_points = random_points(8_000, seed=92)
    hierarchy = random_hierarchy(64, seed=93)
    objects = random_class_objects(hierarchy, 8_000, seed=94)
    linear = linear_space_bound(8_000, B)
    rows = []

    def add(name, blocks, bound):
        rows.append([name, blocks, fmt(bound), fmt(blocks / bound)])

    add("B+-tree", BPlusTree.bulk_load(SimulatedDisk(B), ((iv.low, iv) for iv in intervals)).block_count(), linear)
    add("static metablock tree", StaticMetablockTree(SimulatedDisk(B), points).block_count(), linear)
    add("blocked PST", ExternalPST(SimulatedDisk(B), square_points).block_count(), linear)
    add("3-sided metablock tree", ThreeSidedMetablockTree(SimulatedDisk(B), square_points).block_count(), linear)
    add("interval manager", ExternalIntervalManager(SimulatedDisk(B), intervals, dynamic=False).block_count(), linear)
    add("simple class index", SimpleClassIndex(SimulatedDisk(B), hierarchy, objects).block_count(),
        simple_class_space_bound(8_000, B, 64))
    add("combined class index", CombinedClassIndex(SimulatedDisk(B), hierarchy, objects).block_count(),
        simple_class_space_bound(8_000, B, 64))
    add("full-extent per class", FullExtentPerClassIndex(SimulatedDisk(B), hierarchy, objects).block_count(), linear)
    table(rows, ["structure", "blocks", "bound (blocks)", "ratio"])


def main() -> None:
    print("# Measured experiment tables (regenerate with `python benchmarks/report.py`)")
    e1_static_metablock()
    e2_lower_bound()
    e3_dynamic_inserts()
    e4_interval_management()
    e5_e6_class_indexing()
    e7_tessellation()
    e8_e9_three_sided()
    e10_constraints()
    e11_btree()
    e12_space()


if __name__ == "__main__":
    main()
