"""E5 — Theorem 2.6 vs. the naive class-indexing schemes.

Sweeps the hierarchy size ``c`` and measures per-query I/O and space for the
simple (range-tree-of-B+-trees) index against the two schemes Section 2.2
rejects.  The paper's claims:

* the single global index pays for *every* object in the attribute range,
  not just the queried class's full extent (no output compaction);
* one B+-tree per full extent answers queries optimally but pays
  ``O(c)``-fold space / ``O(depth)``-fold update cost;
* the simple index is within a ``log2 c`` factor of optimal on every axis.
"""

import random

import pytest

from repro.analysis.complexity import simple_class_query_bound, simple_class_space_bound
from repro.classes import FullExtentPerClassIndex, SimpleClassIndex, SingleCollectionIndex
from repro.io import SimulatedDisk
from repro.workloads import random_class_objects, random_hierarchy

from benchmarks.conftest import measure_ios, record

N_OBJECTS = 6_000
B = 16


def _setup(c, scheme, seed=11):
    hierarchy = random_hierarchy(c, seed=seed)
    objects = random_class_objects(hierarchy, N_OBJECTS, seed=seed + 1)
    disk = SimulatedDisk(B)
    index = scheme(disk, hierarchy, objects)
    rnd = random.Random(seed + 2)
    queries = []
    by_size = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
    candidates = by_size[: max(4, len(by_size) // 4)]
    for _ in range(20):
        cls = rnd.choice(candidates)
        lo = rnd.uniform(0, 900)
        queries.append((cls, lo, lo + 50.0))
    return disk, hierarchy, index, queries


SCHEMES = {
    "simple": SimpleClassIndex,
    "single-collection": SingleCollectionIndex,
    "full-extent-per-class": FullExtentPerClassIndex,
}


@pytest.mark.parametrize("c", [8, 32, 128])
@pytest.mark.parametrize("scheme_name", sorted(SCHEMES))
def test_query_io_by_scheme_and_hierarchy_size(benchmark, c, scheme_name):
    disk, hierarchy, index, queries = _setup(c, SCHEMES[scheme_name])

    def run():
        return sum(len(index.query(cls, lo, hi)) for cls, lo, hi in queries)

    reported, ios = measure_ios(disk, run)
    t_avg = reported / len(queries)
    bound = simple_class_query_bound(N_OBJECTS, B, c, t_avg)
    record(
        benchmark,
        scheme=scheme_name,
        c=c,
        n=N_OBJECTS,
        B=B,
        avg_output=t_avg,
        ios_per_query=ios / len(queries),
        thm26_bound=bound,
        ios_per_bound=(ios / len(queries)) / bound,
        space_blocks=index.block_count(),
        thm26_space_bound=simple_class_space_bound(N_OBJECTS, B, c),
    )
    benchmark(run)


@pytest.mark.parametrize("c", [8, 32, 128])
def test_update_io_simple_vs_full_extent(benchmark, c):
    """Theorem 2.6 update bound O(log2 c · log_B n) vs. O(depth · log_B n) replication."""
    from repro.classes.hierarchy import ClassObject

    results = {}
    for name, scheme in (("simple", SimpleClassIndex), ("full-extent", FullExtentPerClassIndex)):
        disk, hierarchy, index, _ = _setup(c, scheme)
        extra = random_class_objects(hierarchy, 200, seed=99)
        _, ios = measure_ios(disk, lambda idx=index, ex=extra: [idx.insert(o) for o in ex])
        results[name] = ios / len(extra)
    record(benchmark, c=c, n=N_OBJECTS, B=B,
           simple_ios_per_insert=results["simple"],
           full_extent_ios_per_insert=results["full-extent"])

    disk, hierarchy, index, _ = _setup(c, SimpleClassIndex)
    extra = random_class_objects(hierarchy, 50, seed=100)
    benchmark.pedantic(lambda: [index.insert(o) for o in extra], rounds=1, iterations=1)
