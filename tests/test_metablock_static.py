"""Tests for the static metablock tree (Section 3.1, Theorem 3.2)."""

import random

import pytest

from repro.analysis.complexity import linear_space_bound, metablock_query_bound
from repro.io import SimulatedDisk
from repro.metablock import DiagonalCornerQuery, StaticMetablockTree
from repro.metablock.geometry import PlanarPoint

from tests.conftest import brute_diagonal, make_interval_points


class TestConstruction:
    def test_empty_tree(self, disk):
        tree = StaticMetablockTree(disk, [])
        assert len(tree) == 0
        assert tree.diagonal_query(5) == []
        assert tree.block_count() == 0

    def test_single_point(self, disk):
        tree = StaticMetablockTree(disk, [PlanarPoint(2, 6)])
        assert [(p.x, p.y) for p in tree.diagonal_query(4)] == [(2, 6)]
        assert tree.diagonal_query(7) == []

    def test_all_points_fit_in_one_leaf(self, disk):
        pts = make_interval_points(30, seed=1)  # 30 < B^2 = 64
        tree = StaticMetablockTree(disk, pts)
        assert tree.root.is_leaf
        assert tree.height() == 1

    def test_multi_level_tree_structure(self):
        disk = SimulatedDisk(block_size=4)
        pts = make_interval_points(600, seed=2)
        tree = StaticMetablockTree(disk, pts)
        assert tree.height() >= 2
        tree.check_invariants()
        assert sorted((p.x, p.y) for p in tree.all_points()) == sorted((p.x, p.y) for p in pts)

    def test_root_holds_highest_y_values(self):
        disk = SimulatedDisk(block_size=4)
        pts = make_interval_points(300, seed=3)
        tree = StaticMetablockTree(disk, pts)
        root_min = min(p.y for p in tree.root.points)
        for child in tree.root.children:
            for p in child.points:
                assert p.y <= root_min

    def test_children_partition_by_x(self):
        disk = SimulatedDisk(block_size=4)
        pts = make_interval_points(400, seed=4)
        tree = StaticMetablockTree(disk, pts)
        children = tree.root.children
        for left, right in zip(children, children[1:]):
            assert left.subtree_max_x <= right.subtree_min_x

    def test_internal_metablocks_hold_exactly_b_squared_points(self):
        disk = SimulatedDisk(block_size=4)
        pts = make_interval_points(500, seed=5)
        tree = StaticMetablockTree(disk, pts)
        for mb in tree.iter_metablocks():
            if not mb.is_leaf:
                assert len(mb.points) == 16

    def test_diagonal_metablocks_have_corner_structures(self):
        disk = SimulatedDisk(block_size=4)
        pts = make_interval_points(500, seed=6)
        tree = StaticMetablockTree(disk, pts)
        for mb in tree.iter_metablocks():
            if mb.is_leaf:
                assert mb.corner is not None or not mb.needs_corner_structure()


class TestQueryCorrectness:
    @pytest.mark.parametrize("block_size,n", [(4, 200), (4, 900), (8, 900), (16, 1500)])
    def test_matches_brute_force(self, block_size, n):
        disk = SimulatedDisk(block_size)
        pts = make_interval_points(n, seed=n + block_size)
        tree = StaticMetablockTree(disk, pts)
        rnd = random.Random(n)
        queries = [rnd.uniform(-20, 1300) for _ in range(40)]
        queries += [pts[0].x, pts[0].y, min(p.x for p in pts), max(p.y for p in pts)]
        for q in queries:
            assert sorted((p.x, p.y) for p in tree.diagonal_query(q)) == brute_diagonal(pts, q)

    def test_query_object_interface(self, disk):
        pts = make_interval_points(100, seed=9)
        tree = StaticMetablockTree(disk, pts)
        q = DiagonalCornerQuery(corner=400.0)
        assert sorted((p.x, p.y) for p in tree.query(q)) == brute_diagonal(pts, 400.0)

    def test_query_at_minimum_x(self, disk):
        pts = make_interval_points(200, seed=10)
        tree = StaticMetablockTree(disk, pts)
        q = min(p.x for p in pts)
        assert sorted((p.x, p.y) for p in tree.diagonal_query(q)) == brute_diagonal(pts, q)

    def test_large_output_query_returns_all_matches(self, disk):
        # queries near the bottom-left of the staircase return most intervals
        pts = [PlanarPoint(float(i), float(i) + 500.0, payload=i) for i in range(200)]
        tree = StaticMetablockTree(disk, pts)
        assert len(tree.diagonal_query(199.0)) == 200
        assert len(tree.diagonal_query(400.0)) == sum(1 for p in pts if p.y >= 400.0)

    def test_query_above_all_points_returns_nothing(self, disk):
        pts = make_interval_points(200, seed=11)
        tree = StaticMetablockTree(disk, pts)
        assert tree.diagonal_query(max(p.y for p in pts) + 1) == []

    def test_no_duplicates_in_output(self):
        disk = SimulatedDisk(block_size=4)
        pts = make_interval_points(700, seed=12)
        tree = StaticMetablockTree(disk, pts)
        out = tree.diagonal_query(300.0)
        assert len(out) == len({id(p) for p in out})

    def test_payloads_preserved(self, disk):
        pts = make_interval_points(150, seed=13)
        tree = StaticMetablockTree(disk, pts)
        out = tree.diagonal_query(500.0)
        assert all(p.payload is not None for p in out)

    def test_duplicate_y_values(self, disk):
        pts = [PlanarPoint(float(i % 10), 50.0, payload=i) for i in range(120)]
        tree = StaticMetablockTree(disk, pts)
        assert len(tree.diagonal_query(50.0)) == 120
        assert len(tree.diagonal_query(9.5)) == 120
        assert len(tree.diagonal_query(50.5)) == 0


class TestIOBounds:
    """Theorem 3.2: O(n/B) space, O(log_B n + t/B) query I/Os."""

    def test_space_linear_in_n_over_b(self):
        B = 16
        blocks_per_item = []
        for n in (2_000, 8_000):
            disk = SimulatedDisk(block_size=B)
            tree = StaticMetablockTree(disk, make_interval_points(n, seed=n))
            blocks_per_item.append(tree.block_count() / linear_space_bound(n, B))
        # constant blocks-per-(n/B) ratio, and the constant is small
        assert blocks_per_item[1] <= blocks_per_item[0] * 1.5
        assert max(blocks_per_item) < 12

    def test_small_output_query_is_logarithmic(self):
        B = 16
        n = 20_000
        disk = SimulatedDisk(block_size=B)
        pts = make_interval_points(n, seed=0, mean_length=2.0)
        tree = StaticMetablockTree(disk, pts)
        q = max(p.y for p in pts) - 1e-9
        with disk.measure() as m:
            out = tree.diagonal_query(q)
        assert len(out) <= 2
        assert m.ios <= 12 * metablock_query_bound(n, B, len(out))

    def test_large_output_query_scales_with_t_over_b(self):
        B = 16
        n = 12_000
        disk = SimulatedDisk(block_size=B)
        pts = make_interval_points(n, seed=1, mean_length=100.0)
        tree = StaticMetablockTree(disk, pts)
        q = 100.0
        expected_t = len(brute_diagonal(pts, q))
        with disk.measure() as m:
            out = tree.diagonal_query(q)
        assert len(out) == expected_t
        assert m.ios <= 12 * metablock_query_bound(n, B, expected_t)

    def test_query_io_grows_sublinearly_in_n_for_fixed_output(self):
        B = 8
        costs = []
        for n in (1_000, 8_000):
            disk = SimulatedDisk(block_size=B)
            pts = make_interval_points(n, seed=3, mean_length=1.0)
            tree = StaticMetablockTree(disk, pts)
            q = max(p.y for p in pts) - 1e-9
            with disk.measure() as m:
                tree.diagonal_query(q)
            costs.append(m.ios)
        # an 8x larger input should cost far less than 8x the I/Os
        assert costs[1] <= costs[0] * 4
