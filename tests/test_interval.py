"""Unit tests for the Interval record type."""

import pytest

from repro.interval import Interval, intervals_intersecting, intervals_stabbed


class TestConstruction:
    def test_valid_interval(self):
        iv = Interval(1, 5)
        assert iv.low == 1 and iv.high == 5
        assert iv.length == 4

    def test_degenerate_interval_allowed(self):
        iv = Interval(3, 3)
        assert iv.contains(3)
        assert iv.length == 0

    def test_reversed_endpoints_rejected(self):
        with pytest.raises(ValueError):
            Interval(5, 1)

    def test_payload_not_part_of_ordering(self):
        assert Interval(1, 2, payload="a") == Interval(1, 2, payload="b")
        assert Interval(1, 2) < Interval(1, 3) < Interval(2, 2)


class TestPredicates:
    def test_contains_endpoints(self):
        iv = Interval(2, 7)
        assert iv.contains(2) and iv.contains(7) and iv.contains(4.5)
        assert not iv.contains(1.99) and not iv.contains(7.01)

    def test_intersects_symmetric(self):
        a, b = Interval(0, 5), Interval(5, 10)
        assert a.intersects(b) and b.intersects(a)
        c = Interval(6, 10)
        assert not a.intersects(c) and not c.intersects(a)

    def test_intersects_range(self):
        iv = Interval(10, 20)
        assert iv.intersects_range(0, 10)
        assert iv.intersects_range(20, 30)
        assert iv.intersects_range(12, 15)
        assert not iv.intersects_range(21, 30)
        assert not iv.intersects_range(0, 9)

    def test_nested_intervals_intersect(self):
        assert Interval(0, 100).intersects(Interval(40, 60))

    def test_as_point_lies_on_or_above_diagonal(self):
        x, y = Interval(3, 9).as_point()
        assert y >= x
        x, y = Interval(4, 4).as_point()
        assert y == x


class TestBruteForceHelpers:
    def test_intervals_stabbed(self):
        ivs = [Interval(0, 10), Interval(5, 6), Interval(20, 30)]
        assert intervals_stabbed(ivs, 5.5) == [Interval(0, 10), Interval(5, 6)]

    def test_intervals_intersecting(self):
        ivs = [Interval(0, 10), Interval(5, 6), Interval(20, 30)]
        assert intervals_intersecting(ivs, 8, 25) == [Interval(0, 10), Interval(20, 30)]
