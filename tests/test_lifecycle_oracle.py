"""Oracle tests for the lifecycle-complete write API.

Random interleavings of ``insert`` / ``delete`` / ``update`` /
``bulk_load`` (plus batched variants) run against every index kind and
both storage backends, with a brute-force in-memory model as the
correctness oracle; a separate suite closes an engine on a real page file
and reopens it in (effectively) another process, asserting identical
answers *and* identical I/O accounting.
"""

import random

import pytest

from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.terms import Constraint, GeneralizedTuple, Variable
from repro.engine import (
    BOUND_SLACK,
    BOUND_SLACK_PAGES,
    EndpointRange,
    Engine,
    Range,
    Stab,
    supports_bulk_load,
    supports_deletes,
)
from repro.interval import Interval, intervals_stabbed
from repro.io import FileDisk, SimulatedDisk
from repro.metablock.geometry import PlanarPoint, ThreeSidedQuery

B = 8


def _backend(kind, tmp_path):
    if kind == "memory":
        return SimulatedDisk(B)
    return FileDisk(str(tmp_path / "pages.bin"), block_size=B)


def _random_interval(rnd):
    lo = rnd.uniform(0, 100)
    return Interval(lo, lo + rnd.uniform(0.5, 25))


def _uids(items):
    return sorted(iv.uid for iv in items)


# --------------------------------------------------------------------------- #
# collections: the full write surface against a model list
# --------------------------------------------------------------------------- #
class TestCollectionOracle:
    QUERIES = [
        Stab(10.0), Stab(50.0), Stab(90.0),
        Range(20.0, 30.0), Range(0.0, 100.0),
        EndpointRange("low", 10.0, 60.0), EndpointRange("high", 40.0, 80.0),
    ]

    def _check(self, coll, model):
        assert coll.live_count == len(model)
        for q in self.QUERIES:
            want = _uids(r for r in model if q.matches(r))
            assert _uids(coll.query(q)) == want, q

    @pytest.mark.parametrize("backend_kind", ["memory", "file"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_interleavings_match_brute_force(self, backend_kind, seed, tmp_path):
        rnd = random.Random(seed)
        disk = _backend(backend_kind, tmp_path)
        engine = Engine(disk)
        model = [_random_interval(rnd) for _ in range(80)]
        coll = engine.create_collection("c", model)
        model = list(model)

        graveyard = []
        for step in range(120):
            op = rnd.random()
            if op < 0.35 and model:
                victim = rnd.choice(model)
                assert coll.delete(victim) is True
                model.remove(victim)
                graveyard.append(victim)
                assert coll.delete(victim) is False
            elif op < 0.55 and model:
                old = rnd.choice(model)
                new = _random_interval(rnd)
                coll.update(old, new)
                model.remove(old)
                model.append(new)
            elif op < 0.7 and graveyard:
                revived = graveyard.pop(rnd.randrange(len(graveyard)))
                coll.insert(revived)  # re-insert after delete, pre-rebuild
                model.append(revived)
            elif op < 0.8:
                iv = _random_interval(rnd)
                coll.insert(iv)
                model.append(iv)
            else:
                batch = [_random_interval(rnd) for _ in range(rnd.randrange(1, 8))]
                assert coll.bulk_load(batch) == len(batch)
                model.extend(batch)
            if step % 30 == 29:
                self._check(coll, model)
        self._check(coll, model)
        engine.close()

    @pytest.mark.parametrize("backend_kind", ["memory", "file"])
    def test_write_batch_defers_and_flushes_grouped(self, backend_kind, tmp_path):
        rnd = random.Random(9)
        engine = Engine(_backend(backend_kind, tmp_path))
        model = [_random_interval(rnd) for _ in range(40)]
        coll = engine.create_collection("c", model)

        staged = [_random_interval(rnd) for _ in range(20)]
        victim = model[0]
        with coll.batch(max_size=100) as batch:
            for iv in staged[:10]:
                coll.insert(iv)
            assert coll.delete(victim) is True
            for iv in staged[10:]:
                coll.insert(iv)
            # nothing has been applied yet: queries still see the old state
            assert coll.live_count == len(model)
            assert len(batch) == 21
        model = [iv for iv in model if iv.uid != victim.uid] + staged
        self._check(coll, model)
        engine.close()

    def test_write_batch_autoflushes_at_max_size(self):
        engine = Engine(block_size=B)
        coll = engine.create_collection("c")
        with coll.batch(max_size=5) as batch:
            for i in range(7):
                coll.insert(Interval(i, i + 1))
            # 5 flushed at the bound, 2 still pending
            assert coll.live_count == 5
            assert len(batch) == 2
        assert coll.live_count == 7

    def test_batch_staged_validation(self):
        engine = Engine(block_size=B)
        iv = Interval(1, 2)
        coll = engine.create_collection("c", [iv])
        with coll.batch() as _:
            fresh = Interval(3, 4)
            coll.insert(fresh)
            with pytest.raises(ValueError, match="already indexed"):
                coll.insert(fresh)
            assert coll.delete(fresh) is True  # staged insert cancelled
            with pytest.raises(KeyError):
                coll.update(fresh, Interval(5, 6))  # no longer staged
        assert coll.live_count == 1

    def test_update_failure_restores_the_old_record(self):
        engine = Engine(block_size=B)
        kept = Interval(0, 10)
        coll = engine.create_collection("s", [kept], dynamic=False)
        # static collections reject single inserts; the update must fail
        # WITHOUT losing the record it already deleted
        with pytest.raises(NotImplementedError):
            coll.update(kept, Interval(1, 11))
        assert coll.live_count == 1
        assert _uids(coll.query(Stab(5.0))) == [kept.uid]
        # colliding target uid fails before anything is touched
        other = Interval(20, 30)
        engine2 = Engine(block_size=B)
        coll2 = engine2.create_collection("d", [kept, other])
        with pytest.raises(ValueError, match="already indexed"):
            coll2.update(kept, other)
        assert coll2.live_count == 2

    def test_engine_update_on_key_index_pairs(self):
        engine = Engine(block_size=B)
        engine.create_key_index("kv", [(1, "a"), (2, "b")])
        engine.update("kv", (1, "a"), (1, "z"))
        assert engine["kv"].search(1) == ["z"]
        with pytest.raises(KeyError):
            engine.update("kv", (9, "x"), (9, "y"))

    def test_bulk_load_inside_batch_is_deferred_and_validated(self):
        engine = Engine(block_size=B)
        coll = engine.create_collection("c")
        iv = Interval(0, 1)
        with coll.batch() as batch:
            assert coll.bulk_load([iv, Interval(2, 3)]) == 2
            assert coll.live_count == 0  # deferred, not applied
            with pytest.raises(ValueError, match="already indexed"):
                coll.insert(iv)  # staged state sees the bulk-loaded record
            assert len(batch) == 2
        assert coll.live_count == 2

    def test_batched_single_insert_works_on_static_collections(self):
        engine = Engine(block_size=B)
        coll = engine.create_collection("s", [Interval(0, 10)], dynamic=False)
        with coll.batch():
            coll.insert(Interval(5, 15))  # a 1-record run: bulk fallback
        assert coll.live_count == 2

    def test_duplicate_uid_insert_raises(self):
        engine = Engine(block_size=B)
        iv = Interval(1, 2)
        coll = engine.create_collection("c", [iv])
        with pytest.raises(ValueError, match="uid"):
            coll.insert(iv)
        with pytest.raises(ValueError, match="uid"):
            engine.insert("c", iv)
        with pytest.raises(ValueError, match="uid"):
            coll.bulk_load([iv])
        twin = Interval(7, 8)
        with pytest.raises(ValueError, match="uid"):
            coll.bulk_load([twin, twin])
        # the interval manager guards direct engine inserts the same way
        engine.create_interval_index("plain", [iv])
        with pytest.raises(ValueError, match="uid"):
            engine.insert("plain", iv)


# --------------------------------------------------------------------------- #
# every index kind, delete-heavy
# --------------------------------------------------------------------------- #
class TestDeleteHeavyEveryKind:
    @pytest.mark.parametrize("backend_kind", ["memory", "file"])
    @pytest.mark.parametrize("dynamic", [True, False])
    def test_interval_manager(self, backend_kind, dynamic, tmp_path):
        rnd = random.Random(3)
        engine = Engine(_backend(backend_kind, tmp_path))
        model = [_random_interval(rnd) for _ in range(120)]
        index = engine.create_interval_index("ivs", model, dynamic=dynamic)
        assert supports_deletes(index) and supports_bulk_load(index)
        for victim in rnd.sample(model, 90):  # deep into rebuild territory
            assert engine.delete("ivs", victim)
            model.remove(victim)
        for q in (10.0, 40.0, 77.0):
            assert _uids(engine.query("ivs", Stab(q))) == _uids(
                intervals_stabbed(model, q)
            )
        assert index.live_count == len(model)
        engine.close()

    @pytest.mark.parametrize("backend_kind", ["memory", "file"])
    def test_point_index_via_rebuilding_adapter(self, backend_kind, tmp_path):
        rnd = random.Random(4)
        engine = Engine(_backend(backend_kind, tmp_path))
        model = [PlanarPoint(rnd.uniform(0, 100), rnd.uniform(0, 100))
                 for _ in range(100)]
        index = engine.create_point_index("pts", model)
        assert supports_deletes(index) and supports_bulk_load(index)
        for victim in rnd.sample(model, 70):
            assert engine.delete("pts", victim)
            model.remove(victim)
        extra = [PlanarPoint(rnd.uniform(0, 100), rnd.uniform(0, 100))
                 for _ in range(10)]
        assert engine.bulk_load("pts", extra) == 10
        model.extend(extra)
        q = ThreeSidedQuery(20.0, 80.0, 30.0)
        want = sorted(p.uid for p in model if q.matches(p))
        assert sorted(p.uid for p in engine.query("pts", q)) == want
        engine.close()

    @pytest.mark.parametrize("method", ["simple", "combined", "single",
                                        "extent", "full-extent"])
    def test_class_indexer(self, method):
        rnd = random.Random(5)
        hierarchy = ClassHierarchy()
        hierarchy.add_class("Root")
        for name in "AB":
            hierarchy.add_class(name, "Root")
        engine = Engine(block_size=B)
        model = [ClassObject(rnd.uniform(0, 100), rnd.choice(["Root", "A", "B"]))
                 for _ in range(80)]
        index = engine.create_class_index("cls", hierarchy, model, method=method)
        assert supports_deletes(index) and supports_bulk_load(index)
        for victim in rnd.sample(model, 60):  # past the tombstone threshold
            assert engine.delete("cls", victim)
            model.remove(victim)
        extra = [ClassObject(rnd.uniform(0, 100), "A") for _ in range(8)]
        assert engine.bulk_load("cls", extra) == 8
        model.extend(extra)
        for cls in ("Root", "A"):
            want = sorted(o.uid for o in model
                          if o.class_name in hierarchy.descendants(cls)
                          and 20 <= o.key <= 70)
            got = sorted(o.uid for o in index.iter_query(cls, 20, 70))
            assert got == want, (method, cls)
        assert index.live_count == len(model)

    def test_key_index_btree(self):
        rnd = random.Random(6)
        engine = Engine(block_size=B)
        pairs = [(rnd.randrange(0, 50), i) for i in range(100)]
        tree = engine.create_key_index("kv", pairs)
        assert supports_deletes(tree) and supports_bulk_load(tree)
        for key, value in rnd.sample(pairs, 70):
            assert engine.delete("kv", key, value)
            pairs.remove((key, value))
        assert engine.bulk_load("kv", [(100 + i, i) for i in range(5)]) == 5
        pairs += [(100 + i, i) for i in range(5)]
        want = sorted(v for k, v in pairs if 10 <= k <= 30)
        assert sorted(v for _, v in tree.range_search(10, 30)) == want
        assert tree.size == len(pairs)

    def test_constraint_index(self):
        x = Variable("x")
        engine = Engine(block_size=B)
        tuples = [
            GeneralizedTuple(
                [Constraint(x, ">=", i), Constraint(x, "<=", i + 10)], name=f"t{i}"
            )
            for i in range(0, 60, 2)
        ]
        relation = GeneralizedRelation(["x"], tuples, name="r")
        index = engine.create_constraint_index("cons", relation, "x")
        assert supports_deletes(index) and supports_bulk_load(index)
        live = list(tuples)
        for victim in list(live)[::2]:
            assert engine.delete("cons", victim)
            live.remove(victim)
            assert engine.delete("cons", victim) is False
        got = sorted(gt.name for gt in index.stabbing_tuples(25))
        want = sorted(
            gt.name for gt in live
            if gt.projection("x")[0] <= 25 <= gt.projection("x")[1]
        )
        assert got == want
        assert index.live_count == len(live)


# --------------------------------------------------------------------------- #
# persistence: close on a page file, reopen, same answers and bounds
# --------------------------------------------------------------------------- #
class TestCatalogPersistence:
    def _populate(self, engine, intervals):
        engine.create_collection("temporal", intervals)
        engine.create_key_index("kv", [(i, f"v{i}") for i in range(40)])
        rnd = random.Random(8)
        engine.create_point_index(
            "pts",
            [PlanarPoint(rnd.uniform(0, 50), rnd.uniform(0, 50)) for _ in range(30)],
        )
        hierarchy = ClassHierarchy()
        hierarchy.add_class("Root")
        hierarchy.add_class("A", "Root")
        engine.create_class_index(
            "cls",
            hierarchy,
            [ClassObject(float(i), "A" if i % 2 else "Root") for i in range(30)],
        )

    def test_reopen_answers_within_the_same_bound(self, tmp_path):
        path = str(tmp_path / "db.pages")
        rnd = random.Random(7)
        intervals = [_random_interval(rnd) for _ in range(300)]

        reference = Engine(SimulatedDisk(B))
        self._populate(reference, intervals)
        ref = reference.query("temporal", Stab(42.0))
        ref_uids, ref_ios, ref_bound = _uids(ref), ref.ios, ref.bound

        with Engine(FileDisk(path, block_size=B)) as first:
            self._populate(first, intervals)
        # and the sidecar makes it a database: a fresh process reopens it
        with Engine.open(path) as engine:
            assert sorted(engine.names()) == ["cls", "kv", "pts", "temporal"]
            result = engine.query("temporal", Stab(42.0))
            assert _uids(result) == ref_uids
            # identical structure => identical accounting, not merely close
            assert result.ios == ref_ios
            assert result.bound == ref_bound
            assert result.ios <= BOUND_SLACK * result.bound + BOUND_SLACK_PAGES
            assert engine["kv"].search(7) == ["v7"]
            assert len(engine.query("pts", ThreeSidedQuery(0, 50, 0)).all()) == 30

    def test_reopened_engine_stays_writable_and_repersists(self, tmp_path):
        path = str(tmp_path / "db.pages")
        rnd = random.Random(10)
        intervals = [_random_interval(rnd) for _ in range(100)]
        with Engine(FileDisk(path, block_size=B)) as engine:
            engine.create_collection("temporal", intervals)

        with Engine.open(path) as engine:
            coll = engine["temporal"]
            survivors = coll.records()
            for victim in survivors[:40]:
                assert engine.delete("temporal", victim)
            added = [_random_interval(rnd) for _ in range(25)]
            assert engine.bulk_load("temporal", added) == 25
            model = survivors[40:] + added
            assert coll.live_count == len(model)

        # third process: the post-write state survived the second close
        with Engine.open(path) as engine:
            assert engine["temporal"].live_count == len(model)
            for q in (15.0, 55.0):
                want = _uids(intervals_stabbed(model, q))
                assert _uids(engine.query("temporal", Stab(q))) == want

    def test_fresh_uids_do_not_collide_after_restore(self, tmp_path):
        path = str(tmp_path / "db.pages")
        with Engine(FileDisk(path, block_size=B)) as engine:
            engine.create_collection("temporal", [Interval(0, 10), Interval(5, 15)])
        with Engine.open(path) as engine:
            restored_uids = set(_uids(engine["temporal"].records()))
            fresh = Interval(5.5, 6.5)
            assert fresh.uid not in restored_uids
            engine.insert("temporal", fresh)
            assert len(engine.query("temporal", Stab(6.0)).all()) == 3

    def test_catalog_listing_and_checkpoint_reclaims_space(self, tmp_path):
        path = str(tmp_path / "db.pages")
        disk = FileDisk(path, block_size=B)
        engine = Engine(disk)
        engine.create_collection("temporal", [Interval(i, i + 1) for i in range(50)])
        entries = engine.catalog()
        assert [e["name"] for e in entries] == ["temporal"]
        assert entries[0]["kind"] == "collection"
        assert entries[0]["records"] == 50
        engine.checkpoint()
        blocks_after_first = disk.blocks_in_use
        engine.checkpoint()  # supersedes, must not leak catalog blocks
        assert disk.blocks_in_use == blocks_after_first
        engine.close()

    def test_simulated_disk_checkpoint_roundtrips_in_process(self):
        engine = Engine(block_size=B)
        engine.create_interval_index("ivs", [Interval(0, 5)])
        root = engine.checkpoint()
        assert engine.backend.meta["catalog_root"] == root

    def test_dropped_index_stays_dropped_across_reopen(self, tmp_path):
        path = str(tmp_path / "db.pages")
        with Engine(FileDisk(path, block_size=B)) as engine:
            engine.create_collection("doomed", [Interval(0, 1)])
            engine.create_collection("kept", [Interval(2, 3)])
            engine.checkpoint()  # persists both...
            engine.drop_index("doomed")  # ...then close() must supersede it
        with Engine.open(path) as engine:
            assert engine.names() == ["kept"]

    def test_key_pair_values_advance_the_uid_counters(self, tmp_path):
        path = str(tmp_path / "db.pages")
        with Engine(FileDisk(path, block_size=B)) as engine:
            # uid-bearing records hidden inside (key, value) pairs only
            engine.create_key_index("kv", [(iv.low, iv) for iv in
                                           (Interval(0, 1), Interval(2, 3))])
        with Engine.open(path) as engine:
            restored = {iv.uid for _, iv in engine["kv"].iter_pairs()}
            assert Interval(9, 10).uid not in restored


class TestFailedWritesLeaveStructuresIntact:
    def test_bulk_load_with_incomparable_records_raises_cleanly(self):
        engine = Engine(block_size=B)
        manager = engine.create_interval_index("ivs", [Interval(i, i + 5)
                                                       for i in range(10)])
        with pytest.raises(TypeError):
            manager.bulk_load([Interval("a", "b")])  # unorderable vs ints
        # nothing mutated, nothing lost
        assert manager.live_count == 10
        assert len(manager.stabbing_query(5)) == 6

    def test_class_bulk_load_unknown_class_raises_cleanly(self):
        hierarchy = ClassHierarchy()
        hierarchy.add_class("Root")
        engine = Engine(block_size=B)
        index = engine.create_class_index(
            "cls", hierarchy, [ClassObject(float(i), "Root") for i in range(10)]
        )
        with pytest.raises(KeyError):
            index.bulk_load([ClassObject(1.0, "NoSuchClass")])
        assert index.live_count == 10
        assert len(index.query("Root", 0, 100)) == 10

    def test_engine_close_is_idempotent_on_persistent_backends(self, tmp_path):
        path = str(tmp_path / "db.pages")
        engine = Engine(FileDisk(path, block_size=B))
        engine.create_collection("c", [Interval(0, 1)])
        engine.close()
        engine.close()  # second close: no-op, no checkpoint on a closed disk
        with Engine.open(path) as reopened:
            assert reopened["c"].live_count == 1

    def test_rebuilding_index_survives_a_failing_fold_in(self):
        from repro.engine import RebuildingIndex
        from repro.pst import ExternalPST

        disk = SimulatedDisk(4)
        pts = [PlanarPoint(float(i), float(i)) for i in range(20)]
        index = RebuildingIndex(disk, lambda items: ExternalPST(disk, items), pts)
        # three clean pending records, then an incomparable one as the
        # log-full trigger: the rebuild must fail without bricking the index
        for i in range(3):
            index.insert(PlanarPoint(100.0 + i, 100.0 + i))
        with pytest.raises(TypeError):
            index.insert(PlanarPoint("g", "h"))  # 4th = B: triggers rebuild
        # still answering queries (old structure + overlay), bad insert undone
        assert len(index.query(ThreeSidedQuery(0.0, 300.0, 0.0)).all()) == 23
        assert index.live_count == 23

    def test_failed_single_insert_leaves_no_phantom_record(self):
        engine = Engine(block_size=B)
        manager = engine.create_interval_index("ivs", [Interval(float(i), i + 2.0)
                                                       for i in range(10)])
        with pytest.raises(TypeError):
            manager.insert(Interval("a", "b"))  # incomparable endpoints
        assert manager.live_count == 10
        # later batch work must not choke on a phantom from the failed insert
        manager.bulk_load([Interval(50.0, 55.0)])
        assert manager.live_count == 11

    def test_failed_static_constraint_insert_does_not_leak_into_relation(self):
        x = Variable("x")
        engine = Engine(block_size=B)
        gt0 = GeneralizedTuple([Constraint(x, ">=", 0), Constraint(x, "<=", 1)])
        relation = GeneralizedRelation(["x"], [gt0], name="r")
        index = engine.create_constraint_index("cons", relation, "x", dynamic=False)
        gt = GeneralizedTuple([Constraint(x, ">=", 5), Constraint(x, "<=", 6)])
        with pytest.raises(NotImplementedError):
            index.insert(gt)  # static manager refuses single inserts
        assert len(relation.tuples) == 1  # the catalog must not persist gt
        assert index.live_count == 1

    def test_bulk_load_into_batch_validates_whole_batch_first(self):
        engine = Engine(block_size=B)
        live = Interval(0, 1)
        coll = engine.create_collection("c", [live])
        with coll.batch() as batch:
            with pytest.raises(ValueError, match="uid"):
                coll.bulk_load([Interval(2, 3), live])  # dup mid-batch
            assert len(batch) == 0  # nothing partially staged
        assert coll.live_count == 1

    def test_constraint_bulk_load_rejects_intra_batch_duplicates(self):
        x = Variable("x")
        engine = Engine(block_size=B)
        relation = GeneralizedRelation(["x"], [], name="r")
        index = engine.create_constraint_index("cons", relation, "x")
        gt = GeneralizedTuple([Constraint(x, ">=", 0), Constraint(x, "<=", 1)])
        with pytest.raises(ValueError, match="repeats"):
            index.bulk_load([gt, gt])
        assert index.live_count == 0 and len(relation.tuples) == 0


class TestReinsertAfterDelete:
    def test_interval_manager_reinsert_is_visible(self):
        iv = Interval(0, 10)
        engine = Engine(block_size=B)
        manager = engine.create_interval_index("ivs", [iv, Interval(2, 4)])
        assert manager.delete(iv)
        manager.insert(iv)  # before any sweeping rebuild
        assert iv.uid in _uids(manager.stabbing_query(5))
        assert manager.live_count == 2

    def test_combined_class_reinsert_is_visible_exactly_once(self):
        hierarchy = ClassHierarchy()
        hierarchy.add_class("Root")
        objs = [ClassObject(float(i), "Root") for i in range(5)]
        from repro.core import ClassIndexer

        index = ClassIndexer(SimulatedDisk(B), hierarchy, objs, method="combined")
        victim = objs[2]
        assert index.delete(victim)  # tombstoned; stale copy still physical
        index.insert(victim)
        hits = [o.uid for o in index.iter_query("Root", 0, 10)]
        assert hits.count(victim.uid) == 1
        assert len(hits) == 5

    def test_collection_delete_then_reinsert_roundtrip(self):
        iv = Interval(0, 10)
        engine = Engine(block_size=B)
        coll = engine.create_collection("c", [iv])
        assert coll.delete(iv)
        coll.insert(iv)
        assert _uids(coll.query(Stab(5.0))) == [iv.uid]


class TestEagerQueryTombstones:
    def test_combined_eager_query_filters_deleted_records(self):
        from repro.core import ClassIndexer

        hierarchy = ClassHierarchy()
        hierarchy.add_class("Root")
        objs = [ClassObject(float(i), "Root") for i in range(5)]
        index = ClassIndexer(SimulatedDisk(B), hierarchy, objs, method="combined")
        victim = objs[2]
        assert index.delete(victim)  # combined has no native delete: tombstoned
        eager = index.query("Root", 0.0, 10.0)
        assert victim.uid not in {o.uid for o in eager}
        assert len(eager) == 4
