"""The observability subsystem: tracer, metrics, slow-query log, wire export.

Covers the span/IO composition invariants (a parent span's I/O covers its
children's, and the request root's annotations reproduce the paper-bound
residual the test suite gates), exactness of the always-on metrics under
an 8-thread hammer, the slow-query log's threshold/file behaviour, and
the ``metrics`` wire command on both a single server and a thread-mode
cluster — the runtime twin of the wire-exhaustiveness checks.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro import Engine, Param, SimulatedDisk, Stab
from repro.cluster import Cluster
from repro.engine.planner import BOUND_SLACK, BOUND_SLACK_PAGES
from repro.io import FileDisk
from repro.obs import REGISTRY, SLOWLOG, TRACER, render_span_tree
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.server import ReproClient, ReproServer, ServerError
from repro.workloads import random_intervals


@pytest.fixture(autouse=True)
def clean_obs():
    """Every test starts and ends with tracing off and fresh registries."""
    obs_tracer.disable()
    obs_tracer.BYPASS = False
    REGISTRY.reset()
    SLOWLOG.configure(threshold_ms=None, path=None)
    SLOWLOG.reset()
    yield
    obs_tracer.disable()
    obs_tracer.BYPASS = False
    REGISTRY.reset()
    SLOWLOG.configure(threshold_ms=None, path=None)
    SLOWLOG.reset()


def make_session(n=800, dynamic=True):
    engine = Engine(SimulatedDisk(16))
    session = engine.session()
    session.create_collection(
        "c", random_intervals(n, seed=3, mean_length=20.0), dynamic=dynamic
    )
    return engine, session


# --------------------------------------------------------------------------- #
# tracer core
# --------------------------------------------------------------------------- #
class TestTracerCore:
    def test_disabled_span_is_the_shared_noop(self):
        sp = obs_tracer.span("anything", foo=1)
        assert sp is obs_tracer.span("other")           # one shared object
        assert isinstance(sp, obs_tracer.NullSpan)
        with sp:
            sp.annotate(bar=2)                           # all no-ops
        assert sp.ios == 0
        assert obs_tracer.current_span() is None

    def test_bypass_wins_even_when_enabled(self):
        obs_tracer.enable()
        obs_tracer.BYPASS = True
        assert isinstance(obs_tracer.span("x"), obs_tracer.NullSpan)

    def test_enabled_spans_nest_and_capture(self):
        obs_tracer.enable()
        with TRACER.capture() as cap:
            with obs_tracer.span("root", kind="test") as root:
                assert obs_tracer.current_span() is root
                with obs_tracer.span("child") as child:
                    assert obs_tracer.current_span() is child
                with obs_tracer.span("sibling"):
                    pass
        assert [sp.name for sp in cap.roots] == ["root"]
        assert [c.name for c in cap.roots[0].children] == ["child", "sibling"]
        assert cap.roots[0].attrs == {"kind": "test"}
        assert obs_tracer.current_span() is None

    def test_out_of_order_exit_keeps_sibling_nesting(self):
        # a span closed late (abandoned generator) must not corrupt the
        # stack around it: identity-based removal, not pop()
        obs_tracer.enable()
        with TRACER.capture() as cap:
            outer = obs_tracer.span("outer").__enter__()
            stray = obs_tracer.span("stray").__enter__()
            late = obs_tracer.span("late").__enter__()
            stray.__exit__(None, None, None)     # closes out of order
            assert obs_tracer.current_span() is late
            late.__exit__(None, None, None)
            outer.__exit__(None, None, None)
        (root,) = cap.roots
        # parenting is fixed at creation: "late" opened under "stray"
        (stray_sp,) = root.children
        assert stray_sp.name == "stray"
        assert [c.name for c in stray_sp.children] == ["late"]

    def test_double_exit_is_idempotent(self):
        obs_tracer.enable()
        with TRACER.capture() as cap:
            sp = obs_tracer.span("once").__enter__()
            sp.__exit__(None, None, None)
            sp.__exit__(None, None, None)
        assert len(cap.roots) == 1

    def test_ring_keeps_recent_roots_when_nobody_captures(self):
        obs_tracer.enable()
        before = TRACER.stats_dict()["roots_finished"]
        with obs_tracer.span("ringed"):
            pass
        stats = TRACER.stats_dict()
        assert stats["roots_finished"] == before + 1
        assert any(sp.name == "ringed" for sp in TRACER.recent_roots())

    def test_render_span_tree_format(self):
        obs_tracer.enable()
        with TRACER.capture() as cap:
            with obs_tracer.span("parent", op="q"):
                with obs_tracer.span("leaf"):
                    pass
        lines = render_span_tree(cap.roots[0])
        assert len(lines) == 2
        assert lines[0].startswith("parent") and "ios=0" in lines[0]
        assert "[op='q']" in lines[0]
        assert lines[1].startswith("  leaf")


# --------------------------------------------------------------------------- #
# session/request tracing: the composition + residual invariants
# --------------------------------------------------------------------------- #
class TestRequestTracing:
    def test_query_span_tree_composes_and_residual_matches_bound(self):
        engine, session = make_session(dynamic=False)
        obs_tracer.enable()
        with TRACER.capture() as cap:
            result = session.query("c", Stab(500.0))
        (root,) = cap.roots
        assert root.name == "session.request"
        assert root.attrs["op"] == "query"
        # annotations: actual I/Os, the paper bound, and their difference
        assert root.attrs["ios"] == result.stats.total == root.io.total
        assert root.attrs["bound"] == result.bound
        assert root.attrs["residual"] == result.stats.total - result.bound
        # the BOUND_SLACK gate, in trace form
        assert result.stats.total <= BOUND_SLACK * result.bound + BOUND_SLACK_PAGES
        # the tree composes: all request I/O happened inside the read turn
        (turn,) = root.children
        assert turn.name == "engine.read_turn"
        assert turn.io.total == root.io.total
        assert sum(child.io.total for child in root.children) == result.stats.total

    def test_prepared_run_uses_the_fast_path_span_shape(self):
        engine, session = make_session(dynamic=False)
        prepared = session.prepare("c", Stab(Param("x")))
        session.run(prepared, x=500.0)            # prime untraced
        obs_tracer.enable()
        with TRACER.capture() as cap:
            result = session.run(prepared, x=500.0)
        (root,) = cap.roots
        assert root.attrs["op"] == "run"
        (turn,) = root.children
        names = [c.name for c in turn.children]
        # the prepared path never re-plans: no planner.plan span
        assert "planner.plan" not in names
        assert "plan.execute" in names
        assert root.io.total == result.stats.total

    def test_adhoc_query_shows_planner_spans_with_cache_attrs(self):
        engine, session = make_session(dynamic=False)
        obs_tracer.enable()
        with TRACER.capture() as cap:
            session.query("c", Stab(100.0))       # cold: miss + enumerate
            session.query("c", Stab(900.0))       # same shape: cache hit
        cold, warm = cap.roots
        cold_plan = [c for c in cold.children[0].children
                     if c.name == "planner.plan"]
        warm_plan = [c for c in warm.children[0].children
                     if c.name == "planner.plan"]
        assert cold_plan and warm_plan
        assert cold_plan[0].attrs["cache_hit"] is False
        assert [c.name for c in cold_plan[0].children] == ["planner.enumerate"]
        assert warm_plan[0].attrs["cache_hit"] is True
        assert warm_plan[0].children == []

    def test_write_commit_kernel_spans(self, tmp_path):
        engine = Engine(FileDisk(str(tmp_path / "t.pages"), block_size=16))
        engine.attach_wal()
        session = engine.session()
        session.create_collection("c", dynamic=True)
        obs_tracer.enable()
        from repro.interval import Interval
        with TRACER.capture() as cap:
            session.insert("c", Interval(1.0, 2.0))
        engine.close()
        (root,) = cap.roots
        assert root.attrs["op"] == "insert"
        names = [c.name for c in root.children]
        # the commit protocol, in span form and in order
        assert names == ["commit.apply", "wal.append", "wal.sync",
                         "epoch.publish"]
        sync = root.children[2]
        assert sync.io.fsyncs >= 1                 # the durability barrier
        assert "lsn" in sync.attrs

    def test_limit_abandoned_residual_scan_leaves_tree_intact(self):
        engine, session = make_session(dynamic=False)
        obs_tracer.enable()
        q = (Stab(500.0) & Stab(500.0)).limit(1)   # forces a residual filter
        with TRACER.capture() as cap:
            result = session.query("c", q)
        assert len(result.records) <= 1
        (root,) = cap.roots
        assert root.name == "session.request"      # nesting survived

    def test_span_as_dict_round_trips_to_json(self):
        engine, session = make_session(dynamic=False)
        obs_tracer.enable()
        with TRACER.capture() as cap:
            session.query("c", Stab(500.0))
        data = json.loads(json.dumps(cap.roots[0].as_dict()))
        assert data["name"] == "session.request"
        assert data["children"][0]["name"] == "engine.read_turn"
        assert data["ios"] == data["io"]["total"]


# --------------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_gauge_roundtrip(self):
        REGISTRY.counter("x").inc()
        REGISTRY.counter("x").inc(4)
        REGISTRY.gauge("g").set(2.5)
        assert REGISTRY.counter("x").value == 5
        assert REGISTRY.gauge("g").value == 2.5

    def test_histogram_exact_accounting_and_percentiles(self):
        h = obs_metrics.Histogram("t", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 5
        assert d["sum"] == 556.0
        assert d["max"] == 500.0
        assert 0.0 < d["p50"] <= 10.0
        assert d["p99"] <= 500.0
        assert d["p50"] <= d["p95"] <= d["p99"]

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            obs_metrics.Histogram("bad", buckets=(10.0, 1.0))

    def test_snapshot_shape_and_counter_prefix_filter(self):
        REGISTRY.counter("server.ops.query").inc(3)
        REGISTRY.counter("router.ops.query").inc(1)
        REGISTRY.histogram("lat").observe(1.0)
        snap = REGISTRY.snapshot()
        assert snap["counters"]["server.ops.query"] == 3
        assert snap["histograms"]["lat"]["count"] == 1
        assert REGISTRY.counter_values("server.") == {"server.ops.query": 3}

    def test_counters_are_exact_under_contention(self):
        threads, per_thread = 8, 500

        def worker():
            c = REGISTRY.counter("hammered")
            for _ in range(per_thread):
                c.inc()

        workers = [threading.Thread(target=worker) for _ in range(threads)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert REGISTRY.counter("hammered").value == threads * per_thread


# --------------------------------------------------------------------------- #
# the 8-thread hammer: span nesting + exact engine counters
# --------------------------------------------------------------------------- #
class TestConcurrencyHammer:
    THREADS, PER_THREAD = 8, 20

    def test_hammer_span_nesting_and_exact_counters(self):
        engine, session0 = make_session(n=600)
        session0.query("c", Stab(500.0))           # warm the plan cache
        REGISTRY.reset()
        obs_tracer.enable()
        trees: list = [None] * self.THREADS
        errors: list = []

        def reader(tid: int) -> None:
            try:
                session = engine.session()
                with TRACER.capture() as cap:
                    for i in range(self.PER_THREAD):
                        session.query("c", Stab(100.0 + 100.0 * tid + i))
                trees[tid] = cap.roots
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=reader, args=(t,))
            for t in range(self.THREADS)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert errors == []

        total = self.THREADS * self.PER_THREAD
        for roots in trees:
            assert len(roots) == self.PER_THREAD
            for root in roots:
                # exact nesting: request -> read turn -> plan + execute
                assert root.name == "session.request"
                (turn,) = root.children
                assert turn.name == "engine.read_turn"
                names = [c.name for c in turn.children]
                assert names == ["planner.plan", "plan.execute"]
                # I/O composes at every level, even under contention
                assert root.io.total == turn.io.total
                assert root.attrs["ios"] == root.io.total

        # exact metrics: every lookup hit the warmed plan cache, every
        # read turn measured its latch wait, nothing lost to races
        assert REGISTRY.counter("planner.cache_hits").value == total
        assert REGISTRY.counter("planner.cache_misses").value == 0
        assert REGISTRY.histogram("engine.read_latch_wait_ms").count == total

    def test_hammer_writes_measure_the_commit_kernel_exactly(self):
        engine, _ = make_session(n=200)
        REGISTRY.reset()
        obs_tracer.enable()
        from repro.interval import Interval
        errors: list = []

        def writer(tid: int) -> None:
            try:
                session = engine.session()
                with TRACER.capture() as cap:
                    for i in range(self.PER_THREAD):
                        session.insert(
                            "c", Interval(float(tid), float(tid) + 1.0)
                        )
                for root in cap.roots:
                    assert root.attrs["op"] == "insert"
                    names = [c.name for c in root.children]
                    assert names == ["commit.apply", "epoch.publish"]
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        workers = [
            threading.Thread(target=writer, args=(t,))
            for t in range(self.THREADS)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        assert errors == []
        total = self.THREADS * self.PER_THREAD
        assert REGISTRY.histogram("engine.write_mutex_wait_ms").count == total


# --------------------------------------------------------------------------- #
# slow-query log
# --------------------------------------------------------------------------- #
class TestSlowQueryLog:
    def test_threshold_gates_recording(self):
        engine, session = make_session(dynamic=False)
        obs_tracer.enable()
        SLOWLOG.configure(threshold_ms=1e9)        # nothing is that slow
        session.query("c", Stab(500.0))
        assert SLOWLOG.stats_dict()["recorded"] == 0
        SLOWLOG.configure(threshold_ms=0.0)        # everything qualifies
        session.query("c", Stab(500.0))
        entries = SLOWLOG.recent()
        assert SLOWLOG.stats_dict()["recorded"] == 1
        assert entries[-1]["trace"]["name"] == "session.request"
        assert entries[-1]["plan"]                 # the executed Plan, rendered
        assert entries[-1]["wall_ms"] >= 0.0

    def test_disabled_without_tracing(self):
        # no span tree -> nothing to consider, even with a threshold set
        engine, session = make_session(dynamic=False)
        SLOWLOG.configure(threshold_ms=0.0)
        session.query("c", Stab(500.0))
        assert SLOWLOG.stats_dict()["recorded"] == 0

    def test_file_sink_appends_json_lines(self, tmp_path):
        engine, session = make_session(dynamic=False)
        path = str(tmp_path / "slow.jsonl")
        obs_tracer.enable()
        SLOWLOG.configure(threshold_ms=0.0, path=path)
        session.query("c", Stab(500.0))
        session.query("c", Stab(600.0))
        with open(path) as fh:
            lines = [json.loads(line) for line in fh if line.strip()]
        assert len(lines) == 2
        assert all(e["trace"]["name"] == "session.request" for e in lines)


# --------------------------------------------------------------------------- #
# the metrics wire command (single server + cluster): runtime twins of
# the wire-exhaustiveness checks
# --------------------------------------------------------------------------- #
class TestWireMetrics:
    def test_metrics_after_a_mixed_workload(self, tmp_path):
        engine = Engine(FileDisk(str(tmp_path / "m.pages"), block_size=16))
        engine.attach_wal()
        with ReproServer(engine, close_engine=True) as srv:
            with ReproClient(*srv.address) as db:
                db.create("base", records=[])
                db.bulk_load("base", random_intervals(120, seed=2))
                queries = 6
                for i in range(queries):
                    db.query("base", Stab(100.0 + 100.0 * i))
                payload = db.metrics()

        assert payload["ok"] is True
        assert payload["uptime_s"] >= 0.0
        # plan-cache hit ratio after repeated same-shape queries
        cache = payload["plan_cache"]
        assert cache["hits"] >= queries - 1
        assert 0.0 < cache["hit_ratio"] <= 1.0
        # WAL group-absorption counters (serial writes: ratio simply 0.0)
        wal = payload["wal"]
        assert wal["commits"] >= 2                 # create + bulk_load
        assert wal["group_absorbed_ratio"] is not None
        assert wal["syncs"] >= 1
        # per-command ops + latency histograms, exact for this test's
        # traffic (the autouse fixture reset the process registry)
        counters = payload["metrics"]["counters"]
        assert counters["server.ops.query"] == queries
        assert counters["server.ops.bulk_load"] == 1
        latency = payload["metrics"]["histograms"]["server.latency_ms.query"]
        assert latency["count"] == queries
        assert latency["p50"] <= latency["p95"] <= latency["p99"]
        # epoch-pin age gauge rides along
        assert "pin_age_s" in payload["epochs"]
        assert payload["tracer"]["enabled"] is False
        assert payload["slowlog"]["threshold_ms"] is None

    def test_metrics_on_a_fresh_walless_server(self):
        engine = Engine(SimulatedDisk(16))
        with ReproServer(engine, close_engine=True) as srv:
            with ReproClient(*srv.address) as db:
                payload = db.metrics()
        assert payload["wal"] is None
        assert payload["plan_cache"]["hit_ratio"] is None
        assert payload["metrics"]["counters"]["server.ops.metrics"] == 1

    def test_cluster_metrics_aggregates_shards(self):
        with Cluster.create(None, shards=3, strategy="hash",
                            mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[])
                db.bulk_load("base", random_intervals(60, seed=4))
                for i in range(4):
                    db.query("base", Stab(50.0 + i))
                payload = db.metrics()

        assert payload["uptime_s"] >= 0.0
        assert len(payload["shards"]) == 3
        for shard in payload["shards"]:
            assert {"shard", "uptime_s", "plan_cache", "wal",
                    "metrics"} <= set(shard)
        # hash reads broadcast: every shard was contacted for every query
        routing = payload["cluster"]["routing"]
        assert routing["reads"] >= 4
        contacts = payload["cluster"]["contacts_by_shard"]
        assert set(contacts) == {"0", "1", "2"}
        assert all(v >= 4 for v in contacts.values())
        # summed plan-cache counters produce a cluster-wide hit ratio
        assert payload["plan_cache"]["hits"] >= 1
        assert payload["plan_cache"]["hit_ratio"] is not None
        # the frontend's own command surface is measured too
        assert payload["metrics"]["counters"]["router.ops.query"] == 4

    def test_cluster_metrics_with_a_dead_shard_is_structured(self):
        with Cluster.create(None, shards=2, strategy="hash",
                            mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.ping()
                cluster.supervisor.handles[1].server.close()
                cluster.router._links[1].close()
                with pytest.raises(ServerError) as err:
                    db.metrics()                   # scatters to all shards
                assert err.value.code == "shard_unavailable"

    def test_stats_now_reports_uptime(self):
        engine = Engine(SimulatedDisk(16))
        with ReproServer(engine, close_engine=True) as srv:
            with ReproClient(*srv.address) as db:
                stats = db.stats()
        assert stats["uptime_s"] >= 0.0


# --------------------------------------------------------------------------- #
# epoch-pin age + WAL ratio plumbing the export relies on
# --------------------------------------------------------------------------- #
class TestExportPlumbing:
    def test_pin_age_tracks_the_oldest_live_pin(self):
        engine, session = make_session(dynamic=False)
        epochs = engine.epochs
        assert epochs.pin_age_s() is None
        with epochs.pinned():
            age = epochs.pin_age_s()
            assert age is not None and age >= 0.0
            with epochs.pinned():               # nested pin, same epoch
                assert epochs.pin_age_s() >= age
        assert epochs.pin_age_s() is None

    def test_group_absorbed_ratio_none_until_first_commit(self, tmp_path):
        engine = Engine(FileDisk(str(tmp_path / "r.pages"), block_size=16))
        engine.attach_wal()
        assert engine.wal.group_absorbed_ratio is None
        session = engine.session()
        session.create_collection("c", dynamic=True)
        ratio = engine.wal.group_absorbed_ratio
        assert ratio is not None and 0.0 <= ratio <= 1.0
        engine.close()

    def test_wal_bench_fragment_is_uniform(self):
        from repro.durability.wal import bench_fragment
        engine = Engine(SimulatedDisk(16))
        fragment = bench_fragment(engine)
        assert fragment == {
            "commits": 0, "syncs": 0, "group_absorbed": 0,
            "group_absorbed_ratio": None, "fsyncs": 0,
        }
