"""Smoke tests: the shipped examples run and print what they promise.

The heavier examples are exercised with reduced workloads by importing their
building blocks; the quickstart is run end-to-end.
"""

import os
import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
#: the examples import ``repro`` from a subprocess, which sees neither the
#: pytest ``pythonpath`` setting nor an editable install of this checkout
_ENV = {
    **os.environ,
    "PYTHONPATH": os.pathsep.join(
        p for p in (str(EXAMPLES.parent / "src"), os.environ.get("PYTHONPATH")) if p
    ),
}


class TestQuickstart:
    def test_runs_end_to_end(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=120,
            env=_ENV,
        )
        assert result.returncode == 0, result.stderr
        assert "external dynamic interval management" in result.stdout
        assert "I/Os" in result.stdout
        assert "class indexing" in result.stdout


class TestExampleModulesImportable:
    @pytest.mark.parametrize(
        "name",
        ["quickstart", "temporal_versions", "people_class_hierarchy",
         "constraint_rectangles", "io_scaling_study", "planner_tour",
         "lifecycle_tour", "server_tour"],
    )
    def test_importable_without_running_main(self, name):
        """Every example is importable (its functions can be reused as a library)."""
        namespace = runpy.run_path(str(EXAMPLES / f"{name}.py"), run_name="not_main")
        entry_points = ("main", "interval_quickstart", "interval_scaling")
        assert any(name_ in namespace for name_ in entry_points)


class TestExampleBuildingBlocks:
    def test_temporal_history_builder(self):
        module = runpy.run_path(str(EXAMPLES / "temporal_versions.py"), run_name="not_main")
        versions = module["build_history"](seed=1)
        assert len(versions) > 100
        assert all(iv.low <= iv.high for iv in versions)

    def test_people_population_builder(self):
        module = runpy.run_path(str(EXAMPLES / "people_class_hierarchy.py"), run_name="not_main")
        hierarchy, people = module["build_population"](seed=2)
        assert set(o.class_name for o in people) <= set(hierarchy.classes())
        assert len(people) == module["N_PEOPLE"]

    def test_rectangle_builder(self):
        module = runpy.run_path(str(EXAMPLES / "constraint_rectangles.py"), run_name="not_main")
        rects = module["build_rectangles"](seed=3)
        assert len(rects) == module["N_RECTANGLES"]
        for _, a, b, c, d in rects:
            assert a <= c and b <= d


class TestPlannerTour:
    def test_runs_end_to_end(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "planner_tour.py")],
            capture_output=True,
            text=True,
            timeout=300,
            env=_ENV,
        )
        assert result.returncode == 0, result.stderr
        assert "Index(interval-manager)" in result.stdout
        assert "residual filter" in result.stdout
        assert "Union" in result.stdout
        assert "pagination" in result.stdout


class TestServerTour:
    def test_runs_end_to_end(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "server_tour.py")],
            capture_output=True,
            text=True,
            timeout=300,
            env=_ENV,
        )
        assert result.returncode == 0, result.stderr
        assert "concurrent clients" in result.stdout
        assert "ios/query" in result.stdout
        assert "retired sessions: 4" in result.stdout
        assert "server tour ok" in result.stdout


class TestLifecycleTour:
    def test_runs_end_to_end(self):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "lifecycle_tour.py")],
            capture_output=True,
            text=True,
            timeout=300,
            env=_ENV,
        )
        assert result.returncode == 0, result.stderr
        assert "bulk-loaded" in result.stdout
        assert "identical across the reopen" in result.stdout
        assert "lifecycle tour ok" in result.stdout
