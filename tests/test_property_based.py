"""Property-based tests (hypothesis) for the core data structures and invariants.

Each property compares an external structure against its brute-force oracle
on arbitrary generated inputs, or checks a structural invariant the paper's
proofs rely on.  Sizes are kept moderate so the whole module stays fast.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.classes import CombinedClassIndex, SimpleClassIndex
from repro.classes.decomposition import label_edges, rake_and_contract
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.core import ExternalIntervalManager
from repro.interval import Interval
from repro.io import SimulatedDisk
from repro.metablock import AugmentedMetablockTree, StaticMetablockTree, ThreeSidedMetablockTree
from repro.metablock.corner import CornerStructure
from repro.metablock.geometry import PlanarPoint
from repro.pst import ExternalPST

SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)
small_float = st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False)


# --------------------------------------------------------------------------- #
# B+-tree
# --------------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(
    keys=st.lists(st.integers(min_value=-500, max_value=500), max_size=150),
    bounds=st.tuples(st.integers(-500, 500), st.integers(-500, 500)),
    block_size=st.sampled_from([4, 8, 16]),
)
def test_btree_range_search_matches_oracle(keys, bounds, block_size):
    tree = BPlusTree(SimulatedDisk(block_size))
    for i, k in enumerate(keys):
        tree.insert(k, i)
    lo, hi = min(bounds), max(bounds)
    expected = sorted((k, i) for i, k in enumerate(keys) if lo <= k <= hi)
    assert sorted(tree.range_search(lo, hi)) == expected


@settings(**SETTINGS)
@given(keys=st.lists(st.integers(min_value=0, max_value=100), min_size=1, max_size=120))
def test_btree_iteration_is_sorted_and_complete(keys):
    tree = BPlusTree.bulk_load(SimulatedDisk(8), ((k, None) for k in keys))
    stored = [k for k, _ in tree.iter_pairs()]
    assert stored == sorted(keys)
    assert len(tree) == len(keys)


# --------------------------------------------------------------------------- #
# corner structure and metablock trees
# --------------------------------------------------------------------------- #
def _interval_points(raw):
    return [PlanarPoint(lo, lo + abs(length), payload=i) for i, (lo, length) in enumerate(raw)]


@settings(**SETTINGS)
@given(
    raw=st.lists(st.tuples(small_float, small_float), max_size=120),
    q=st.floats(min_value=-100, max_value=2100, allow_nan=False),
)
def test_corner_structure_matches_oracle(raw, q):
    pts = _interval_points(raw)
    corner = CornerStructure(SimulatedDisk(4), pts)
    got, _ = corner.query(q)
    assert sorted((p.x, p.y) for p in got) == sorted(
        (p.x, p.y) for p in pts if p.x <= q and p.y >= q
    )


@settings(**SETTINGS)
@given(
    raw=st.lists(st.tuples(small_float, small_float), max_size=200),
    queries=st.lists(st.floats(min_value=-100, max_value=2100, allow_nan=False), max_size=5),
    block_size=st.sampled_from([4, 8]),
)
def test_static_metablock_tree_matches_oracle(raw, queries, block_size):
    pts = _interval_points(raw)
    tree = StaticMetablockTree(SimulatedDisk(block_size), pts)
    tree.check_invariants()
    for q in queries:
        got = sorted((p.x, p.y) for p in tree.diagonal_query(q))
        assert got == sorted((p.x, p.y) for p in pts if p.x <= q and p.y >= q)


@settings(**SETTINGS)
@given(
    raw=st.lists(st.tuples(small_float, small_float), max_size=150),
    q=st.floats(min_value=-100, max_value=2100, allow_nan=False),
)
def test_dynamic_metablock_tree_matches_oracle_after_inserts(raw, q):
    pts = _interval_points(raw)
    tree = AugmentedMetablockTree(SimulatedDisk(4))
    for p in pts:
        tree.insert(p)
    tree.check_invariants()
    got = sorted((p.x, p.y) for p in tree.diagonal_query(q))
    assert got == sorted((p.x, p.y) for p in pts if p.x <= q and p.y >= q)


@settings(**SETTINGS)
@given(
    pts=st.lists(st.tuples(small_float, small_float), max_size=150),
    window=st.tuples(small_float, small_float, small_float),
)
def test_external_pst_matches_oracle(pts, window):
    points = [PlanarPoint(x, y, payload=i) for i, (x, y) in enumerate(pts)]
    pst = ExternalPST(SimulatedDisk(4), points)
    a, b, y0 = window
    x1, x2 = min(a, b), max(a, b)
    got = sorted((p.x, p.y) for p in pst.query_3sided(x1, x2, y0))
    assert got == sorted((p.x, p.y) for p in points if x1 <= p.x <= x2 and p.y >= y0)


@settings(**SETTINGS)
@given(
    pts=st.lists(st.tuples(small_float, small_float), max_size=150),
    window=st.tuples(small_float, small_float, small_float),
    dynamic=st.booleans(),
)
def test_three_sided_metablock_matches_oracle(pts, window, dynamic):
    points = [PlanarPoint(x, y, payload=i) for i, (x, y) in enumerate(pts)]
    if dynamic:
        tree = ThreeSidedMetablockTree(SimulatedDisk(4))
        for p in points:
            tree.insert(p)
    else:
        tree = ThreeSidedMetablockTree(SimulatedDisk(4), points)
    tree.check_invariants()
    a, b, y0 = window
    x1, x2 = min(a, b), max(a, b)
    got = sorted((p.x, p.y) for p in tree.query_3sided(x1, x2, y0))
    assert got == sorted((p.x, p.y) for p in points if x1 <= p.x <= x2 and p.y >= y0)


# --------------------------------------------------------------------------- #
# interval manager
# --------------------------------------------------------------------------- #
@settings(**SETTINGS)
@given(
    raw=st.lists(st.tuples(small_float, small_float), max_size=120),
    stab=st.floats(min_value=-100, max_value=2100, allow_nan=False),
    window=st.tuples(small_float, small_float),
)
def test_interval_manager_matches_oracle(raw, stab, window):
    intervals = [Interval(lo, lo + abs(length), payload=i) for i, (lo, length) in enumerate(raw)]
    manager = ExternalIntervalManager(SimulatedDisk(4), intervals, dynamic=False)
    got = sorted((iv.low, iv.high) for iv in manager.stabbing_query(stab))
    assert got == sorted((iv.low, iv.high) for iv in intervals if iv.contains(stab))
    lo, hi = min(window), max(window)
    got = sorted((iv.low, iv.high) for iv in manager.intersection_query(lo, hi))
    assert got == sorted((iv.low, iv.high) for iv in intervals if iv.intersects_range(lo, hi))


# --------------------------------------------------------------------------- #
# class hierarchies
# --------------------------------------------------------------------------- #
@st.composite
def hierarchies(draw):
    size = draw(st.integers(min_value=1, max_value=24))
    parents = [draw(st.integers(min_value=0, max_value=max(0, i - 1))) for i in range(size)]
    hierarchy = ClassHierarchy()
    for i in range(size):
        hierarchy.add_class(f"C{i}", None if i == 0 else f"C{parents[i]}")
    return hierarchy


@settings(**SETTINGS)
@given(hierarchy=hierarchies())
def test_label_class_ranges_nest_exactly(hierarchy):
    labels = hierarchy.labels()
    for cls in hierarchy.classes():
        lo, hi = labels[cls]
        descendants = set(hierarchy.descendants(cls))
        for other in hierarchy.classes():
            inside = lo <= labels[other][0] < hi
            assert inside == (other in descendants)


@settings(**SETTINGS)
@given(hierarchy=hierarchies())
def test_rake_and_contract_invariants(hierarchy):
    labeling = label_edges(hierarchy)
    decomposition = rake_and_contract(hierarchy, labeling)
    c = len(hierarchy)
    assert set(decomposition.query_plan) == set(hierarchy.classes())
    limit = math.ceil(math.log2(c)) + 1 if c > 1 else 1
    assert decomposition.max_copies() <= limit
    for cls in hierarchy.classes():
        assert labeling.thin_edge_count_to_root(cls, hierarchy) <= (math.log2(c) if c > 1 else 0)


@settings(**SETTINGS)
@given(
    hierarchy=hierarchies(),
    raw=st.lists(st.tuples(small_float, st.integers(min_value=0, max_value=1_000_000)), max_size=80),
    window=st.tuples(small_float, small_float),
    scheme=st.sampled_from(["simple", "combined"]),
)
def test_class_indexes_match_oracle(hierarchy, raw, window, scheme):
    classes = hierarchy.classes()
    objects = [
        ClassObject(key, classes[token % len(classes)], payload=i)
        for i, (key, token) in enumerate(raw)
    ]
    cls = classes[len(raw) % len(classes)]
    lo, hi = min(window), max(window)
    index_cls = SimpleClassIndex if scheme == "simple" else CombinedClassIndex
    index = index_cls(SimulatedDisk(4), hierarchy, objects)
    wanted = set(hierarchy.descendants(cls))
    expected = sorted(
        (o.key, o.payload) for o in objects if o.class_name in wanted and lo <= o.key <= hi
    )
    assert sorted((o.key, o.payload) for o in index.query(cls, lo, hi)) == expected
