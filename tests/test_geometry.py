"""Unit tests for the planar geometry helpers (Fig. 1 query taxonomy)."""

import pytest

from repro.metablock.geometry import (
    BoundingBox,
    DiagonalCornerQuery,
    PlanarPoint,
    RangeQuery,
    ThreeSidedQuery,
    TwoSidedQuery,
    dedupe_points,
)


class TestQueryMatching:
    def test_diagonal_corner_query(self):
        q = DiagonalCornerQuery(corner=5)
        assert q.matches(PlanarPoint(3, 8))
        assert q.matches(PlanarPoint(5, 5))
        assert not q.matches(PlanarPoint(6, 8))
        assert not q.matches(PlanarPoint(3, 4))

    def test_two_sided_query(self):
        q = TwoSidedQuery(x_max=5, y_min=2)
        assert q.matches(PlanarPoint(5, 2))
        assert not q.matches(PlanarPoint(5.1, 2))
        assert not q.matches(PlanarPoint(5, 1.9))

    def test_three_sided_query(self):
        q = ThreeSidedQuery(x1=2, x2=6, y0=3)
        assert q.matches(PlanarPoint(2, 3))
        assert q.matches(PlanarPoint(6, 100))
        assert not q.matches(PlanarPoint(1.9, 5))
        assert not q.matches(PlanarPoint(3, 2.9))

    def test_three_sided_query_rejects_empty_range(self):
        with pytest.raises(ValueError):
            ThreeSidedQuery(x1=6, x2=2, y0=0)

    def test_range_query(self):
        q = RangeQuery(0, 10, 0, 10)
        assert q.matches(PlanarPoint(5, 5))
        assert not q.matches(PlanarPoint(5, 11))

    def test_query_hierarchy_from_figure_1(self):
        """Diagonal corner ⊂ 2-sided ⊂ 3-sided: every special query is expressible."""
        import math

        point = PlanarPoint(3, 7)
        corner = DiagonalCornerQuery(4)
        as_two_sided = TwoSidedQuery(x_max=4, y_min=4)
        as_three_sided = ThreeSidedQuery(x1=-math.inf, x2=4, y0=4)
        assert corner.matches(point) == as_two_sided.matches(point) == as_three_sided.matches(point)

    def test_filter_is_brute_force_oracle(self):
        pts = [PlanarPoint(i, 10 - i) for i in range(10)]
        assert len(DiagonalCornerQuery(5).filter(pts)) == len(
            [p for p in pts if p.x <= 5 and p.y >= 5]
        )


class TestBoundingBox:
    def test_of_points(self):
        box = BoundingBox.of([PlanarPoint(1, 5), PlanarPoint(3, 2), PlanarPoint(2, 9)])
        assert (box.min_x, box.max_x, box.min_y, box.max_y) == (1, 3, 2, 9)

    def test_of_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.of([])

    def test_region_predicates(self):
        box = BoundingBox.of([PlanarPoint(0, 0), PlanarPoint(10, 10)])
        assert box.contains_x(5)
        assert box.crosses_horizontal(10)
        assert box.entirely_above(-1)
        assert not box.entirely_above(1)
        assert box.entirely_below(11)
        assert box.entirely_left_of(10)
        assert box.entirely_right_of(-0.5)


class TestDedupe:
    def test_same_object_reported_once(self):
        p = PlanarPoint(1, 2, payload="x")
        assert dedupe_points([p, p, p]) == [p]

    def test_distinct_objects_with_equal_coordinates_kept(self):
        a = PlanarPoint(1, 2, payload="a")
        b = PlanarPoint(1, 2, payload="b")
        assert len(dedupe_points([a, b])) == 2

    def test_order_preserved(self):
        pts = [PlanarPoint(i, i) for i in range(5)]
        assert dedupe_points(pts + pts) == pts

    def test_point_ordering_and_str(self):
        assert PlanarPoint(1, 2) < PlanarPoint(1, 3) < PlanarPoint(2, 0)
        assert str(PlanarPoint(1, 2)) == "(1, 2)"
        assert PlanarPoint(1, 2).as_tuple() == (1, 2)
