"""Tests for the constraint data model (Section 2.1) and its 1-D index."""

import math
import random

import pytest

from repro.constraints import (
    Constraint,
    GeneralizedOneDimensionalIndex,
    GeneralizedRelation,
    GeneralizedTuple,
    var,
)
from repro.constraints.rectangles import (
    intersecting_pairs,
    rectangle_relation,
    rectangle_tuple,
    tuples_intersect,
)
from repro.constraints.relation import GeneralizedDatabase
from repro.constraints.terms import UNBOUNDED_HIGH, UNBOUNDED_LOW
from repro.io import SimulatedDisk

X, Y = var("x"), var("y")


class TestConstraint:
    def test_invalid_operator_rejected(self):
        with pytest.raises(ValueError):
            Constraint(X, "!=", 3)

    def test_lhs_must_be_variable(self):
        with pytest.raises(TypeError):
            Constraint(3, "<", X)

    def test_evaluate_all_operators(self):
        assignment = {"x": 5, "y": 7}
        assert Constraint(X, "<", 6).evaluate(assignment)
        assert Constraint(X, "<=", 5).evaluate(assignment)
        assert Constraint(X, "=", 5).evaluate(assignment)
        assert Constraint(X, ">=", 5).evaluate(assignment)
        assert Constraint(X, ">", 4).evaluate(assignment)
        assert Constraint(X, "<", Y).evaluate(assignment)
        assert not Constraint(Y, "<", X).evaluate(assignment)

    def test_variables(self):
        assert Constraint(X, "<", Y).variables() == {"x", "y"}
        assert Constraint(X, "<", 3).variables() == {"x"}


class TestGeneralizedTuple:
    def test_satisfiable_simple_box(self):
        gt = GeneralizedTuple([Constraint(X, ">=", 1), Constraint(X, "<=", 5)])
        assert gt.is_satisfiable()
        assert gt.projection("x") == (1.0, 5.0)

    def test_unsatisfiable_contradiction(self):
        gt = GeneralizedTuple([Constraint(X, ">", 5), Constraint(X, "<", 3)])
        assert not gt.is_satisfiable()

    def test_unsatisfiable_strict_cycle(self):
        gt = GeneralizedTuple([Constraint(X, "<", Y), Constraint(Y, "<", X)])
        assert not gt.is_satisfiable()

    def test_satisfiable_equality_cycle(self):
        gt = GeneralizedTuple([Constraint(X, "<=", Y), Constraint(Y, "<=", X)])
        assert gt.is_satisfiable()

    def test_transitive_propagation_through_variables(self):
        """x <= y and y <= 5 must bound x's projection."""
        gt = GeneralizedTuple(
            [Constraint(X, "<=", Y), Constraint(Y, "<=", 5), Constraint(X, ">=", 1)]
        )
        assert gt.projection("x") == (1.0, 5.0)
        assert gt.projection("y") == (1.0, 5.0)

    def test_projection_unbounded_directions(self):
        gt = GeneralizedTuple([Constraint(X, ">=", 2)])
        low, high = gt.projection("x")
        assert low == 2.0 and high == UNBOUNDED_HIGH
        low, high = gt.projection("missing")
        assert low == UNBOUNDED_LOW and high == UNBOUNDED_HIGH

    def test_equality_projection_is_degenerate(self):
        gt = GeneralizedTuple([Constraint(X, "=", 7)])
        assert gt.projection("x") == (7.0, 7.0)

    def test_conjoin_creates_new_tuple(self):
        gt = GeneralizedTuple([Constraint(X, ">=", 0)], name="t")
        extended = gt.conjoin(Constraint(X, "<=", 3))
        assert len(gt) == 1 and len(extended) == 2
        assert extended.name == "t"
        assert extended.projection("x") == (0.0, 3.0)

    def test_evaluate_point_membership(self):
        gt = rectangle_tuple("r", 0, 0, 10, 5)
        assert gt.evaluate({"x": 5, "y": 2})
        assert not gt.evaluate({"x": 5, "y": 6})

    def test_arity_and_variables(self):
        gt = rectangle_tuple("r", 0, 0, 1, 1)
        assert gt.variables() == {"x", "y"}
        assert gt.arity == 2

    def test_empty_tuple_is_satisfiable_everywhere(self):
        gt = GeneralizedTuple([])
        assert gt.is_satisfiable()
        assert gt.projection("x") == (UNBOUNDED_LOW, UNBOUNDED_HIGH)


class TestGeneralizedRelation:
    def _relation(self):
        tuples = [
            GeneralizedTuple([Constraint(X, ">=", i), Constraint(X, "<=", i + 10)], name=i)
            for i in range(0, 100, 10)
        ]
        return GeneralizedRelation(["x"], tuples, name="bands")

    def test_schema_enforced(self):
        with pytest.raises(ValueError):
            GeneralizedRelation(["x"], [GeneralizedTuple([Constraint(Y, "<", 1)])])

    def test_add_and_discard(self):
        rel = self._relation()
        extra = GeneralizedTuple([Constraint(X, "=", 500)], name="extra")
        rel.add(extra)
        assert len(rel) == 11
        assert rel.discard(extra)
        assert not rel.discard(extra)

    def test_select_prunes_unsatisfiable(self):
        rel = self._relation()
        selected = rel.select(Constraint(X, ">=", 95), Constraint(X, "<=", 98))
        assert len(selected) == 1
        unpruned = rel.select(Constraint(X, ">=", 95), Constraint(X, "<=", 98), prune=False)
        assert len(unpruned) == 10

    def test_contains_point(self):
        rel = self._relation()
        assert rel.contains_point({"x": 55})
        assert not rel.contains_point({"x": 200})

    def test_database_container(self):
        db = GeneralizedDatabase()
        db.add_relation(self._relation())
        assert len(db) == 1
        assert db["bands"].name == "bands"


class TestGeneralizedIndex:
    def _random_rectangles(self, n, seed=0):
        rnd = random.Random(seed)
        rects = []
        for i in range(n):
            a, b = rnd.uniform(0, 500), rnd.uniform(0, 500)
            rects.append((f"r{i}", a, b, a + rnd.uniform(1, 40), b + rnd.uniform(1, 40)))
        return rects

    def test_attribute_must_exist(self):
        rel = rectangle_relation(self._random_rectangles(5))
        with pytest.raises(ValueError):
            GeneralizedOneDimensionalIndex(SimulatedDisk(8), rel, "z")

    def test_candidate_tuples_match_projection_semantics(self):
        rel = rectangle_relation(self._random_rectangles(150, seed=1))
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(8), rel, "x")
        rnd = random.Random(1)
        for _ in range(25):
            lo = rnd.uniform(0, 550)
            hi = lo + rnd.uniform(0, 80)
            expected = sorted(
                gt.name
                for gt in rel.tuples
                if gt.projection("x")[0] <= hi and lo <= gt.projection("x")[1]
            )
            got = sorted(gt.name for gt in index.candidate_tuples(lo, hi))
            assert got == expected

    def test_range_query_represents_correct_point_set(self):
        rel = rectangle_relation(self._random_rectangles(80, seed=2))
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(8), rel, "x")
        restricted = index.range_query(100, 200)
        rnd = random.Random(2)
        for _ in range(200):
            point = {"x": rnd.uniform(0, 600), "y": rnd.uniform(0, 600)}
            in_original = rel.contains_point(point) and 100 <= point["x"] <= 200
            assert restricted.contains_point(point) == in_original

    def test_insert_updates_index(self):
        rel = rectangle_relation(self._random_rectangles(30, seed=3))
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(8), rel, "x")
        new = rectangle_tuple("fresh", 1000, 0, 1010, 10)
        index.insert(new)
        assert "fresh" in {gt.name for gt in index.stabbing_tuples(1005)}
        assert len(index) == 31

    def test_stabbing_tuples(self):
        rel = rectangle_relation([("a", 0, 0, 10, 10), ("b", 20, 0, 30, 10)])
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(4), rel, "x")
        assert {gt.name for gt in index.stabbing_tuples(5)} == {"a"}
        assert {gt.name for gt in index.stabbing_tuples(25)} == {"b"}
        assert index.stabbing_tuples(15) == []


class TestRectangleExample:
    """Example 2.1: all pairs of distinct intersecting rectangles."""

    def _brute(self, rects):
        out = set()
        for i, (n1, a1, b1, c1, d1) in enumerate(rects):
            for n2, a2, b2, c2, d2 in rects[i + 1 :]:
                if a1 <= c2 and a2 <= c1 and b1 <= d2 and b2 <= d1:
                    out.add(frozenset((n1, n2)))
        return out

    def test_rectangle_tuple_validation(self):
        with pytest.raises(ValueError):
            rectangle_tuple("bad", 5, 0, 1, 10)

    def test_tuples_intersect_matches_geometry(self):
        a = rectangle_tuple("a", 0, 0, 10, 10)
        b = rectangle_tuple("b", 5, 5, 15, 15)
        c = rectangle_tuple("c", 11, 11, 20, 20)
        assert tuples_intersect(a, b)
        assert not tuples_intersect(a, c)
        assert tuples_intersect(b, c)

    def test_intersecting_pairs_naive_vs_indexed(self):
        rnd = random.Random(5)
        rects = []
        for i in range(60):
            a, b = rnd.uniform(0, 100), rnd.uniform(0, 100)
            rects.append((f"r{i}", a, b, a + rnd.uniform(1, 25), b + rnd.uniform(1, 25)))
        rel = rectangle_relation(rects)
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(8), rel, "x")
        expected = self._brute(rects)
        assert set(map(frozenset, intersecting_pairs(rel))) == expected
        assert set(map(frozenset, intersecting_pairs(rel, index))) == expected

    def test_touching_rectangles_intersect(self):
        rel = rectangle_relation([("a", 0, 0, 10, 10), ("b", 10, 10, 20, 20)])
        assert set(map(frozenset, intersecting_pairs(rel))) == {frozenset(("a", "b"))}
