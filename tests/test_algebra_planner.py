"""The composable query algebra, the cost-aware planner, and Collections.

Acceptance criteria covered here:

* every composed query in the suite returns **exactly** the brute-force
  oracle result set (``q.matches`` over the logical records) on both
  storage backends;
* ``Engine.explain`` reports the plan the executed result actually carries
  (``result.plan``); and
* observed ``ios`` never exceeds the predicted bound's page count by more
  than the documented slack (``BOUND_SLACK * bound(t) +
  BOUND_SLACK_PAGES``, see :mod:`repro.engine.planner`).
"""

import pytest

from repro import (
    And,
    Bound,
    ClassHierarchy,
    ClassObject,
    ClassRange,
    Collection,
    EndpointRange,
    Engine,
    FileDisk,
    Index,
    Interval,
    Limit,
    Not,
    Or,
    OrderBy,
    Range,
    SimulatedDisk,
    Stab,
)
from repro.engine.planner import BOUND_SLACK, BOUND_SLACK_PAGES

from tests.conftest import make_intervals

B = 8


def _backend(kind, tmp_path):
    if kind == "file":
        return FileDisk(str(tmp_path / "pages.bin"), block_size=B)
    return SimulatedDisk(block_size=B)


def _payloads(records):
    return sorted(r.payload for r in records)


# --------------------------------------------------------------------------- #
# the algebra itself
# --------------------------------------------------------------------------- #
class TestAlgebra:
    def test_operators_build_combinators(self):
        q = Stab(1) & Range(0, 2) | ~Stab(5)
        assert isinstance(q, Or)
        assert isinstance(q.parts[0], And)
        assert isinstance(q.parts[1], Not)

    def test_nested_ands_and_ors_flatten(self):
        q = (Stab(1) & Stab(2)) & Stab(3)
        assert q.parts == (Stab(1), Stab(2), Stab(3))
        q = (Stab(1) | Stab(2)) | (Stab(3) | Stab(4))
        assert len(q.parts) == 4

    def test_modifier_constructors(self):
        q = Range(0, 9).order_by("low", reverse=True).limit(3)
        assert isinstance(q, Limit) and q.n == 3
        assert isinstance(q.part, OrderBy) and q.part.reverse

    def test_matches_oracles_on_intervals(self):
        iv = Interval(3.0, 7.0, payload="p")
        assert Stab(5.0).matches(iv) and not Stab(8.0).matches(iv)
        assert Range(6.0, 9.0).matches(iv) and not Range(7.5, 9.0).matches(iv)
        assert EndpointRange("low", 2.0, 4.0).matches(iv)
        assert not EndpointRange("high", 2.0, 4.0).matches(iv)
        assert (Stab(5.0) & ~Range(10.0, 20.0)).matches(iv)
        assert (Stab(9.0) | EndpointRange("high", 7.0, 7.0)).matches(iv)
        assert not (Stab(9.0) & EndpointRange("high", 7.0, 7.0)).matches(iv)

    def test_matches_oracles_on_keys_and_pairs(self):
        assert Stab(4).matches(4) and Stab(4).matches((4, "value"))
        assert Range(1, 5, max_inclusive=False).matches((4, "v"))
        assert not Range(1, 5, max_inclusive=False).matches((5, "v"))

    def test_classrange_oracle_with_and_without_hierarchy(self):
        h = ClassHierarchy()
        h.add_class("Root")
        h.add_class("A", "Root")
        obj = ClassObject(5.0, "A", payload=1)
        assert not ClassRange("Root", 0, 10).matches(obj)  # exact-only
        from dataclasses import replace

        bound_q = replace(ClassRange("Root", 0, 10), hierarchy=h)
        assert bound_q.matches(obj)

    def test_endpoint_range_side_validated(self):
        with pytest.raises(ValueError):
            EndpointRange("middle", 0, 1)

    def test_geometric_shapes_join_the_algebra(self):
        from repro import PlanarPoint, ThreeSidedQuery

        q = ThreeSidedQuery(0, 10, 5) & ~ThreeSidedQuery(3, 4, 0)
        p = PlanarPoint(2, 8)
        assert q.matches(p)
        assert not q.matches(PlanarPoint(3.5, 8))


# --------------------------------------------------------------------------- #
# planner-chosen plans vs. the oracle, on both backends
# --------------------------------------------------------------------------- #
COMPOSED_QUERIES = [
    Stab(400.0) & Range(350.0, 450.0),
    Stab(400.0) & EndpointRange("low", 350.0, 400.0),
    EndpointRange("high", 400.0, 500.0),
    EndpointRange("low", 100.0, 200.0, min_inclusive=False),
    Range(100.0, 300.0) & ~Stab(200.0),
    Stab(100.0) | Stab(900.0),
    (Stab(100.0) & Range(50.0, 150.0)) | EndpointRange("low", 800.0, 850.0),
    Not(Stab(500.0)),
    Or(),  # matches nothing; still plannable via the scan fallback
    And(Stab(400.0)),
    Range(0.0, 1000.0).order_by("low").limit(13),
    (Stab(400.0) & EndpointRange("low", 0.0, 500.0)).order_by("high", reverse=True),
    Stab(400.0).limit(4),
]


@pytest.mark.parametrize("backend_kind", ["memory", "file"])
@pytest.mark.parametrize("q", COMPOSED_QUERIES, ids=repr)
def test_planner_matches_oracle_explain_and_bound(tmp_path, backend_kind, q):
    intervals = make_intervals(250, seed=3, mean_length=120.0)
    with Engine(_backend(backend_kind, tmp_path)) as engine:
        coll = engine.create_collection("c", intervals)
        plan = engine.explain("c", q)
        result = engine.query("c", q)
        got = result.all()
        want = coll.oracle(q)

        # Limit picks *some* n records; everything else is exact
        if isinstance(q, Limit) and not isinstance(q.part, OrderBy):
            assert len(got) == min(q.n, len(coll.oracle(q.part)))
            assert all(q.matches(r) for r in got)
        else:
            assert _payloads(got) == _payloads(want), backend_kind

        # explain() reports the executed plan
        assert result.plan == plan

        # observed I/Os within the documented slack of the predicted bound
        assert result.ios <= BOUND_SLACK * result.bound + BOUND_SLACK_PAGES, (
            q,
            result.ios,
            result.bound,
        )


@pytest.mark.parametrize("backend_kind", ["memory", "file"])
def test_cross_backend_composed_results_agree(tmp_path, backend_kind):
    """And/Or compositions return identical sets on SimulatedDisk and FileDisk."""
    intervals = make_intervals(180, seed=9, mean_length=90.0)
    queries = [
        Stab(300.0) & Range(250.0, 350.0),
        Stab(100.0) | EndpointRange("low", 500.0, 600.0),
        Range(0.0, 500.0) & ~EndpointRange("high", 0.0, 300.0),
    ]
    reference = Engine(SimulatedDisk(block_size=B))
    ref_coll = reference.create_collection("c", intervals)
    with Engine(_backend(backend_kind, tmp_path)) as engine:
        engine.create_collection("c", intervals)
        for q in queries:
            want = _payloads(ref_coll.oracle(q))
            assert _payloads(engine.query("c", q)) == want
            assert _payloads(reference.query("c", q)) == want


# --------------------------------------------------------------------------- #
# plan shape: the planner picks the physically right index
# --------------------------------------------------------------------------- #
class TestPlanChoice:
    @pytest.fixture()
    def engine(self):
        eng = Engine(block_size=B)
        eng.create_collection("c", make_intervals(300, seed=1))
        return eng

    def test_stab_goes_to_the_interval_manager(self, engine):
        plan = engine.explain("c", Stab(500.0))
        assert plan.kind == "index" and plan.index == "interval-manager"
        assert plan.residual is None

    def test_endpoint_goes_to_the_matching_btree(self, engine):
        for side in ("low", "high"):
            plan = engine.explain("c", EndpointRange(side, 10.0, 20.0))
            assert plan.index == f"{side}-endpoints"

    def test_and_pushes_one_part_down_keeps_rest_residual(self, engine):
        q = Stab(500.0) & EndpointRange("low", 400.0, 500.0)
        plan = engine.explain("c", q)
        assert plan.kind == "index"
        assert plan.residual is not None

    @pytest.mark.parametrize("backend_kind", ["memory", "file"])
    def test_union_keeps_value_identical_records_but_dedupes_shared_hits(
        self, tmp_path, backend_kind
    ):
        """Dedup is by record identity (uid), not by value: two equal
        intervals both survive a union, while one record reached through
        both branches is reported once — on both backends."""
        with Engine(_backend(backend_kind, tmp_path)) as eng:
            coll = eng.create_collection("c", [Interval(1.0, 10.0), Interval(1.0, 10.0)])
            overlapping = Stab(5.0) | Stab(6.0)  # both branches hit both records
            assert len(eng.query("c", overlapping).all()) == 2
            assert len(coll.oracle(overlapping)) == 2

    def test_plain_index_plain_descriptor_still_carries_the_plan(self, engine):
        eng = Engine(block_size=B)
        eng.create_interval_index("ivs", [Interval(0, 1)])
        result = eng.query("ivs", Stab(0.5))
        assert result.plan == eng.explain("ivs", Stab(0.5))
        assert result.plan is not None

    def test_planning_performs_no_io(self, engine):
        before = engine.io_stats().snapshot()
        engine.explain("c", Stab(500.0) & EndpointRange("low", 0.0, 500.0))
        engine.explain("c", ~Stab(500.0))  # scan bound priced arithmetically
        assert engine.io_stats().diff(before).total == 0

    def test_or_builds_a_union_with_per_part_bounds(self, engine):
        plan = engine.explain("c", Stab(1.0) | EndpointRange("low", 5.0, 6.0))
        assert plan.kind == "union" and len(plan.subplans) == 2
        assert plan.bound.pages == pytest.approx(
            sum(sub.bound.pages for sub in plan.subplans)
        )

    def test_bare_not_falls_back_to_scan(self, engine):
        plan = engine.explain("c", ~Stab(500.0))
        assert plan.kind == "scan"
        assert "scan" in plan.bound.formula

    def test_scan_costs_more_than_an_index_plan(self, engine):
        scan = engine.explain("c", ~Stab(500.0))
        idx = engine.explain("c", Stab(500.0))
        assert scan.bound.pages > idx.bound.pages

    def test_describe_is_printable(self, engine):
        text = engine.explain("c", (Stab(1.0) | Stab(2.0)).limit(3)).describe()
        assert "Union" in text and "limit 3" in text

    def test_unsupported_shape_raises(self, engine):
        from repro import ThreeSidedQuery

        engine.create_key_index("kv", [(1, "a")])
        # no conjunct is supported and a plain B+-tree has no scan fallback
        with pytest.raises(TypeError):
            engine.explain("kv", ThreeSidedQuery(0, 1, 0) & ThreeSidedQuery(2, 3, 0))


# --------------------------------------------------------------------------- #
# Collection behaviour
# --------------------------------------------------------------------------- #
class TestCollection:
    def test_satisfies_the_index_protocol(self, disk):
        coll = Collection.for_intervals(disk, make_intervals(40))
        assert isinstance(coll, Index)
        assert coll.supports(Stab(1.0) & Range(0.0, 2.0))
        assert isinstance(coll.cost(Stab(1.0)), Bound)

    def test_insert_keeps_all_physical_indexes_in_sync(self, disk):
        coll = Collection.for_intervals(disk, make_intervals(50, seed=2))
        new = Interval(123.0, 456.0, payload="new")
        coll.insert(new)
        assert "new" in {iv.payload for iv in coll.query(Stab(300.0))}
        assert "new" in {iv.payload for iv in coll.query(EndpointRange("low", 123.0, 123.0))}
        assert "new" in {iv.payload for iv in coll.query(EndpointRange("high", 456.0, 456.0))}
        assert len(coll) == 51

    def test_static_collection_rejects_inserts_atomically(self, disk):
        coll = Collection.for_intervals(disk, make_intervals(30), dynamic=False)
        with pytest.raises(NotImplementedError):
            coll.insert(Interval(0.0, 1.0, payload="x"))
        # nothing was half-applied: the endpoint trees saw no insert either
        assert coll.query(EndpointRange("low", 0.0, 0.0)).all() == []
        assert len(coll) == 30

    def test_block_count_sums_physical_indexes(self, disk):
        coll = Collection.for_intervals(disk, make_intervals(100))
        assert coll.block_count() >= sum(
            acc.index.block_count() for acc in coll._accessors[1:]
        )

    def test_engine_namespace_and_repr(self):
        engine = Engine(block_size=B)
        coll = engine.create_collection("c", make_intervals(10))
        assert engine["c"] is coll
        assert "interval-manager" in repr(coll)
        with pytest.raises(ValueError):
            engine.create_collection("c")


# --------------------------------------------------------------------------- #
# engine namespace satellites
# --------------------------------------------------------------------------- #
class TestEngineNamespace:
    def test_indexes_is_a_read_only_live_view(self):
        engine = Engine(block_size=B)
        engine.create_interval_index("a", [Interval(0, 1)])
        view = engine.indexes
        assert set(view) == {"a"}
        with pytest.raises(TypeError):
            view["b"] = object()
        engine.create_key_index("b", [(1, "x")])
        assert set(view) == {"a", "b"}  # live, not a snapshot

    def test_drop_index_reclaims_the_name(self):
        engine = Engine(block_size=B)
        engine.create_interval_index("a", [Interval(0, 1)])
        engine.drop_index("a")
        assert "a" not in engine
        engine.create_key_index("a", [(1, "x")])  # name reusable
        assert "a" in engine

    def test_drop_index_unknown_name_raises_descriptive_keyerror(self):
        engine = Engine(block_size=B)
        with pytest.raises(KeyError, match="no index named"):
            engine.drop_index("ghost")

    def test_repr_names_backend_and_indexes(self):
        engine = Engine(block_size=B)
        engine.create_interval_index("ivs", [Interval(0, 1)])
        text = repr(engine)
        assert "SimulatedDisk" in text and "ivs" in text
