"""Kill-and-reopen crash recovery: subprocess harness over real files.

The property under test is the durability contract end to end, with a
*real* process death (``os._exit`` — no ``atexit``, no ``finally``, no
checkpoint) at randomized points of a write workload against a
:class:`~repro.io.FileDisk` database with an attached WAL:

    every operation the engine **acknowledged** (the call returned) is
    present after ``Engine.open``, and nothing else is — the recovered
    state is exactly the acknowledged prefix.

The child process appends one line to an acks file — flushed and fsynced
— *after* each engine call returns, then ``os._exit``\\ s when its kill
point is reached.  The parent replays the same deterministic workload
into a plain in-memory oracle up to the acknowledged count, reopens the
database (WAL-tail replay), and compares exactly.  Parametrized over
kill points and over every index kind the catalog supports.
"""

from __future__ import annotations

import json
import os
import random
import subprocess
import sys

import pytest

from repro import Engine, Interval, Range
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.engine import ClassRange
from repro.metablock.geometry import PlanarPoint, ThreeSidedQuery

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_ROOT, "src")

KINDS = ["interval", "collection", "key", "point", "class", "constraint"]


# ---------------------------------------------------------------------- #
# the deterministic workload (shared by the child and the parent oracle)
# ---------------------------------------------------------------------- #
def steps_for(kind: str, seed: int = 0):
    """A deterministic op sequence for one index kind.

    Steps are plain data — ``("create", rows)``, ``("insert", row)``,
    ``("delete", payload)``, ``("bulk", rows)``, ``("update", payload,
    row)`` — so the child (applying to a real engine) and the parent
    (applying to an oracle set) interpret the identical sequence.
    """
    rnd = random.Random(seed * 1000 + len(kind))

    def row(payload):
        low = round(rnd.uniform(0.0, 100.0), 3)
        return (low, round(low + rnd.uniform(1.0, 10.0), 3), payload)

    if kind in ("interval", "collection"):
        base = [row(i) for i in range(8)]
        steps = [("create", base)]
        live = [r[2] for r in base]
        next_payload = len(base)
        for _ in range(12):
            roll = rnd.random()
            if kind == "collection" and roll < 0.15:
                rows = [row(next_payload + i) for i in range(3)]
                next_payload += 3
                live.extend(r[2] for r in rows)
                steps.append(("bulk", rows))
            elif roll < 0.6 or not live:
                r = row(next_payload)
                next_payload += 1
                live.append(r[2])
                steps.append(("insert", r))
            else:
                victim = live.pop(rnd.randrange(len(live)))
                steps.append(("delete", victim))
        return steps
    if kind == "key":
        base = [row(i) for i in range(8)]
        steps = [("create", base)]
        live = [r[2] for r in base]
        next_payload = len(base)
        for _ in range(8):
            if rnd.random() < 0.6 or not live:
                r = row(next_payload)
                next_payload += 1
                live.append(r[2])
                steps.append(("insert", r))
            else:
                steps.append(("delete", live.pop(rnd.randrange(len(live)))))
        return steps
    if kind == "point":
        base = [row(i) for i in range(8)]
        steps = [("create", base)]
        live = [r[2] for r in base]
        next_payload = len(base)
        for _ in range(8):
            if rnd.random() < 0.6 or not live:
                r = row(next_payload)
                next_payload += 1
                live.append(r[2])
                steps.append(("insert", r))
            else:
                steps.append(("delete", live.pop(rnd.randrange(len(live)))))
        return steps
    if kind == "class":
        base = [row(i) for i in range(8)]
        steps = [("create", base)]
        for i in range(8, 14):
            steps.append(("insert", row(i)))
        return steps
    if kind == "constraint":
        return [("create", [row(i) for i in range(10)])]
    raise ValueError(kind)


_CLASSES = ["Root", "A", "B"]


class EngineApplier:
    """Applies workload steps to a live engine (used inside the child)."""

    def __init__(self, engine, name: str, kind: str) -> None:
        self.engine = engine
        self.name = name
        self.kind = kind
        self._by_payload = {}

    def _record(self, row):
        low, high, payload = row
        if self.kind == "point":
            rec = PlanarPoint(low, high, payload=payload)
        elif self.kind == "class":
            rec = ClassObject(low, _CLASSES[payload % len(_CLASSES)],
                              payload=payload)
        else:
            rec = Interval(low, high, payload=payload)
        self._by_payload[payload] = rec
        return rec

    def apply(self, step) -> None:
        op = step[0]
        eng, name = self.engine, self.name
        if op == "create":
            records = [self._record(r) for r in step[1]]
            if self.kind == "interval":
                eng.create_interval_index(name, records, dynamic=True)
            elif self.kind == "collection":
                eng.create_collection(name, records, dynamic=True)
            elif self.kind == "key":
                eng.create_key_index(
                    name, [(r.payload * 10.0, r) for r in records]
                )
            elif self.kind == "point":
                eng.create_point_index(name, records)
            elif self.kind == "class":
                hierarchy = ClassHierarchy()
                hierarchy.add_class("Root")
                hierarchy.add_class("A", "Root")
                hierarchy.add_class("B", "Root")
                eng.create_class_index(name, hierarchy, records,
                                       method="combined")
            elif self.kind == "constraint":
                from repro.constraints.relation import GeneralizedRelation
                from repro.constraints.terms import (
                    Constraint,
                    GeneralizedTuple,
                    Variable,
                )

                x = Variable("x")
                tuples = [
                    GeneralizedTuple(
                        [Constraint(x, ">=", r[0]), Constraint(x, "<=", r[1])],
                        name=f"t{r[2]}",
                    )
                    for r in step[1]
                ]
                relation = GeneralizedRelation(["x"], tuples, name="r")
                eng.create_constraint_index(name, relation, "x", dynamic=True)
        elif op == "insert":
            rec = self._record(step[1])
            if self.kind == "key":
                eng.insert(name, rec.payload * 10.0, rec)
            else:
                eng.insert(name, rec)
        elif op == "delete":
            payload = step[1]
            if self.kind == "key":
                eng.delete(name, payload * 10.0)
            else:
                eng.delete(name, self._by_payload[payload])
        elif op == "bulk":
            eng.bulk_load(name, [self._record(r) for r in step[1]])
        else:
            raise ValueError(op)


def oracle_payloads(steps, acked: int):
    """The payload set after the first ``acked`` steps (plain-set oracle)."""
    live = set()
    for step in steps[:acked]:
        op = step[0]
        if op == "create" or op == "bulk":
            live.update(r[2] for r in step[1])
        elif op == "insert":
            live.add(step[1][2])
        elif op == "delete":
            live.discard(step[1])
    return live


def recovered_payloads(engine, name: str, kind: str):
    if kind == "key":
        rows = engine.query(name, Range(-1e9, 1e9)).all()
        return {value.payload for _key, value in rows}
    if kind == "point":
        # y >= -1e9 over the full x-range: everything
        rows = engine.query(name, ThreeSidedQuery(-1e9, 1e9, -1e9)).all()
        return {p.payload for p in rows}
    if kind == "class":
        rows = engine.query(name, ClassRange("Root", -1e9, 1e9)).all()
        return {o.payload for o in rows}
    if kind == "constraint":
        # tuples carry names t<payload>; stab the whole domain piecewise
        names = set()
        for x in range(0, 115, 5):
            names.update(
                t.name for t in engine.query(name, Range(-1.0, 115.0)).all()
            )
        return {int(n[1:]) for n in names}
    rows = engine.query(name, Range(-1e9, 1e9)).all()
    return {iv.payload for iv in rows}


# ---------------------------------------------------------------------- #
# the child process
# ---------------------------------------------------------------------- #
_CHILD = """
import json, os, sys
kind, db, acks = sys.argv[1], sys.argv[2], sys.argv[3]
kill_after, seed = int(sys.argv[4]), int(sys.argv[5])
from tests.test_crash_recovery import EngineApplier, steps_for
from repro import Engine
from repro.io import FileDisk
if os.path.exists(db + ".meta"):
    engine = Engine.open(db)
else:
    engine = Engine(FileDisk(db, block_size=8))
    engine.attach_wal()
applier = EngineApplier(engine, "idx", kind)
fh = open(acks, "a")
done = 0
for step in steps_for(kind, seed):
    applier.apply(step)          # returns == acknowledged
    fh.write(json.dumps(step[0]) + chr(10))
    fh.flush()
    os.fsync(fh.fileno())
    done += 1
    if done >= kill_after:
        break
os._exit(1)                      # die hard: no checkpoint, no close
"""


def run_child(kind: str, db: str, acks: str, kill_after: int, seed: int = 0):
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + _ROOT
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD, kind, db, acks, str(kill_after), str(seed)],
        capture_output=True,
        text=True,
        env=env,
        cwd=_ROOT,
        timeout=120,
    )
    assert proc.returncode == 1, proc.stderr
    assert not proc.stderr, proc.stderr
    with open(acks) as fh:
        return sum(1 for line in fh if line.strip())


# ---------------------------------------------------------------------- #
# the tests
# ---------------------------------------------------------------------- #
# kill points drawn once, deterministically, across the collection
# workload's 13 steps — early (mid-create), middle, and final
_KILL_POINTS = sorted(random.Random(42).sample(range(1, 13), 4)) + [13]


@pytest.mark.parametrize("kill_after", _KILL_POINTS)
def test_acknowledged_prefix_survives_kill(tmp_path, kill_after):
    """Exactness at randomized kill points: state == acknowledged prefix."""
    db = str(tmp_path / "crash.pages")
    acks = str(tmp_path / "acks.jsonl")
    steps = steps_for("collection", seed=7)
    acked = run_child("collection", db, acks, kill_after, seed=7)
    assert acked == min(kill_after, len(steps))
    engine = Engine.open(db)
    try:
        expected = oracle_payloads(steps, acked)
        assert recovered_payloads(engine, "idx", "collection") == expected
    finally:
        engine.close()


@pytest.mark.parametrize("kind", KINDS)
def test_every_index_kind_recovers(tmp_path, kind):
    """WAL replay rebuilds every catalog kind from its logged operations."""
    db = str(tmp_path / f"{kind}.pages")
    acks = str(tmp_path / "acks.jsonl")
    steps = steps_for(kind, seed=3)
    kill_after = max(1, len(steps) - 2)  # die mid-tail, past the create
    acked = run_child(kind, db, acks, kill_after, seed=3)
    engine = Engine.open(db)
    try:
        expected = oracle_payloads(steps, acked)
        assert recovered_payloads(engine, "idx", kind) == expected
        # the recovered database is a working database: it accepts a
        # fresh commit and a clean close
        if kind in ("interval", "collection"):
            engine.insert("idx", Interval(1.0, 2.0, payload=9999))
    finally:
        engine.close()
    reopened = Engine.open(db)
    try:
        got = recovered_payloads(reopened, "idx", kind)
        if kind in ("interval", "collection"):
            expected = expected | {9999}
        assert got == expected
    finally:
        reopened.close()


def test_double_crash_recovers_both_tails(tmp_path):
    """Crash, recover-and-crash again: both acknowledged tails survive.

    The second child's ``Engine.open`` replays the first tail and
    re-checkpoints; its own commits then crash too.  The final recovery
    must hold the union — exactness across a *chain* of crashes.
    """
    db = str(tmp_path / "crash.pages")
    steps = steps_for("collection", seed=11)
    acks1 = str(tmp_path / "acks1.jsonl")
    acked1 = run_child("collection", db, acks1, 4, seed=11)

    # second incarnation: recovery happens inside the child, then it
    # crashes again on a different workload (different seed → new
    # payloads only collide on delete misses, which ack as no-ops)
    steps2 = steps_for("collection", seed=23)
    # skip the create step: the index already exists in the recovered db
    acks2 = str(tmp_path / "acks2.jsonl")
    child2 = _CHILD.replace(
        "for step in steps_for(kind, seed):",
        "for step in steps_for(kind, seed)[1:]:",
    ).replace('applier = EngineApplier(engine, "idx", kind)',
              'applier = EngineApplier(engine, "idx", kind)\n'
              'for r in steps_for(kind, seed)[0][1]:\n'
              '    applier._record(r)  # rebuild payload handles, no engine op')
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + _ROOT
    proc = subprocess.run(
        [sys.executable, "-c", child2, "collection", db, acks2, "5", "23"],
        capture_output=True, text=True, env=env, cwd=_ROOT, timeout=120,
    )
    assert proc.returncode == 1, proc.stderr
    with open(acks2) as fh:
        acked2 = sum(1 for line in fh if line.strip())
    assert acked2 == 5

    engine = Engine.open(db)
    try:
        expected = oracle_payloads(steps, acked1)
        # child2's deletes reference ITS OWN payload handles; the records
        # with those payloads were never inserted into this database, so
        # its deletes are acknowledged misses — only inserts/bulks land
        for step in steps2[1:][:acked2]:
            if step[0] == "insert":
                expected.add(step[1][2])
            elif step[0] == "bulk":
                expected.update(r[2] for r in step[1])
        assert recovered_payloads(engine, "idx", "collection") == expected
    finally:
        engine.close()


def test_clean_close_needs_no_replay(tmp_path):
    """After a clean close the WAL is empty — recovery is the no-op path."""
    db = str(tmp_path / "clean.pages")
    from repro.io import FileDisk

    engine = Engine(FileDisk(db, block_size=8))
    engine.attach_wal()
    engine.create_collection(
        "c", [Interval(float(i), float(i) + 2.0, payload=i) for i in range(10)],
        dynamic=True,
    )
    engine.close()
    assert os.path.getsize(db + ".wal") == 0
    reopened = Engine.open(db)
    try:
        assert recovered_payloads(reopened, "c", "collection") == set(range(10))
    finally:
        reopened.close()
