"""The concurrency linter's own suite: corpus, clean tree, suppressions, CLI.

The acceptance gate has two halves — ``src/repro`` must lint *clean*, and
the seeded-bad corpus in ``tests/lint_fixtures/`` must be flagged *fully*
(every ``# seeded: <rule>`` line, no false positives).  Together they pin
the analyzer from both sides: it cannot rot into silence and it cannot
rot into noise.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.lint import (
    Linter,
    check_fixture_corpus,
    lint_paths,
    render_report,
)
from repro.analysis.lintrules import Rule, rule_catalog
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(repro.__file__).parent


def lint_snippet(source: str) -> Linter:
    linter = Linter()
    linter.lint_source(source, "<snippet>")
    linter.finish()
    return linter


class TestFixtureCorpus:
    def test_every_seeded_violation_is_flagged(self):
        corpus = check_fixture_corpus(FIXTURES)
        assert corpus["missed"] == [], corpus["missed"]

    def test_no_false_positives_in_corpus(self):
        corpus = check_fixture_corpus(FIXTURES)
        assert corpus["unexpected"] == [], corpus["unexpected"]

    def test_corpus_is_at_least_fifteen_violations(self):
        corpus = check_fixture_corpus(FIXTURES)
        assert len(corpus["expected"]) >= 15

    def test_corpus_covers_every_rule(self):
        corpus = check_fixture_corpus(FIXTURES)
        seeded_rules = {rule for _, _, rule in corpus["expected"]}
        assert seeded_rules == set(rule_catalog())


class TestSourceTreeIsClean:
    def test_src_repro_has_zero_findings(self):
        linter = lint_paths([SRC])
        assert linter.findings == [], render_report(linter)
        assert linter.files_checked > 50

    def test_the_commit_kernel_edge_is_in_the_static_graph(self):
        # the one edge the kernel is allowed: write mutex before latches
        linter = lint_paths([SRC])
        edges = linter.lock_edges()
        assert any(
            "mutex" in a and "latch" in b.lower() for a, b in edges
        ), edges

    def test_known_suppressions_are_counted_not_silent(self):
        # checkpoint's sync-under-mutex and the WAL truncate barrier are
        # deliberate; they must show up as audited suppressions
        linter = lint_paths([SRC])
        rules = {f.rule for f in linter.suppressed}
        assert rules == {"blocking-under-mutex"}
        assert len(linter.suppressed) == 2


class TestSuppressionSyntax:
    def test_same_line_allow(self):
        linter = lint_snippet(
            "import os\n"
            "def f(fd, lock):\n"
            "    with lock:\n"
            "        os.fsync(fd)  # lint: allow(blocking-under-mutex)\n"
        )
        assert linter.findings == []
        assert [f.rule for f in linter.suppressed] == ["blocking-under-mutex"]

    def test_preceding_comment_line_allow(self):
        linter = lint_snippet(
            "import os\n"
            "def f(fd, lock):\n"
            "    with lock:\n"
            "        # lint: allow(blocking-under-mutex)\n"
            "        os.fsync(fd)\n"
        )
        assert linter.findings == []

    def test_allow_for_a_different_rule_does_not_suppress(self):
        linter = lint_snippet(
            "import os\n"
            "def f(fd, lock):\n"
            "    with lock:\n"
            "        os.fsync(fd)  # lint: allow(lock-order)\n"
        )
        assert [f.rule for f in linter.findings] == ["blocking-under-mutex"]

    def test_non_adjacent_allow_does_not_suppress(self):
        linter = lint_snippet(
            "import os\n"
            "# lint: allow(blocking-under-mutex)\n"
            "def f(fd, lock):\n"
            "    with lock:\n"
            "        os.fsync(fd)\n"
        )
        assert [f.rule for f in linter.findings] == ["blocking-under-mutex"]


class TestRuleMechanics:
    def test_same_named_locks_on_different_classes_do_not_cycle(self):
        # A._lock -> B nested one way, B._lock -> A the other: distinct
        # owners must keep the keys distinct, so no bogus cycle
        linter = lint_snippet(
            "class A:\n"
            "    def f(self):\n"
            "        with self._a_lock:\n"
            "            with self._b_lock:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self._b_lock:\n"
            "            with self._a_lock:\n"
            "                pass\n"
        )
        assert [f for f in linter.findings if f.rule == "lock-order"] != [], (
            "A/B-B/A on the *same* keys should cycle"
        )
        linter2 = lint_snippet(
            "class A:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "class B:\n"
            "    def g(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert linter2.findings == []

    def test_barrier_lock_may_fsync(self):
        linter = lint_snippet(
            "import os\n"
            "class WriteAheadLog:\n"
            "    def sync(self, fd):\n"
            "        with self._sync_lock:\n"
            "            os.fsync(fd)\n"
        )
        assert linter.findings == []

    def test_registry_extension_is_one_class(self):
        class Custom(Rule):
            id = "no-print"
            description = "toy rule: no print calls under any lock"

            def on_call(self, ctx, node, chain):
                if ctx.held and chain == "print":
                    ctx.emit(node, self.id, "print under a lock")

        linter = Linter(rules=[Custom()])
        linter.lint_source(
            "def f(lock):\n"
            "    with lock:\n"
            "        print('hi')\n",
            "<snippet>",
        )
        assert [f.rule for f in linter.finish()] == ["no-print"]


class TestLintCli:
    def test_check_is_clean_on_the_tree(self, capsys):
        assert main(["lint", "--check", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_check_fails_on_a_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import os\n"
            "def f(fd, lock):\n"
            "    with lock:\n"
            "        os.fsync(fd)\n"
        )
        assert main(["lint", "--check", str(bad)]) == 1
        assert "blocking-under-mutex" in capsys.readouterr().out

    def test_fixture_corpus_gate(self, capsys):
        assert main(["lint", "--fixtures", str(FIXTURES)]) == 0
        assert "all flagged" in capsys.readouterr().out

    def test_json_report(self, tmp_path):
        import json

        report_file = tmp_path / "lint.json"
        assert main(
            ["lint", "--check", str(SRC), "--report", str(report_file)]
        ) == 0
        report = json.loads(report_file.read_text())
        assert report["findings"] == []
        assert len(report["suppressed"]) == 2
        assert report["lock_graph"]
        assert set(report["rules"]) == set(rule_catalog())

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_catalog():
            assert rule_id in out
