"""The concurrency linter's own suite: corpus, clean tree, suppressions, CLI.

The acceptance gate has two halves — ``src/repro`` must lint *clean*, and
the seeded-bad corpus in ``tests/lint_fixtures/`` must be flagged *fully*
(every ``# seeded: <rule>`` line, no false positives).  Together they pin
the analyzer from both sides: it cannot rot into silence and it cannot
rot into noise.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.analysis.lint import (
    Linter,
    check_fixture_corpus,
    lint_paths,
    render_report,
)
from repro.analysis.lintrules import Rule, rule_catalog
from repro.cli import main

FIXTURES = Path(__file__).parent / "lint_fixtures"
SRC = Path(repro.__file__).parent


def lint_snippet(source: str) -> Linter:
    linter = Linter()
    linter.lint_source(source, "<snippet>")
    linter.finish()
    return linter


class TestFixtureCorpus:
    def test_every_seeded_violation_is_flagged(self):
        corpus = check_fixture_corpus(FIXTURES)
        assert corpus["missed"] == [], corpus["missed"]

    def test_no_false_positives_in_corpus(self):
        corpus = check_fixture_corpus(FIXTURES)
        assert corpus["unexpected"] == [], corpus["unexpected"]

    def test_corpus_is_at_least_fifteen_violations(self):
        corpus = check_fixture_corpus(FIXTURES)
        assert len(corpus["expected"]) >= 15

    def test_corpus_covers_every_rule(self):
        corpus = check_fixture_corpus(FIXTURES)
        seeded_rules = {rule for _, _, rule in corpus["expected"]}
        assert seeded_rules == set(rule_catalog())


class TestSourceTreeIsClean:
    def test_src_repro_has_zero_findings(self):
        linter = lint_paths([SRC])
        assert linter.findings == [], render_report(linter)
        assert linter.files_checked > 50

    def test_the_commit_kernel_edge_is_in_the_static_graph(self):
        # the one edge the kernel is allowed: write mutex before latches
        linter = lint_paths([SRC])
        edges = linter.lock_edges()
        assert any(
            "mutex" in a and "latch" in b.lower() for a, b in edges
        ), edges

    def test_known_suppressions_are_counted_not_silent(self):
        # checkpoint's sync-under-mutex, the WAL truncate barrier, and the
        # WAL/FileDisk recovery reads (charged wholesale, not per verb) are
        # deliberate; they must show up as audited suppressions
        linter = lint_paths([SRC])
        rules = {f.rule for f in linter.suppressed}
        assert rules == {"blocking-under-mutex", "uncounted-io"}
        assert len(linter.suppressed) == 10


class TestSuppressionSyntax:
    def test_same_line_allow(self):
        linter = lint_snippet(
            "import os\n"
            "def f(fd, lock, stats):\n"
            "    with lock:\n"
            "        os.fsync(fd)  # lint: allow(blocking-under-mutex)\n"
            "    stats.count(fsyncs=1)\n"
        )
        assert linter.findings == []
        assert [f.rule for f in linter.suppressed] == ["blocking-under-mutex"]

    def test_preceding_comment_line_allow(self):
        linter = lint_snippet(
            "import os\n"
            "def f(fd, lock, stats):\n"
            "    with lock:\n"
            "        # lint: allow(blocking-under-mutex)\n"
            "        os.fsync(fd)\n"
            "    stats.count(fsyncs=1)\n"
        )
        assert linter.findings == []

    def test_allow_for_a_different_rule_does_not_suppress(self):
        linter = lint_snippet(
            "import os\n"
            "def f(fd, lock, stats):\n"
            "    with lock:\n"
            "        os.fsync(fd)  # lint: allow(lock-order)\n"
            "    stats.count(fsyncs=1)\n"
        )
        assert [f.rule for f in linter.findings] == ["blocking-under-mutex"]

    def test_non_adjacent_allow_does_not_suppress(self):
        linter = lint_snippet(
            "import os\n"
            "# lint: allow(blocking-under-mutex)\n"
            "def f(fd, lock, stats):\n"
            "    with lock:\n"
            "        os.fsync(fd)\n"
            "    stats.count(fsyncs=1)\n"
        )
        assert [f.rule for f in linter.findings] == ["blocking-under-mutex"]


class TestRuleMechanics:
    def test_same_named_locks_on_different_classes_do_not_cycle(self):
        # A._lock -> B nested one way, B._lock -> A the other: distinct
        # owners must keep the keys distinct, so no bogus cycle
        linter = lint_snippet(
            "class A:\n"
            "    def f(self):\n"
            "        with self._a_lock:\n"
            "            with self._b_lock:\n"
            "                pass\n"
            "    def g(self):\n"
            "        with self._b_lock:\n"
            "            with self._a_lock:\n"
            "                pass\n"
        )
        assert [f for f in linter.findings if f.rule == "lock-order"] != [], (
            "A/B-B/A on the *same* keys should cycle"
        )
        linter2 = lint_snippet(
            "class A:\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            pass\n"
            "class B:\n"
            "    def g(self):\n"
            "        with self._lock:\n"
            "            pass\n"
        )
        assert linter2.findings == []

    def test_barrier_lock_may_fsync(self):
        linter = lint_snippet(
            "import os\n"
            "class WriteAheadLog:\n"
            "    def sync(self, fd):\n"
            "        with self._sync_lock:\n"
            "            os.fsync(fd)\n"
            "        self.stats.count(fsyncs=1)\n"
        )
        assert linter.findings == []

    def test_tracer_span_is_not_a_lock(self):
        # PR 10: a `with ....span(...)` item mints no lock token, even on
        # the lockiest-named receiver — spans are instrumentation
        linter = lint_snippet(
            "class Kernel:\n"
            "    def f(self):\n"
            "        with self._write_mutex:\n"
            "            with self._lock_tracer.span('commit.apply'):\n"
            "                with self._leaf_lock:\n"
            "                    pass\n"
            "    def g(self):\n"
            "        with self._mutex_tracer.span('session.request'):\n"
            "            with self._write_mutex:\n"
            "                pass\n"
        )
        assert linter.findings == []

    def test_span_block_does_not_shield_shared_mutation(self):
        # the flip side: if span *were* a lock, a bare += on a shared
        # counter inside it would be silently allowed
        linter = lint_snippet(
            "class Kernel:\n"
            "    def f(self, tracer):\n"
            "        with tracer.span('commit.apply'):\n"
            "            self.stats.commits += 1\n"
        )
        assert [f.rule for f in linter.findings] == [
            "unlocked-shared-mutation"
        ]

    def test_registry_extension_is_one_class(self):
        class Custom(Rule):
            id = "no-print"
            description = "toy rule: no print calls under any lock"

            def on_call(self, ctx, node, chain):
                if ctx.held and chain == "print":
                    ctx.emit(node, self.id, "print under a lock")

        linter = Linter(rules=[Custom()])
        linter.lint_source(
            "def f(lock):\n"
            "    with lock:\n"
            "        print('hi')\n",
            "<snippet>",
        )
        assert [f.rule for f in linter.finish()] == ["no-print"]


class TestEffectSummaries:
    """The interprocedural substrate: summaries, resolution, closure."""

    def test_effects_close_over_self_calls(self):
        linter = lint_snippet(
            "class Pager:\n"
            "    def read_block(self, b):\n"
            "        return self._load(b)\n"
            "    def _load(self, b):\n"
            "        self.stats.count(reads=1)\n"
        )
        program = linter.program
        assert program.reaches("<snippet>::Pager._load", "charge")
        assert program.reaches("<snippet>::Pager.read_block", "charge")

    def test_attribute_calls_are_not_self_calls(self):
        # self._file.read() is a call on the *attribute*, not on self —
        # it must not resolve to a same-class method named read
        linter = lint_snippet(
            "class Pager:\n"
            "    def read(self, b):\n"
            "        self.stats.count(reads=1)\n"
            "    def raw(self, b):\n"
            "        return self._file.read(b)\n"
        )
        assert not linter.program.reaches("<snippet>::Pager.raw", "charge")
        assert [f.rule for f in linter.findings] == ["uncounted-io"]

    def test_module_level_calls_resolve(self):
        linter = lint_snippet(
            "def charge(stats):\n"
            "    stats.count(writes=1)\n"
            "def entry(stats):\n"
            "    charge(stats)\n"
        )
        assert linter.program.reaches("<snippet>::entry", "charge")

    def test_unresolved_calls_do_not_invent_effects(self):
        linter = lint_snippet(
            "def entry(helper):\n"
            "    helper.charge_everything()\n"
        )
        assert not linter.program.reaches("<snippet>::entry", "charge")

    def test_program_stats_shape(self):
        linter = lint_snippet("def f():\n    pass\n")
        stats = linter.program.stats()
        assert set(stats) == {"functions", "call_edges", "modules"}
        assert stats["functions"] == 1
        assert stats["modules"] == 1


class TestCommitProtocolRule:
    def test_append_outside_commit_kernel(self):
        linter = lint_snippet(
            "class Engine:\n"
            "    def sneak(self, op):\n"
            "        lsn = self.wal.append(0, op)\n"
            "        self.wal.sync_to(lsn)\n"
        )
        assert [f.rule for f in linter.findings] == ["commit-protocol"]
        assert "outside" in linter.findings[0].message

    def test_append_without_reachable_barrier(self):
        linter = lint_snippet(
            "class Engine:\n"
            "    def _commit(self, op):\n"
            "        self.wal.append(0, op)\n"
        )
        assert [f.rule for f in linter.findings] == ["commit-protocol"]

    def test_publish_before_barrier_is_ordered_by_line(self):
        linter = lint_snippet(
            "class Engine:\n"
            "    def _commit(self, op):\n"
            "        lsn = self.wal.append(0, op)\n"
            "        self._epochs.publish(1)\n"
            "        self.wal.sync_to(lsn)\n"
        )
        assert any(
            f.rule == "commit-protocol" and "publish" in f.message
            for f in linter.findings
        )

    def test_transitive_publish_satisfies_begin(self):
        linter = lint_snippet(
            "class Engine:\n"
            "    def _commit(self, op):\n"
            "        epoch = self._epochs.begin()\n"
            "        lsn = self.wal.append(epoch, op)\n"
            "        self.wal.sync_to(lsn)\n"
            "        self._finish(epoch)\n"
            "    def _finish(self, epoch):\n"
            "        self._epochs.publish(epoch)\n"
        )
        assert linter.findings == []


class TestStalePlanCacheRule:
    def test_swap_without_bump(self):
        linter = lint_snippet(
            "class Holder:\n"
            "    def rebuild(self, new):\n"
            "        self.inner.destroy()\n"
            "        self.inner = new\n"
        )
        assert [f.rule for f in linter.findings] == ["stale-plan-cache"]

    def test_transitive_bump_counts(self):
        linter = lint_snippet(
            "class Holder:\n"
            "    def rebuild(self, new):\n"
            "        self.inner.destroy()\n"
            "        self.inner = new\n"
            "        self._note()\n"
            "    def _note(self):\n"
            "        self.generation += 1\n"
        )
        assert linter.findings == []

    def test_teardown_methods_are_exempt(self):
        linter = lint_snippet(
            "class Holder:\n"
            "    def close(self):\n"
            "        self.inner.destroy()\n"
            "        self.inner = None\n"
        )
        assert linter.findings == []


class TestWireExhaustivenessRule:
    def test_handler_and_client_drift(self):
        linter = lint_snippet(
            'COMMANDS = ("ping", "query")\n'
            "class Server:\n"
            "    def _cmd_ping(self, conn, rid, msg):\n"
            "        return {}\n"
            "class MyClient:\n"
            "    def ping(self):\n"
            "        return COMMANDS[0]\n"
            "    def query(self, q):\n"
            "        return None\n"
        )
        findings = [f for f in linter.findings if f.rule == "wire-exhaustiveness"]
        assert len(findings) == 1
        assert "query" in findings[0].message  # the missing handler

    def test_registry_must_cover_local_subclasses(self):
        linter = lint_snippet(
            "class AlgebraicQuery:\n"
            "    pass\n"
            "class Stab(AlgebraicQuery):\n"
            "    pass\n"
            "class Fancy(AlgebraicQuery):\n"
            "    pass\n"
            "def _node_registry():\n"
            "    types = (Stab,)\n"
            "    return {t.__name__: t for t in types}\n"
        )
        findings = [f for f in linter.findings if f.rule == "wire-exhaustiveness"]
        assert len(findings) == 1
        assert "Fancy" in findings[0].message

    def test_error_codes_pin_classify_returns(self):
        linter = lint_snippet(
            'ERROR_CODES = ("bad_request", "unused")\n'
            "def classify_error(exc):\n"
            '    if isinstance(exc, ValueError):\n'
            '        return "bad_request"\n'
            '    return "surprise"\n'
        )
        messages = [
            f.message for f in linter.findings if f.rule == "wire-exhaustiveness"
        ]
        assert any("unused" in m for m in messages)
        assert any("surprise" in m for m in messages)


class TestLintCli:
    def test_check_is_clean_on_the_tree(self, capsys):
        assert main(["lint", "--check", str(SRC)]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_check_fails_on_a_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "import os\n"
            "def f(fd, lock):\n"
            "    with lock:\n"
            "        os.fsync(fd)\n"
        )
        assert main(["lint", "--check", str(bad)]) == 1
        assert "blocking-under-mutex" in capsys.readouterr().out

    def test_fixture_corpus_gate(self, capsys):
        assert main(["lint", "--fixtures", str(FIXTURES)]) == 0
        assert "all flagged" in capsys.readouterr().out

    def test_json_report(self, tmp_path):
        import json

        report_file = tmp_path / "lint.json"
        assert main(
            ["lint", "--check", str(SRC), "--report", str(report_file)]
        ) == 0
        report = json.loads(report_file.read_text())
        assert report["findings"] == []
        assert len(report["suppressed"]) == 10
        assert report["lock_graph"]
        assert set(report["rules"]) == set(rule_catalog())
        assert report["effects"]["functions"] > 500
        assert report["effects"]["call_edges"] > 500

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in rule_catalog():
            assert rule_id in out
