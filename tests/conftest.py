"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.interval import Interval
from repro.io import SimulatedDisk
from repro.metablock.geometry import PlanarPoint


@pytest.fixture
def disk():
    """A small-page disk (B = 8), the default used across unit tests."""
    return SimulatedDisk(block_size=8)


@pytest.fixture
def tiny_disk():
    """A very small page size (B = 4) to exercise deep trees cheaply."""
    return SimulatedDisk(block_size=4)


def make_intervals(n, seed=0, domain=(0.0, 1000.0), mean_length=60.0):
    """Deterministic random interval workload used by many tests."""
    rnd = random.Random(seed)
    lo, hi = domain
    out = []
    for i in range(n):
        start = rnd.uniform(lo, hi)
        length = rnd.uniform(0, mean_length)
        out.append(Interval(start, start + length, payload=i))
    return out


def make_interval_points(n, seed=0, domain=(0.0, 1000.0), mean_length=60.0):
    """Points of the ``y >= x`` shape produced by interval endpoints."""
    return [
        PlanarPoint(iv.low, iv.high, payload=iv.payload)
        for iv in make_intervals(n, seed=seed, domain=domain, mean_length=mean_length)
    ]


def make_points(n, seed=0, domain=(0.0, 1000.0)):
    """Uniform planar points (no diagonal constraint)."""
    rnd = random.Random(seed)
    lo, hi = domain
    return [PlanarPoint(rnd.uniform(lo, hi), rnd.uniform(lo, hi), payload=i) for i in range(n)]


def brute_diagonal(points, q):
    return sorted((p.x, p.y) for p in points if p.x <= q and p.y >= q)


def brute_three_sided(points, x1, x2, y0):
    return sorted((p.x, p.y) for p in points if x1 <= p.x <= x2 and p.y >= y0)
