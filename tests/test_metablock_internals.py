"""White-box tests for the metablock trees' internal organisation.

These check the structural facts the proofs of Theorems 3.2/3.7 and
Lemmas 4.3/4.4 rely on, rather than end-to-end query answers (those are
covered by the black-box and property tests).
"""

import random

import pytest

from repro.io import SimulatedDisk
from repro.metablock import AugmentedMetablockTree, StaticMetablockTree, ThreeSidedMetablockTree
from repro.metablock.dynamic_tree import DynamicMetablock
from repro.metablock.geometry import PlanarPoint

from tests.conftest import make_interval_points, make_points


class TestStaticOrganisation:
    @pytest.fixture(scope="class")
    def tree(self):
        disk = SimulatedDisk(block_size=4)
        return StaticMetablockTree(disk, make_interval_points(800, seed=17))

    def test_ts_structures_span_left_siblings(self, tree):
        """TS(M) holds the B^2 highest points among M's left siblings (Fig. 10)."""
        cap = tree.capacity
        for mb in tree.iter_metablocks():
            if mb.is_leaf:
                continue
            accumulated = []
            for child in mb.children:
                if accumulated and child.ts is not None:
                    expected = sorted(
                        (p.y for p in accumulated), reverse=True
                    )[: cap]
                    stored = []
                    for bid in child.ts.block_ids:
                        stored.extend(p.y for p in tree.disk.peek(bid).records)
                    assert sorted(stored, reverse=True) == sorted(expected, reverse=True)
                accumulated.extend(child.points)

    def test_leftmost_child_has_no_ts(self, tree):
        for mb in tree.iter_metablocks():
            if not mb.is_leaf and mb.children:
                assert mb.children[0].ts is None

    def test_both_blockings_store_every_point(self, tree):
        for mb in tree.iter_metablocks():
            if not mb.points:
                continue
            for blocking in (mb.vertical, mb.horizontal):
                stored = []
                for bid in blocking.block_ids:
                    stored.extend(blocking and tree.disk.peek(bid).records)
                assert sorted((p.x, p.y) for p in stored) == sorted((p.x, p.y) for p in mb.points)

    def test_corner_structures_only_where_needed(self, tree):
        for mb in tree.iter_metablocks():
            if mb.corner is not None:
                assert mb.needs_corner_structure()
            elif mb.points:
                assert not mb.needs_corner_structure()

    def test_control_block_exists_per_metablock(self, tree):
        for mb in tree.iter_metablocks():
            assert mb.control_block_id is not None
            header = tree.disk.peek(mb.control_block_id).header
            assert header["is_leaf"] == mb.is_leaf

    def test_query_reads_only_allocated_blocks(self, tree):
        """The query path never touches freed/foreign blocks (no KeyError)."""
        rnd = random.Random(0)
        for _ in range(20):
            tree.diagonal_query(rnd.uniform(-10, 1200))


class TestDynamicOrganisation:
    def test_update_blocks_created_lazily(self):
        disk = SimulatedDisk(4)
        tree = AugmentedMetablockTree(disk, make_interval_points(100, seed=18))
        roots_with_updates = [
            mb for mb in tree.iter_metablocks()
            if isinstance(mb, DynamicMetablock) and mb.update_block_id is not None
        ]
        assert roots_with_updates == []  # no inserts yet -> no update blocks
        tree.insert(PlanarPoint(1.0, 2.0))
        assert any(
            isinstance(mb, DynamicMetablock) and mb.update_block_id is not None
            for mb in tree.iter_metablocks()
        )

    def test_level_one_reorganisation_merges_update_block(self):
        B = 4
        disk = SimulatedDisk(B)
        tree = AugmentedMetablockTree(disk)
        pts = [PlanarPoint(float(i), float(i + 1), payload=i) for i in range(B)]
        for p in pts:
            tree.insert(p)
        # B inserts into the root leaf trigger exactly one level I reorganisation
        assert len(tree.root.update_points) == 0
        assert len(tree.root.points) == B

    def test_td_structures_track_descending_points(self):
        B = 4
        disk = SimulatedDisk(B)
        tree = AugmentedMetablockTree(disk, make_interval_points(400, seed=19))
        assert not tree.root.is_leaf
        before = len(tree.root.td_points) + len(tree.root.td_update_points)
        # a very low point descends past the root
        low_point = PlanarPoint(500.0, 500.0001, payload="low")
        tree.insert(low_point)
        after = len(tree.root.td_points) + len(tree.root.td_update_points)
        if any(low_point in (mb.points + mb.update_points)
               for mb in tree.iter_metablocks() if mb is not tree.root):
            assert after == before + 1

    def test_subtree_bounds_stretched_by_inserts(self):
        disk = SimulatedDisk(4)
        tree = AugmentedMetablockTree(disk, make_interval_points(200, seed=20))
        old_max_x = tree.root.subtree_max_x
        tree.insert(PlanarPoint(old_max_x + 100.0, old_max_x + 200.0))
        assert tree.root.subtree_max_x == old_max_x + 100.0
        assert tree.root.subtree_max_y >= old_max_x + 200.0

    def test_size_tracks_inserts(self):
        disk = SimulatedDisk(4)
        tree = AugmentedMetablockTree(disk)
        pts = make_interval_points(300, seed=21)
        tree.insert_many(pts)
        assert len(tree) == 300
        assert len(tree.all_points()) == 300


class TestThreeSidedOrganisation:
    @pytest.fixture(scope="class")
    def tree(self):
        disk = SimulatedDisk(block_size=4)
        return ThreeSidedMetablockTree(disk, make_points(700, seed=22, domain=(0.0, 100.0)))

    def test_every_metablock_has_its_own_pst(self, tree):
        for mb in tree.iter_metablocks():
            if mb.points:
                assert mb.pst is not None
                assert len(mb.pst) == len(mb.points)

    def test_internal_metablocks_have_children_pst(self, tree):
        for mb in tree.iter_metablocks():
            if not mb.is_leaf and mb.children:
                assert mb.children_pst is not None

    def test_two_ts_structures_per_inner_child(self, tree):
        """Lemma 4.3 point (5): TS structures for left *and* right siblings."""
        for mb in tree.iter_metablocks():
            if mb.is_leaf or len(mb.children) < 2:
                continue
            assert mb.children[0].ts_left is None
            assert mb.children[0].ts_right is not None
            assert mb.children[-1].ts_left is not None
            assert mb.children[-1].ts_right is None

    def test_desc_max_y_bounds_descendants(self, tree):
        for mb in tree.iter_metablocks():
            if mb.is_leaf or mb.desc_max_y is None:
                continue
            actual = [
                p.y
                for child in mb.children
                for p in self._subtree_points(child)
            ]
            if actual:
                assert max(actual) <= mb.desc_max_y

    @staticmethod
    def _subtree_points(mb):
        out = []
        stack = [mb]
        while stack:
            node = stack.pop()
            out.extend(node.points)
            out.extend(node.update_points)
            stack.extend(node.children)
        return out

    def test_block_count_consistent_with_disk(self, tree):
        assert tree.block_count() <= tree.disk.blocks_in_use
