"""Tests for the CLI entry point and the collection-index building block."""

import pytest

from repro.classes.collection import CollectionIndex
from repro.classes.hierarchy import ClassObject
from repro.cli import build_parser, main
from repro.io import SimulatedDisk


class TestCollectionIndex:
    def test_bulk_build_and_range_query(self, disk):
        objects = [ClassObject(float(i), "A", payload=i) for i in range(50)]
        collection = CollectionIndex(disk, objects, name="test")
        assert len(collection) == 50
        got = sorted(o.payload for o in collection.range_query(10, 19))
        assert got == list(range(10, 20))

    def test_insert_and_delete(self, disk):
        collection = CollectionIndex(disk)
        obj = ClassObject(5.0, "A", payload="x")
        collection.insert(obj)
        assert [o.payload for o in collection.range_query(0, 10)] == ["x"]
        assert collection.delete(obj)
        assert collection.range_query(0, 10) == []
        assert not collection.delete(obj)

    def test_duplicate_keys(self, disk):
        objects = [ClassObject(7.0, "A", payload=i) for i in range(20)]
        collection = CollectionIndex(disk, objects)
        assert len(collection.range_query(7, 7)) == 20

    def test_block_count_positive(self, disk):
        collection = CollectionIndex(disk, [ClassObject(1.0, "A")])
        assert collection.block_count() >= 1

    def test_io_counted_on_shared_disk(self, disk):
        collection = CollectionIndex(disk, [ClassObject(float(i), "A") for i in range(100)])
        with disk.measure() as m:
            collection.range_query(0, 50)
        assert m.ios > 0


class TestCLI:
    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_intervals_command(self, capsys):
        assert main(["intervals", "--n", "400", "--queries", "5"]) == 0
        out = capsys.readouterr().out
        assert "avg I/Os per query" in out
        assert "bound" in out

    def test_classes_command_all_methods(self, capsys):
        for method in ("simple", "combined", "single"):
            assert main(
                ["classes", "--classes", "12", "--objects", "300", "--queries", "5",
                 "--method", method]
            ) == 0
        assert "scheme bound" in capsys.readouterr().out

    def test_tessellation_command(self, capsys):
        assert main(["tessellation", "--grid", "64", "--block-size", "16"]) == 0
        out = capsys.readouterr().out
        assert "sqrt(B)" in out
        assert "4.0" in out

    def test_unknown_method_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["classes", "--method", "bogus"])

    def test_buffer_pages_accepted_on_engine_subcommands(self, capsys):
        assert main(["intervals", "--n", "300", "--queries", "3",
                     "--buffer-pages", "8"]) == 0
        assert main(["classes", "--classes", "8", "--objects", "200",
                     "--queries", "3", "--buffer-pages", "8"]) == 0
        assert "avg I/Os per query" in capsys.readouterr().out

    def test_explain_command_prints_plan_and_bound(self, capsys):
        assert main(["explain", "--n", "400", "--stab", "42",
                     "--endpoint", "low", "10", "40", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "plan" in out
        assert "Index(interval-manager)" in out
        assert "residual filter" in out
        assert "limit 5" in out
        assert "predicted I/Os" in out and "observed" in out

    def test_explain_command_union_and_file_backend(self, capsys, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)  # FileDisk writes its page file here
        assert main(["explain", "--n", "200", "--backend", "file",
                     "--endpoint", "low", "0", "50",
                     "--endpoint", "high", "10", "60"]) == 0
        assert "Index(" in capsys.readouterr().out
