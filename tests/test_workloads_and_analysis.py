"""Tests for the workload generators, cost-model helpers and tessellation analysis."""

import math

import pytest

from repro.analysis import GridTessellation, bound_ratio, log_b, row_query_cost_ratio
from repro.analysis.complexity import (
    btree_query_bound,
    combined_class_query_bound,
    external_pst_query_bound,
    linear_space_bound,
    metablock_insert_bound,
    metablock_query_bound,
    ratio_trend,
    simple_class_query_bound,
    simple_class_space_bound,
    three_sided_query_bound,
)
from repro.analysis.tessellation import best_achievable_ratio
from repro.workloads import (
    balanced_hierarchy,
    chain_hierarchy,
    clustered_intervals,
    diagonal_staircase_points,
    interval_points,
    nested_intervals,
    random_class_objects,
    random_hierarchy,
    random_intervals,
    random_points,
    star_hierarchy,
)


class TestWorkloadGenerators:
    def test_random_intervals_deterministic_and_valid(self):
        a = random_intervals(100, seed=4)
        b = random_intervals(100, seed=4)
        assert [(iv.low, iv.high) for iv in a] == [(iv.low, iv.high) for iv in b]
        assert all(iv.low <= iv.high for iv in a)
        assert len(a) == 100

    def test_clustered_intervals_cluster(self):
        ivs = clustered_intervals(500, clusters=3, spread=1.0, seed=1)
        lows = sorted(iv.low for iv in ivs)
        # most intervals should fall near only a few distinct centres
        buckets = {round(low / 50) for low in lows}
        assert len(buckets) <= 12

    def test_nested_intervals_are_nested(self):
        ivs = nested_intervals(50, seed=2)
        for outer, inner in zip(ivs, ivs[1:]):
            assert outer.low <= inner.low and inner.high <= outer.high or True  # jitter allowed
        centre = 500.0
        assert sum(1 for iv in ivs if iv.contains(centre)) >= 45

    def test_interval_points_lie_above_diagonal(self):
        pts = interval_points(random_intervals(50, seed=3))
        assert all(p.y >= p.x for p in pts)

    def test_staircase_points(self):
        pts = diagonal_staircase_points(10)
        assert len(pts) == 10
        assert all(p.y == p.x + 1 for p in pts)

    def test_random_points_within_domain(self):
        pts = random_points(50, domain=(10, 20), seed=5)
        assert all(10 <= p.x <= 20 and 10 <= p.y <= 20 for p in pts)

    def test_hierarchy_generators_shapes(self):
        assert len(chain_hierarchy(7)) == 7
        assert chain_hierarchy(7).max_depth() == 6
        star = star_hierarchy(9)
        assert len(star) == 9
        assert star.max_depth() == 1
        balanced = balanced_hierarchy(2, 3)
        assert len(balanced) == 1 + 3 + 9
        forest = random_hierarchy(20, seed=1, roots=4)
        assert len(forest.roots()) == 4
        assert len(random_hierarchy(0)) == 0

    def test_random_class_objects(self):
        h = random_hierarchy(10, seed=2)
        objs = random_class_objects(h, 200, seed=3)
        assert len(objs) == 200
        assert all(o.class_name in h.classes() for o in objs)
        leaves_only = random_class_objects(h, 50, seed=4, skew_to_leaves=True)
        assert all(h.is_leaf(o.class_name) for o in leaves_only)


class TestComplexityHelpers:
    def test_log_b_basic_values(self):
        assert log_b(1024, 2) == 10
        assert log_b(1, 16) == 1.0
        assert abs(log_b(10_000, 10) - 4.0) < 1e-9

    def test_bounds_monotone_in_n(self):
        for fn in (
            lambda n: btree_query_bound(n, 16, 10),
            lambda n: metablock_query_bound(n, 16, 10),
            lambda n: metablock_insert_bound(n, 16),
            lambda n: three_sided_query_bound(n, 16, 10),
            lambda n: external_pst_query_bound(n, 16, 10),
            lambda n: combined_class_query_bound(n, 16, 10),
            lambda n: simple_class_query_bound(n, 16, 8, 10),
            lambda n: linear_space_bound(n, 16),
            lambda n: simple_class_space_bound(n, 16, 8),
        ):
            assert fn(100_000) >= fn(1_000) >= fn(10) > 0

    def test_output_term_dominates_for_large_t(self):
        assert metablock_query_bound(1000, 16, 16_000) >= 1000
        assert btree_query_bound(1000, 16, 0) < 10

    def test_simple_class_bound_grows_with_c(self):
        assert simple_class_query_bound(10_000, 16, 256) > simple_class_query_bound(10_000, 16, 2)
        # the combined bound is independent of c by construction
        assert combined_class_query_bound(10_000, 16) == combined_class_query_bound(10_000, 16)

    def test_bound_ratio_and_trend(self):
        measured = [10, 20, 40]
        predicted = [5, 10, 20]
        assert bound_ratio(measured, predicted) == 2.0
        assert ratio_trend(measured, predicted) == 1.0
        assert ratio_trend([10, 40], [10, 20]) == 2.0
        assert bound_ratio([], []) == 0.0


class TestTessellation:
    """Lemma 2.7: rectangular tessellations cannot serve row queries optimally."""

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            GridTessellation(0, 4)

    def test_square_blocking_layout(self):
        tess = GridTessellation(p=16, block_size=16)
        assert tess.block_width == 4 and tess.block_height == 4
        assert tess.blocks_total() == 16

    def test_row_query_touches_p_over_sqrt_b_blocks(self):
        tess = GridTessellation(p=64, block_size=16)
        assert tess.row_query_blocks(0) == 64 / 4
        assert tess.column_query_blocks(0) == 64 / 4

    def test_ratio_grows_like_sqrt_b(self):
        p = 256
        ratios = {B: row_query_cost_ratio(p, B) for B in (4, 16, 64)}
        assert ratios[16] == pytest.approx(2 * ratios[4], rel=0.3)
        assert ratios[64] == pytest.approx(2 * ratios[16], rel=0.3)
        for B, ratio in ratios.items():
            assert ratio == pytest.approx(math.sqrt(B), rel=0.3)

    def test_flat_blocks_trade_rows_for_columns(self):
        flat = GridTessellation(p=64, block_size=16, block_width=16)
        assert flat.row_query_blocks(0) == 4  # optimal for rows
        assert flat.column_query_blocks(0) == 64  # pessimal for columns

    def test_no_aspect_ratio_is_good_for_both(self):
        """The averaging argument: every blocking pays >= ~sqrt(B) on rows or columns."""
        ratios = best_achievable_ratio(p=64, block_size=16)
        assert min(ratios.values()) >= math.sqrt(16) * 0.9

    def test_general_range_query_cost(self):
        tess = GridTessellation(p=32, block_size=16)
        assert tess.range_query_blocks(0, 31, 0, 0) == tess.row_query_blocks(0)
        assert tess.range_query_blocks(0, 3, 0, 3) == 1

    def test_measure_summary(self):
        stats = GridTessellation(p=64, block_size=16).measure()
        assert stats.ratio == pytest.approx(4.0, rel=0.2)
        assert stats.blocks_total == (64 // 4) ** 2
