"""Unit tests for the LRU buffer pool."""

import pytest

from repro.io import BufferManager, SimulatedDisk


@pytest.fixture
def pool():
    disk = SimulatedDisk(block_size=4)
    return BufferManager(disk, capacity_pages=3)


class TestCaching:
    def test_repeated_read_hits_cache(self, pool):
        block = pool.allocate([1])
        pool.drop()
        pool.read(block.block_id)  # miss
        before = pool.stats.reads
        pool.read(block.block_id)  # hit
        assert pool.stats.reads == before
        assert pool.stats.cache_hits >= 1

    def test_capacity_defaults_to_block_size(self):
        disk = SimulatedDisk(block_size=16)
        pool = BufferManager(disk)
        assert pool.capacity_pages == 16

    def test_eviction_follows_lru_order(self, pool):
        blocks = [pool.allocate([i]) for i in range(3)]
        pool.drop()
        for b in blocks:
            pool.read(b.block_id)
        pool.read(blocks[0].block_id)  # refresh block 0
        extra = pool.allocate([99])  # evicts block 1 (least recently used)
        before = pool.stats.reads
        pool.read(blocks[0].block_id)  # still resident
        assert pool.stats.reads == before
        pool.read(blocks[1].block_id)  # evicted -> miss
        assert pool.stats.reads == before + 1
        assert extra.block_id in [b.block_id for b in [extra]]

    def test_cold_reads_always_cost_io(self, pool):
        blocks = [pool.allocate([i]) for i in range(10)]
        pool.drop()
        before = pool.stats.reads
        for b in blocks:
            pool.read(b.block_id)
        assert pool.stats.reads == before + 10


class TestWriteBack:
    def test_write_is_deferred_until_flush(self, pool):
        block = pool.allocate([1])
        block.records.append(2)
        before = pool.stats.writes
        pool.write(block)
        assert pool.stats.writes == before  # not yet written through
        pool.flush()
        assert pool.stats.writes == before + 1
        assert pool.disk.peek(block.block_id).records == [1, 2]

    def test_eviction_writes_dirty_page(self, pool):
        block = pool.allocate([1])
        block.records.append(2)
        pool.write(block)
        before = pool.stats.writes
        for i in range(5):  # force eviction
            pool.allocate([i])
        assert pool.stats.writes >= before + 1

    def test_free_drops_cache_entry(self, pool):
        block = pool.allocate([1])
        pool.free(block.block_id)
        with pytest.raises(KeyError):
            pool.read(block.block_id)

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            BufferManager(SimulatedDisk(4), capacity_pages=0)


class TestDiskCompatibility:
    """Structures accept either a raw disk or a buffer manager."""

    def test_block_size_passthrough(self, pool):
        assert pool.block_size == pool.disk.block_size

    def test_measure_passthrough(self, pool):
        block = pool.allocate([1])
        pool.drop()
        with pool.measure() as m:
            pool.read(block.block_id)
        assert m.ios == 1

    def test_btree_works_through_buffer_pool(self):
        from repro.btree import BPlusTree

        disk = SimulatedDisk(block_size=8)
        pool = BufferManager(disk, capacity_pages=8)
        tree = BPlusTree(pool)
        for i in range(200):
            tree.insert(i % 37, i)
        assert sorted(v for _, v in tree.range_search(0, 100)) == sorted(range(200))

    def test_buffered_btree_uses_fewer_ios_than_cold(self):
        from repro.btree import BPlusTree

        def build_and_query(storage):
            tree = BPlusTree.bulk_load(storage, ((i, i) for i in range(500)))
            with storage.measure() as m:
                for q in range(0, 500, 25):
                    tree.search(q)
            return m.ios

        cold = build_and_query(SimulatedDisk(block_size=8))
        warm = build_and_query(BufferManager(SimulatedDisk(block_size=8), capacity_pages=64))
        assert warm < cold
