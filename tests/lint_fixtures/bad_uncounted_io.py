# ruff: noqa
"""Seeded-bad fixture: raw file/os I/O with no IOStats charge on any path.

The good twins pin the coverage logic: a charge in the same function, in
a transitive callee, or in a resolved caller all count.
"""
import os


def bare_barrier(fd):
    os.fsync(fd)  # seeded: uncounted-io


class BadPager:
    def load_block(self, offset, length):
        self._file.seek(offset)  # seeded: uncounted-io
        return self._file.read(length)  # seeded: uncounted-io


class GoodPager:
    """Charge lives in the caller: ``read`` counts what ``_load`` did."""

    def read_block(self, block_id):
        block = self._load(block_id)
        self.stats.count(reads=1)
        return block

    def _load(self, block_id):
        self._file.seek(block_id)
        return self._file.read()


class GoodBarrier:
    """Charge in the same function, next to the barrier."""

    def sync(self):
        os.fsync(self._file.fileno())
        self.stats.count(fsyncs=1)
