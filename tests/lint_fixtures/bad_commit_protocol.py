# ruff: noqa
"""Seeded-bad fixture: commit-protocol violations (append/barrier/publish).

The good twins exercise the *interprocedural* half: a publish reached
through a helper and an append whose barrier lives two calls away must
both count as satisfied.
"""


class SkipsTheBarrier:
    def commit_without_barrier(self, epoch, op):
        # appended outside _commit AND never reaches sync_to
        return self.wal.append(epoch, op)  # seeded: commit-protocol


class PublishesEarly:
    def _commit(self, epoch, op):
        lsn = self.wal.append(epoch, op)
        self._epochs.publish(epoch)  # seeded: commit-protocol
        self.wal.sync_to(lsn)


class LeaksAnEpoch:
    def begin_without_publish(self):
        epoch = self._epochs.begin()  # seeded: commit-protocol
        return epoch


class GoodKernel:
    """The real ordering, with the publish in a helper (transitive effect)."""

    def _commit(self, op):
        epoch = self._epochs.begin()
        lsn = self.wal.append(epoch, op)
        self.wal.sync_to(lsn)
        self._finish(epoch)

    def _finish(self, epoch):
        self._epochs.publish(epoch)
