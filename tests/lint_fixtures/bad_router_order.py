# ruff: noqa
"""Seeded-bad fixture: a cluster router holding locks the wrong way round.

The declared order is topology latch (``_topology_lock``) before the
per-link RPC barrier (``_rpc_lock``): a scatter thread that grabs the
barrier and *then* reaches back for the topology latch can deadlock
against a writer persisting a grown ``max_length`` while it scatters.
"""
import threading


class ShardConnection:
    def __init__(self, sock):
        self._rpc_lock = threading.Lock()
        self.sock = sock
        self.idle = []

    def call_then_reroute(self, router, payload):
        with self._rpc_lock:
            self.sock.sendall(payload)  # barrier lock: blocking here is fine
            with router._topology_lock:  # seeded: lock-order
                router.rebalance()

    def pooled_send_is_fine(self, payload):
        with self._rpc_lock:
            self.sock.sendall(payload)
            return self.sock.recv(4096)


class ShardRouter:
    def __init__(self, links):
        self._topology_lock = threading.Lock()
        self.links = links

    def rebalance(self):
        return len(self.links)

    def recv_under_latch(self, connection):
        with self._topology_lock:
            return connection.sock.recv(4096)  # seeded: blocking-under-mutex

    def classify_under_latch_is_fine(self, record):
        with self._topology_lock:
            return hash(record) % len(self.links)

    def scatter_in_order_is_fine(self, connection, payload):
        with self._topology_lock:
            targets = list(self.links)
        for target in targets:
            with connection._rpc_lock:
                connection.sock.sendall(payload)
        return targets
