# ruff: noqa
"""Seeded-bad fixture: engine-wide locks taken inside read turns.

Acquiring the engine mutex inside a read turn is two violations at once:
the snapshot-isolation rule (readers share only their index latch) and a
rank inversion (the read turn's latch outranks the mutex it then takes).
"""


def mutex_inside_read_turn(engine):
    with engine.read_turn("points") as epoch:
        with engine._write_mutex:  # seeded: engine-lock-in-read-turn # seeded: lock-order
            pass


def write_turn_inside_read_turn(engine):
    with engine.read_turn("points"):
        with engine.write_turn():  # seeded: engine-lock-in-read-turn # seeded: lock-order
            pass


def bare_write_turn_call_inside_read_turn(engine):
    with engine.read_turn("points"):
        engine.write_turn()  # seeded: engine-lock-in-read-turn


def read_turn_alone_is_fine(engine):
    with engine.read_turn("points") as epoch:
        return engine.visible_records("points", [], epoch)
