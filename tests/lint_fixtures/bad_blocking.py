# ruff: noqa
"""Seeded-bad fixture: blocking calls while holding non-barrier locks."""
import os
import socket
import threading
import time


class BadCommit:
    def __init__(self, wal, fd):
        self._write_mutex = threading.RLock()
        self._lock = threading.Lock()
        self.wal = wal
        self.fd = fd

    def fsync_under_leaf(self):
        with self._lock:
            os.fsync(self.fd)  # seeded: blocking-under-mutex
            self.stats.count(fsyncs=1)

    def sync_under_mutex(self, lsn):
        with self._write_mutex:
            self.wal.sync_to(lsn)  # seeded: blocking-under-mutex

    def sleep_under_lock(self):
        with self._lock:
            time.sleep(0.1)  # seeded: blocking-under-mutex

    def socket_under_mutex(self, addr):
        with self._write_mutex:
            socket.create_connection(addr)  # seeded: blocking-under-mutex

    def recv_under_explicit_acquire(self, sock):
        self._lock.acquire()
        try:
            sock.recv(4096)  # seeded: blocking-under-mutex
        finally:
            self._lock.release()

    def fsync_after_release_is_fine(self):
        self._lock.acquire()
        self._lock.release()
        os.fsync(self.fd)
        self.stats.count(fsyncs=1)
