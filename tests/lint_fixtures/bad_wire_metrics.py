# ruff: noqa
"""Seeded-bad fixture: the observability export lagging the wire contract.

Declaring ``metrics`` in ``COMMANDS`` obligates *every* handler class
and *every* protocol client; a scatter-gather frontend that forgot the
handler, or a client that cannot call it, is exactly the drift the
wire-exhaustiveness rule exists to catch.
"""

COMMANDS = ("ping", "stats", "metrics")


class MetricsServer:
    """Complete: one ``_cmd_*`` handler per declared command."""

    def _cmd_ping(self, conn, request_id, message):
        return {}

    def _cmd_stats(self, conn, request_id, message):
        return {}

    def _cmd_metrics(self, conn, request_id, message):
        return {}


class LaggingFrontend:  # seeded: wire-exhaustiveness
    """Routes ``stats`` shard-by-shard but never learned ``metrics``."""

    def _cmd_ping(self, conn, request_id, message):
        return {}

    def _cmd_stats(self, conn, request_id, message):
        return {}


class LaggingClient:  # seeded: wire-exhaustiveness
    """No ``metrics`` method for the declared command."""

    def ping(self):
        return None

    def stats(self):
        return None
