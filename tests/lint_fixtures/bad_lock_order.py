# ruff: noqa
"""Seeded-bad fixture: rank inversions and a same-rank A/B-B/A cycle.

Every line marked ``# seeded: <rule>`` must be flagged by the concurrency
linter — this corpus is the linter's own regression suite, checked by
``repro lint --fixtures`` in CI.  The code is deliberately wrong; never
import it.
"""
import threading

a_lock = threading.Lock()
b_lock = threading.Lock()


class BadKernel:
    def __init__(self):
        self._write_mutex = threading.RLock()
        self._lock = threading.Lock()
        self.latch = None

    def latch_then_mutex(self):
        # a latch holder taking the engine mutex inverts mutex < latch
        with self.latch.write():
            with self._write_mutex:  # seeded: lock-order
                pass

    def leaf_then_mutex(self):
        with self._lock:
            with self._write_mutex:  # seeded: lock-order
                pass


class WriteAheadLog:
    """Shadows the real class name so its locks classify at WAL rank."""

    def __init__(self):
        self._lock = threading.Lock()

    def wal_then_latch(self, latch):
        with self._lock:
            with latch.read():  # seeded: lock-order
                pass


def first_order():
    with a_lock:
        with b_lock:  # seeded: lock-order
            pass


def second_order():
    # the reverse nesting: together with first_order this closes a cycle
    with b_lock:
        with a_lock:
            pass
