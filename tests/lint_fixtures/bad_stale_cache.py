# ruff: noqa
"""Seeded-bad fixture: structural swaps that never bump a generation.

The good twins pin the transitive bump (a helper's ``generation += 1``
counts) and the planner-invalidate alternative; ``destroy`` is teardown,
not a swap, and must stay silent.
"""


class BadRebuilder:
    def bulk_load(self, items):
        replacement = self._build(items)
        self.inner.destroy()
        self.inner = replacement  # seeded: stale-plan-cache


class GoodRebuilder:
    """The bump lives in a helper — the transitive effect must count."""

    def bulk_load(self, items):
        replacement = self._build(items)
        self.inner.destroy()
        self.inner = replacement
        self._note_swap()

    def _note_swap(self):
        self.generation += 1


class GoodInvalidator:
    """Invalidating the planner's cache is the other accepted bump."""

    def reattach(self, index):
        self._planner.invalidate()
        self.index.destroy()
        self.index = index


class TeardownIsFine:
    def destroy(self):
        self.inner.destroy()
        self.inner = None
