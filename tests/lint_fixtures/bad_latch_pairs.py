# ruff: noqa
"""Seeded-bad fixture: explicit acquire_*/release_* latch discipline."""
import os
import threading


class BadLatchUser:
    def __init__(self, latch, fd):
        self._write_mutex = threading.RLock()
        self.latch = latch
        self.fd = fd

    def fsync_while_latched(self):
        self.latch.acquire_write()
        try:
            os.fsync(self.fd)  # seeded: blocking-under-mutex
            self.stats.count(fsyncs=1)
        finally:
            self.latch.release_write()

    def mutex_while_read_latched(self):
        self.latch.acquire_read()
        try:
            with self._write_mutex:  # seeded: lock-order
                pass
        finally:
            self.latch.release_read()

    def commit_shaped_correctly(self, other_latch, apply):
        # a *different* latch: pairing it with the seeded inversion above
        # on the same latch would itself be an A/B-B/A cycle (the detector
        # catches exactly that), which is not what this function seeds
        with self._write_mutex:
            other_latch.acquire_write()
            try:
                apply()
            finally:
                other_latch.release_write()
        os.fsync(self.fd)
        self.stats.count(fsyncs=1)
