# ruff: noqa
"""Seeded-bad fixture: unlocked read-modify-writes on shared counters."""
import threading


class BadStats:
    _shared = ("pending",)

    def __init__(self):
        self._lock = threading.Lock()
        self.reads = 0
        self.cache_hits = 0
        self.pending = 0

    def unlocked_iostats_field(self):
        self.reads += 1  # seeded: unlocked-shared-mutation

    def unlocked_planner_counter(self):
        self.cache_hits += 1  # seeded: unlocked-shared-mutation

    def unlocked_declared_shared(self):
        self.pending += 1  # seeded: unlocked-shared-mutation

    def locked_mutation_is_fine(self):
        with self._lock:
            self.reads += 1
            self.pending -= 1


def spawn_counter_thread():
    done = [0]
    lock = threading.Lock()

    def worker():
        done[0] += 1  # seeded: unlocked-shared-mutation

    def careful_worker():
        with lock:
            done[0] += 1

    def private_counter_is_fine():
        mine = [0]
        mine[0] += 1

    threading.Thread(target=worker).start()
    threading.Thread(target=careful_worker).start()
    threading.Thread(target=private_counter_is_fine).start()
    return done
