# ruff: noqa
"""Clean fixture: real-looking violations silenced by justified suppressions.

This file must produce ZERO findings — it proves the ``# lint: allow``
mechanism works on the same line and on the line above, and that correctly
locked code is not flagged at all.
"""
import os
import threading


class QuiescedCheckpoint:
    def __init__(self, fd):
        self._write_mutex = threading.RLock()
        self._lock = threading.Lock()
        self.fd = fd
        self.reads = 0

    def checkpoint(self):
        with self._write_mutex:
            # writers are quiesced here; the barrier must precede truncate
            # lint: allow(blocking-under-mutex)
            os.fsync(self.fd)
            self.stats.count(fsyncs=1)

    def same_line_suppression(self):
        with self._lock:
            os.fsync(self.fd)  # lint: allow(blocking-under-mutex)
            self.stats.count(fsyncs=1)

    def locked_counter(self):
        with self._lock:
            self.reads += 1

    def suppressed_counter(self):
        self.reads += 1  # lint: allow(unlocked-shared-mutation)
