# ruff: noqa
"""Clean fixture: ``Tracer.span`` is instrumentation, not a lock.

Spans bracket regions for wall-clock and I/O attribution; they nest
freely across real locks.  The walker must not mint a lock token for a
``with ....span(...)`` item — not even when the receiver is named as
lockily as possible — or every instrumented site would fabricate
lock-order edges against the locks it runs under.  Zero findings.
"""

import threading


class InstrumentedKernel:
    def __init__(self, tracer):
        # deliberately locky receiver names: the method, not the name,
        # decides whether a with-item is an acquisition
        self._lock_tracer = tracer
        self._mutex_tracer = tracer
        self._write_mutex = threading.Lock()
        self._leaf_lock = threading.Lock()

    def commit(self, record):
        # span under the commit mutex, then a leaf lock under the span:
        # only mutex -> leaf is a real edge (and it is rank-ordered)
        with self._write_mutex:
            with self._lock_tracer.span("commit.apply", op="insert"):
                with self._leaf_lock:
                    self.applied = record

    def read(self, key):
        # span *around* a lock must not invert any declared order either
        with self._mutex_tracer.span("session.request", op="query"):
            with self._leaf_lock:
                return getattr(self, "applied", None)
