# ruff: noqa
"""Seeded-bad fixture: wire-contract drift across the protocol artifacts.

COMMANDS, the ``_cmd_*`` handler surface, the client's method surface,
the serialization registry and the error-code declaration must agree;
every drift below is one planted disagreement.
"""

COMMANDS = ("ping", "query", "insert")

ERROR_CODES = ("bad_request", "internal", "unused_code")  # seeded: wire-exhaustiveness


class DriftServer:  # seeded: wire-exhaustiveness
    """Misses ``_cmd_insert`` and serves an undeclared ``stats``."""

    def _cmd_ping(self, conn, request_id, message):
        return {}

    def _cmd_query(self, conn, request_id, message):
        return {}

    def _cmd_stats(self, conn, request_id, message):
        return {}


class DriftClient:  # seeded: wire-exhaustiveness
    """No ``insert`` method for a declared command."""

    def ping(self):
        return None

    def query(self, q):
        return None


def classify_error(exc):  # seeded: wire-exhaustiveness
    if isinstance(exc, ValueError):
        return "bad_request"
    return "surprise"


class AlgebraicQuery:
    pass


class Stab(AlgebraicQuery):
    pass


class Fancy(AlgebraicQuery):  # seeded: wire-exhaustiveness
    pass


def _node_registry():  # seeded: wire-exhaustiveness
    types = (Stab, Ghost)
    return {t.__name__: t for t in types}
