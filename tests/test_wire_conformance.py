"""Runtime twin of the ``wire-exhaustiveness`` lint rule.

The static rule pins the wire contract by *reading source*; this suite
pins it by *importing the artifacts* and comparing the live surfaces:

* ``COMMANDS`` ↔ ``ReproServer._cmd_*`` ↔ ``ClusterFrontend._cmd_*``
* ``COMMANDS`` ↔ :class:`ReproClient` public methods
* ``_node_registry()`` keys ↔ the node types' own ``__name__`` tags,
  and every registered type round-trips through ``query_from_dict``
* ``ERROR_CODES`` ↔ what :func:`classify_error` actually returns

If either side drifts, one of the two checkers fires — the lint rule at
review time, this suite at test time — so the contract cannot rot in a
path the other checker does not see (e.g. a dynamically added handler
the AST walk would miss).
"""

from __future__ import annotations

import inspect

from repro.cluster.router import ClusterFrontend
from repro.engine.queries import _node_registry, query_from_dict
from repro.engine.session import WriteIntentError
from repro.server.client import ReproClient
from repro.server.core import ReproServer
from repro.server.protocol import (
    COMMANDS,
    ERROR_CODES,
    ProtocolError,
    ShardUnavailableError,
    StaleHandleError,
    classify_error,
)


def handler_surface(cls: type) -> set:
    return {
        name[len("_cmd_"):]
        for name, member in inspect.getmembers(cls, callable)
        if name.startswith("_cmd_")
    }


class TestCommandSurfaces:
    def test_server_handles_exactly_the_declared_commands(self):
        assert handler_surface(ReproServer) == set(COMMANDS)

    def test_cluster_frontend_handles_exactly_the_declared_commands(self):
        assert handler_surface(ClusterFrontend) == set(COMMANDS)

    def test_client_exposes_every_command(self):
        methods = {
            name
            for name, member in inspect.getmembers(ReproClient, callable)
            if not name.startswith("_")
        }
        missing = set(COMMANDS) - methods
        assert missing == set(), (
            f"ReproClient lacks methods for declared commands: {sorted(missing)}"
        )

    def test_commands_has_no_duplicates_and_is_sorted_enough(self):
        assert len(COMMANDS) == len(set(COMMANDS))
        assert "ping" in COMMANDS and "shutdown" in COMMANDS


class TestSerializationRegistry:
    def test_registry_keys_are_the_type_names(self):
        registry = _node_registry()
        assert registry
        for tag, node_type in registry.items():
            assert tag == node_type.__name__

    def test_every_registered_type_is_reachable_from_the_wire(self):
        # a dict tagged with each registry key must dispatch to that type
        # (malformed payloads may raise ValueError — what matters is that
        # the tag is *known*, which unknown tags signal differently)
        for tag in _node_registry():
            try:
                query_from_dict({"node": tag})
            except ValueError as exc:
                assert "unknown" not in str(exc).lower(), (tag, exc)
            except TypeError:
                pass  # known tag, missing constructor args — fine

    def test_unknown_tags_are_rejected(self):
        try:
            query_from_dict({"node": "NoSuchNode"})
        except ValueError as exc:
            assert "NoSuchNode" in str(exc)
        else:  # pragma: no cover - defends the assertion above
            raise AssertionError("unknown node tag was accepted")


class TestErrorClassification:
    def test_every_declared_code_is_producible(self):
        produced = {
            classify_error(ProtocolError("bad line")),
            classify_error(StaleHandleError("lease gone")),
            classify_error(ShardUnavailableError("shard 2 down")),
            classify_error(KeyError("no index named 'x'")),
            classify_error(WriteIntentError("contended")),
            classify_error(ValueError("duplicate uid 7")),
            classify_error(RuntimeError("boom")),
        }
        assert produced == set(ERROR_CODES)

    def test_classification_never_leaves_the_declared_set(self):
        exercises = [
            ProtocolError("x"),
            StaleHandleError("x"),
            ShardUnavailableError("x"),
            KeyError("parameter 'low' unbound"),
            KeyError("no index"),
            WriteIntentError("x"),
            ValueError("duplicate uid"),
            ValueError("bad payload"),
            RuntimeError("prepared against a dropped index: prepare again"),
            RuntimeError("anything else"),
            OSError("disk"),
        ]
        for exc in exercises:
            assert classify_error(exc) in ERROR_CODES, exc

    def test_relayed_shard_codes_survive_classification(self):
        # a router relaying a shard's structured error keeps its code
        class Relayed(RuntimeError):
            code = "unknown_index"

        assert classify_error(Relayed("from shard")) == "unknown_index"

    def test_error_codes_are_unique_and_sorted(self):
        assert list(ERROR_CODES) == sorted(set(ERROR_CODES))
