"""Unit tests for the blockings (Fig. 9) and the corner structure (Lemma 3.1)."""

import random

import pytest

from repro.io import SimulatedDisk
from repro.metablock import blocking as blk
from repro.metablock.corner import CornerStructure
from repro.metablock.geometry import PlanarPoint

from tests.conftest import make_interval_points


class TestBlockings:
    def test_vertical_blocking_orders_by_x(self, disk):
        pts = [PlanarPoint(x, 100 - x) for x in (5, 1, 9, 3, 7)]
        blocking = blk.build_vertical(disk, pts)
        stored = []
        for bid in blocking.block_ids:
            stored.extend(p.x for p in disk.peek(bid).records)
        assert stored == sorted(stored)

    def test_horizontal_blocking_orders_by_descending_y(self, disk):
        pts = [PlanarPoint(x, x * 2) for x in range(20)]
        blocking = blk.build_horizontal(disk, pts)
        stored = []
        for bid in blocking.block_ids:
            stored.extend(p.y for p in disk.peek(bid).records)
        assert stored == sorted(stored, reverse=True)

    def test_block_count_is_ceiling_of_n_over_b(self, disk):
        pts = [PlanarPoint(i, i) for i in range(21)]
        blocking = blk.build_vertical(disk, pts)  # B = 8 -> 3 blocks
        assert len(blocking) == 3

    def test_bounds_record_first_and_last_key(self, disk):
        pts = [PlanarPoint(i, 50 - i) for i in range(16)]
        blocking = blk.build_vertical(disk, pts)
        assert blocking.bounds[0] == (0, 7)
        assert blocking.bounds[1] == (8, 15)

    def test_scan_vertical_stops_at_boundary(self, disk):
        pts = [PlanarPoint(i, 100) for i in range(64)]
        blocking = blk.build_vertical(disk, pts)
        out, reads = blk.scan_vertical_upto(disk, blocking, 10.5)
        assert sorted(p.x for p in out) == list(range(11))
        # 11 points with B=8 -> 2 blocks, at most one of them partially useful
        assert reads == 2

    def test_scan_horizontal_stops_at_boundary(self, disk):
        pts = [PlanarPoint(0, i) for i in range(64)]
        blocking = blk.build_horizontal(disk, pts)
        out, reads = blk.scan_horizontal_downto(disk, blocking, 55.0)
        assert sorted(p.y for p in out) == list(range(55, 64))
        assert reads <= 2

    def test_scan_counts_ios_on_disk(self, disk):
        pts = [PlanarPoint(i, i) for i in range(40)]
        blocking = blk.build_vertical(disk, pts)
        with disk.measure() as m:
            blk.scan_vertical_upto(disk, blocking, 1000)
        assert m.ios == len(blocking)

    def test_free_releases_blocks(self, disk):
        pts = [PlanarPoint(i, i) for i in range(40)]
        blocking = blk.build_vertical(disk, pts)
        used_before = disk.blocks_in_use
        blocking.free(disk)
        assert disk.blocks_in_use == used_before - 5
        assert len(blocking) == 0


class TestCornerStructure:
    @pytest.mark.parametrize("n", [0, 1, 7, 30, 120])
    def test_matches_brute_force(self, n):
        disk = SimulatedDisk(block_size=4)
        pts = make_interval_points(n, seed=n)
        corner = CornerStructure(disk, pts)
        rnd = random.Random(n)
        queries = [rnd.uniform(-50, 1100) for _ in range(30)] + [p.x for p in pts[:5]]
        for q in queries:
            expected = sorted((p.x, p.y) for p in pts if p.x <= q and p.y >= q)
            got, _ = corner.query(q)
            assert sorted((p.x, p.y) for p in got) == expected

    def test_empty_structure_costs_nothing(self, disk):
        corner = CornerStructure(disk, [])
        pts, ios = corner.query(5)
        assert pts == [] and ios == 0

    def test_space_is_linear(self):
        disk = SimulatedDisk(block_size=8)
        pts = make_interval_points(256, seed=1)
        corner = CornerStructure(disk, pts)
        # Lemma 3.1: O(|S|/B) blocks; the explicit corner sets add at most ~2x,
        # the vertical blocking 1x, plus the index block.
        assert corner.block_count() <= 6 * (256 / 8) + 2

    def test_query_io_is_proportional_to_output(self):
        disk = SimulatedDisk(block_size=8)
        pts = make_interval_points(512, seed=2)
        corner = CornerStructure(disk, pts)
        # a query with tiny output should touch only a handful of blocks
        q_small = max(p.y for p in pts) - 1e-9
        _, ios_small = corner.query(q_small)
        assert ios_small <= 6
        # a query with large output may touch O(t/B) blocks but not more
        q_large = sorted(p.x for p in pts)[len(pts) // 2]
        out, ios_large = corner.query(q_large)
        assert sorted((p.x, p.y) for p in out) == sorted(
            (p.x, p.y) for p in pts if p.x <= q_large and p.y >= q_large
        )
        assert ios_large <= 3 * (max(len(out), 1) / 8) + 6

    def test_destroy_frees_blocks(self, disk):
        pts = make_interval_points(64, seed=3)
        before = disk.blocks_in_use
        corner = CornerStructure(disk, pts)
        assert disk.blocks_in_use > before
        corner.destroy()
        assert disk.blocks_in_use == before

    def test_duplicate_coordinates_handled(self, disk):
        pts = [PlanarPoint(5.0, 10.0, payload=i) for i in range(30)]
        corner = CornerStructure(disk, pts)
        got, _ = corner.query(7.0)
        assert len(got) == 30
        got, _ = corner.query(11.0)
        assert got == []
