"""Unit tests for the external B+-tree."""

import random

import pytest

from repro.analysis.complexity import btree_query_bound
from repro.btree import BPlusTree
from repro.io import SimulatedDisk


class TestBasicOperations:
    def test_empty_tree(self, disk):
        tree = BPlusTree(disk)
        assert len(tree) == 0
        assert tree.search(5) == []
        assert tree.range_search(0, 10) == []
        assert tree.min_key() is None and tree.max_key() is None

    def test_single_insert_and_search(self, disk):
        tree = BPlusTree(disk)
        tree.insert(5, "five")
        assert tree.search(5) == ["five"]
        assert tree.contains(5)
        assert not tree.contains(6)

    def test_inserts_preserve_sorted_order(self, disk):
        tree = BPlusTree(disk)
        keys = [9, 1, 7, 3, 5, 8, 2, 6, 4, 0]
        for k in keys:
            tree.insert(k, k * 10)
        assert [k for k, _ in tree.iter_pairs()] == sorted(keys)

    def test_duplicate_keys_all_returned(self, disk):
        tree = BPlusTree(disk)
        for i in range(20):
            tree.insert(7, i)
        assert sorted(tree.search(7)) == list(range(20))

    def test_min_max_keys(self, disk):
        tree = BPlusTree(disk)
        for k in [5, 3, 9, 1, 7]:
            tree.insert(k, None)
        assert tree.min_key() == 1
        assert tree.max_key() == 9

    def test_range_search_inclusive_bounds(self, disk):
        tree = BPlusTree(disk)
        for k in range(10):
            tree.insert(k, k)
        assert [k for k, _ in tree.range_search(3, 6)] == [3, 4, 5, 6]

    def test_range_search_empty_range(self, disk):
        tree = BPlusTree(disk)
        for k in range(10):
            tree.insert(k, k)
        assert tree.range_search(6, 3) == []
        assert tree.range_search(100, 200) == []

    def test_string_keys(self, disk):
        tree = BPlusTree(disk)
        for word in ["pear", "apple", "plum", "fig", "kiwi"]:
            tree.insert(word, word.upper())
        assert tree.search("fig") == ["FIG"]
        assert [k for k, _ in tree.range_search("a", "l")] == ["apple", "fig", "kiwi"]


class TestRandomizedAgainstOracle:
    @pytest.mark.parametrize("block_size", [4, 8, 32])
    def test_range_queries_match_brute_force(self, block_size):
        rnd = random.Random(block_size)
        disk = SimulatedDisk(block_size)
        tree = BPlusTree(disk)
        data = []
        for i in range(600):
            k = rnd.randint(0, 300)
            data.append((k, i))
            tree.insert(k, i)
        for _ in range(40):
            lo = rnd.randint(-10, 310)
            hi = lo + rnd.randint(0, 60)
            expected = sorted((k, v) for k, v in data if lo <= k <= hi)
            assert sorted(tree.range_search(lo, hi)) == expected

    def test_interleaved_insert_delete(self, disk):
        rnd = random.Random(7)
        tree = BPlusTree(disk)
        live = []
        for i in range(500):
            if live and rnd.random() < 0.3:
                k, v = live.pop(rnd.randrange(len(live)))
                assert tree.delete(k, v)
            else:
                k = rnd.randint(0, 100)
                live.append((k, i))
                tree.insert(k, i)
        assert sorted(tree.iter_pairs()) == sorted(live)
        assert len(tree) == len(live)


class TestBulkLoad:
    def test_bulk_load_matches_incremental(self, disk):
        data = [(i % 53, i) for i in range(400)]
        bulk = BPlusTree.bulk_load(SimulatedDisk(8), data)
        incremental = BPlusTree(SimulatedDisk(8))
        for k, v in data:
            incremental.insert(k, v)
        assert sorted(bulk.iter_pairs()) == sorted(incremental.iter_pairs())

    def test_bulk_load_empty(self, disk):
        tree = BPlusTree.bulk_load(disk, [])
        assert len(tree) == 0
        assert tree.range_search(0, 10) == []

    def test_bulk_load_unsorted_input(self, disk):
        tree = BPlusTree.bulk_load(disk, [(3, "c"), (1, "a"), (2, "b")])
        assert [k for k, _ in tree.iter_pairs()] == [1, 2, 3]

    def test_bulk_load_packs_leaves(self):
        disk = SimulatedDisk(block_size=10)
        n = 1000
        tree = BPlusTree.bulk_load(disk, ((i, i) for i in range(n)))
        # optimal packing: n/B leaves plus a small number of internal nodes
        assert tree.block_count() <= (n // 10) * 1.3 + 5


class TestDeletion:
    def test_delete_missing_returns_false(self, disk):
        tree = BPlusTree(disk)
        tree.insert(1, "a")
        assert not tree.delete(2)
        assert not tree.delete(1, "wrong-value")

    def test_delete_specific_value_among_duplicates(self, disk):
        tree = BPlusTree(disk)
        for i in range(5):
            tree.insert(9, i)
        assert tree.delete(9, 3)
        assert sorted(tree.search(9)) == [0, 1, 2, 4]

    def test_delete_reduces_size(self, disk):
        tree = BPlusTree(disk)
        for i in range(10):
            tree.insert(i, i)
        tree.delete(4)
        assert len(tree) == 9


class TestIOBehaviour:
    """The paper's reference bounds (Section 1.1)."""

    def test_space_is_linear_in_n_over_b(self):
        for n in (500, 2000, 8000):
            disk = SimulatedDisk(block_size=16)
            tree = BPlusTree.bulk_load(disk, ((i, i) for i in range(n)))
            assert tree.block_count() <= 3 * (n / 16) + 5

    def test_point_search_is_logarithmic(self):
        n = 20_000
        disk = SimulatedDisk(block_size=32)
        tree = BPlusTree.bulk_load(disk, ((i, i) for i in range(n)))
        with disk.measure() as m:
            tree.search(n // 3)
        assert m.ios <= 4 * btree_query_bound(n, 32, 1)

    def test_range_search_output_term_scales_with_t_over_b(self):
        n = 20_000
        B = 32
        disk = SimulatedDisk(block_size=B)
        tree = BPlusTree.bulk_load(disk, ((i, i) for i in range(n)))
        costs = {}
        for t in (32, 320, 3200):
            with disk.measure() as m:
                out = tree.range_search(0, t - 1)
            assert len(out) == t
            costs[t] = m.ios
        # cost grows roughly linearly in t/B once the logarithmic term is paid
        assert costs[3200] - costs[320] >= 2 * (costs[320] - costs[32])
        assert costs[3200] <= 4 * btree_query_bound(n, B, 3200)

    def test_insert_is_logarithmic(self):
        disk = SimulatedDisk(block_size=32)
        tree = BPlusTree.bulk_load(disk, ((i, i) for i in range(10_000)))
        with disk.measure() as m:
            tree.insert(5000.5, "new")
        assert m.ios <= 6 * btree_query_bound(10_000, 32, 1)
