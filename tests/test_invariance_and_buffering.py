"""Cross-cutting invariance properties.

* Query answers never depend on insertion order, on whether a structure was
  bulk-loaded or built incrementally, or on whether a buffer pool sits
  between the structure and the disk — only I/O counts may change.
* A warm buffer pool can only reduce the I/O count, never the answer.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.btree import BPlusTree
from repro.core import ExternalIntervalManager
from repro.interval import Interval
from repro.io import BufferManager, SimulatedDisk
from repro.metablock import AugmentedMetablockTree, StaticMetablockTree
from repro.metablock.geometry import PlanarPoint

from tests.conftest import make_interval_points, make_intervals

SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

small_float = st.floats(min_value=0, max_value=1000, allow_nan=False, allow_infinity=False)


class TestInsertionOrderInvariance:
    @settings(**SETTINGS)
    @given(
        raw=st.lists(st.tuples(small_float, small_float), max_size=120),
        seed=st.integers(min_value=0, max_value=10_000),
        q=st.floats(min_value=-50, max_value=2100, allow_nan=False),
    )
    def test_dynamic_metablock_tree_order_invariant(self, raw, seed, q):
        pts = [PlanarPoint(lo, lo + abs(w), payload=i) for i, (lo, w) in enumerate(raw)]
        shuffled = list(pts)
        random.Random(seed).shuffle(shuffled)

        tree_a = AugmentedMetablockTree(SimulatedDisk(4))
        tree_a.insert_many(pts)
        tree_b = AugmentedMetablockTree(SimulatedDisk(4))
        tree_b.insert_many(shuffled)

        answer_a = sorted((p.x, p.y) for p in tree_a.diagonal_query(q))
        answer_b = sorted((p.x, p.y) for p in tree_b.diagonal_query(q))
        assert answer_a == answer_b

    @settings(**SETTINGS)
    @given(
        keys=st.lists(st.integers(min_value=0, max_value=200), max_size=150),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_btree_bulk_vs_incremental_vs_shuffled(self, keys, seed):
        pairs = [(k, i) for i, k in enumerate(keys)]
        shuffled = list(pairs)
        random.Random(seed).shuffle(shuffled)

        bulk = BPlusTree.bulk_load(SimulatedDisk(8), pairs)
        incremental = BPlusTree(SimulatedDisk(8))
        for k, v in shuffled:
            incremental.insert(k, v)
        assert sorted(bulk.iter_pairs()) == sorted(incremental.iter_pairs())

    def test_static_vs_dynamic_interval_manager_same_answers(self):
        intervals = make_intervals(400, seed=31)
        static = ExternalIntervalManager(SimulatedDisk(8), intervals, dynamic=False)
        dynamic = ExternalIntervalManager(SimulatedDisk(8), intervals[:200], dynamic=True)
        for iv in intervals[200:]:
            dynamic.insert(iv)
        rnd = random.Random(31)
        for _ in range(30):
            q = rnd.uniform(-20, 1100)
            assert sorted((iv.low, iv.high) for iv in static.stabbing_query(q)) == sorted(
                (iv.low, iv.high) for iv in dynamic.stabbing_query(q)
            )


class TestBufferPoolTransparency:
    def test_metablock_answers_identical_through_buffer_pool(self):
        points = make_interval_points(600, seed=32)
        cold_disk = SimulatedDisk(8)
        cold_tree = StaticMetablockTree(cold_disk, points)
        warm_disk = SimulatedDisk(8)
        warm_tree = StaticMetablockTree(BufferManager(warm_disk, capacity_pages=128), points)
        rnd = random.Random(32)
        for _ in range(20):
            q = rnd.uniform(-20, 1200)
            a = sorted((p.x, p.y) for p in cold_tree.diagonal_query(q))
            b = sorted((p.x, p.y) for p in warm_tree.diagonal_query(q))
            assert a == b

    def test_warm_cache_reduces_io_not_answers(self):
        points = make_interval_points(1_000, seed=33)
        queries = [q * 37.0 % 1000 for q in range(15)]

        cold_disk = SimulatedDisk(8)
        cold_tree = StaticMetablockTree(cold_disk, points)
        with cold_disk.measure() as cold:
            cold_answers = [len(cold_tree.diagonal_query(q)) for q in queries]

        warm_disk = SimulatedDisk(8)
        pool = BufferManager(warm_disk, capacity_pages=256)
        warm_tree = StaticMetablockTree(pool, points)
        warm_tree.diagonal_query(queries[0])  # prime the cache
        with warm_disk.measure() as warm:
            warm_answers = [len(warm_tree.diagonal_query(q)) for q in queries]

        assert cold_answers == warm_answers
        assert warm.ios <= cold.ios

    def test_interval_manager_through_buffer_pool(self):
        intervals = make_intervals(500, seed=34)
        disk = SimulatedDisk(16)
        manager = ExternalIntervalManager(BufferManager(disk, capacity_pages=64), intervals)
        rnd = random.Random(34)
        for _ in range(20):
            q = rnd.uniform(-20, 1100)
            expected = sorted((iv.low, iv.high) for iv in intervals if iv.contains(q))
            assert sorted((iv.low, iv.high) for iv in manager.stabbing_query(q)) == expected


class TestRepeatedQueriesAreStable:
    def test_querying_never_mutates_the_structure(self):
        points = make_interval_points(500, seed=35)
        disk = SimulatedDisk(8)
        tree = AugmentedMetablockTree(disk, points)
        blocks_before = disk.blocks_in_use
        first = sorted((p.x, p.y) for p in tree.diagonal_query(400.0))
        for _ in range(5):
            again = sorted((p.x, p.y) for p in tree.diagonal_query(400.0))
            assert again == first
        assert disk.blocks_in_use == blocks_before

    def test_mixed_insert_query_interleaving(self):
        disk = SimulatedDisk(4)
        tree = AugmentedMetablockTree(disk)
        live = []
        rnd = random.Random(36)
        for i in range(400):
            p = PlanarPoint(rnd.uniform(0, 500), rnd.uniform(0, 500) + 500, payload=i)
            tree.insert(p)
            live.append(p)
            if i % 50 == 0:
                q = rnd.uniform(0, 1000)
                expected = sorted((pp.x, pp.y) for pp in live if pp.x <= q and pp.y >= q)
                assert sorted((pp.x, pp.y) for pp in tree.diagonal_query(q)) == expected
