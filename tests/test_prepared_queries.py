"""Prepared queries, the plan cache, and the tightened bound accounting.

Acceptance criteria covered here:

* a cached ``PreparedQuery`` returns answers **identical** to ad-hoc
  planning, before and after every invalidating write event — attach /
  detach of physical indexes, ``bulk_load``, delete-triggered threshold
  rebuilds, ``drop_index`` — on both storage backends;
* **no plan is served from cache across an invalidating event**: the
  generation tests assert the planner re-plans (``last_from_cache`` /
  ``cache_hits``) rather than replaying a stale strategy;
* scan-fallback plans carry a **finite** bound derived from the record
  count and the page size (the BOUND_SLACK check is no longer vacuous
  when scan is the only candidate);
* union plans evaluate **each subplan's bound at its own raw output
  size** instead of charging every branch for the whole union;
* ``OrderBy`` sorts once per executed result with documented tie order
  (stable: ties keep the access path's emission order).
"""

import pytest

from repro import (
    EndpointRange,
    Engine,
    FileDisk,
    Interval,
    Param,
    PreparedQuery,
    Range,
    SimulatedDisk,
    Stab,
    bind_params,
    unbound_params,
)
from repro.engine.planner import BOUND_SLACK, BOUND_SLACK_PAGES, PLAN_CACHE_SIZE
from repro.engine.queries import ClassRange, Limit, Not, OrderBy

from tests.conftest import make_intervals

B = 8


def _backend(kind, tmp_path):
    if kind == "file":
        return FileDisk(str(tmp_path / "pages.bin"), block_size=B)
    return SimulatedDisk(block_size=B)


def _uids(records):
    return sorted(r.uid for r in records)


# --------------------------------------------------------------------------- #
# structural signatures
# --------------------------------------------------------------------------- #
class TestSignatures:
    def test_operand_values_are_factored_out(self):
        assert Stab(3.0).signature() == Stab(7.0).signature()
        assert Range(0, 5).signature() == Range(100, 900).signature()
        assert (
            EndpointRange("low", 1, 2).signature()
            == EndpointRange("low", 8, 9).signature()
        )

    def test_index_relevant_operands_stay_in(self):
        assert (
            EndpointRange("low", 1, 2).signature()
            != EndpointRange("high", 1, 2).signature()
        )
        assert ClassRange("A", 0, 1).signature() != ClassRange("B", 0, 1).signature()
        assert (
            Range(0, 1).signature()
            != Range(0, 1, min_inclusive=False).signature()
        )

    def test_composition_is_structural(self):
        a = Stab(1.0) & EndpointRange("low", 0, 1)
        b = Stab(9.0) & EndpointRange("low", 5, 6)
        assert a.signature() == b.signature()
        assert a.signature() != (Stab(1.0) | EndpointRange("low", 0, 1)).signature()
        assert Not(Stab(1.0)).signature() == Not(Stab(2.0)).signature()
        assert Not(Stab(1.0)).signature() != Stab(1.0).signature()

    def test_modifiers_share_the_base_plan_signature(self):
        assert Stab(1.0).limit(3).signature() == Stab(2.0).limit(99).signature()
        assert (
            Stab(1.0).order_by("low").signature()
            == Stab(2.0).order_by("high").signature()
        )
        assert Stab(1.0).limit(3).signature() != Stab(1.0).signature()

    def test_params_do_not_change_the_signature(self):
        assert Stab(Param("x")).signature() == Stab(42.0).signature()
        q = Stab(Param("x")) & EndpointRange("low", Param("a"), Param("b"))
        assert q.signature() == (Stab(1.0) & EndpointRange("low", 2.0, 3.0)).signature()


# --------------------------------------------------------------------------- #
# parameter binding
# --------------------------------------------------------------------------- #
class TestBindParams:
    def test_binds_nested_params(self):
        q = Stab(Param("x")) & EndpointRange("low", Param("lo"), Param("hi"))
        bound = bind_params(q, {"x": 5.0, "lo": 1.0, "hi": 2.0})
        assert bound == (Stab(5.0) & EndpointRange("low", 1.0, 2.0))

    def test_identity_when_nothing_to_bind(self):
        q = Stab(5.0) & Range(0, 9)
        assert bind_params(q, {}) is q

    def test_missing_and_unknown_params_raise(self):
        q = Stab(Param("x"))
        with pytest.raises(KeyError, match="unbound"):
            bind_params(q, {})
        with pytest.raises(KeyError, match="unknown"):
            bind_params(q, {"x": 1.0, "typo": 2.0})

    def test_partial_mode_leaves_unknowns_in_place(self):
        q = Stab(Param("x")) & Stab(Param("y"))
        half = bind_params(q, {"x": 1.0}, partial=True)
        assert unbound_params(half) == {"y"}

    def test_unbound_params_collects_names(self):
        q = (Stab(Param("x")) | Range(Param("lo"), Param("hi"))).limit(3)
        assert unbound_params(q) == {"x", "lo", "hi"}
        assert unbound_params(Stab(1.0)) == set()

    def test_binding_inside_modifiers(self):
        q = Limit(OrderBy(Stab(Param("x")), "low"), 2)
        bound = bind_params(q, {"x": 4.0})
        assert bound == Limit(OrderBy(Stab(4.0), "low"), 2)


# --------------------------------------------------------------------------- #
# prepared == ad-hoc, across shapes and backends
# --------------------------------------------------------------------------- #
QUERY_CASES = [
    (Stab(Param("x")), {"x": 321.5}),
    (EndpointRange("low", Param("lo"), Param("hi")), {"lo": 100.0, "hi": 180.0}),
    (Stab(Param("x")) & EndpointRange("low", Param("lo"), Param("hi")),
     {"x": 500.0, "lo": 420.0, "hi": 500.0}),
    (Stab(Param("x")) | Stab(Param("y")), {"x": 100.0, "y": 900.0}),
    (Range(Param("lo"), Param("hi")) & ~Stab(Param("x")),
     {"lo": 200.0, "hi": 260.0, "x": 230.0}),
    (Not(Stab(Param("x"))), {"x": 500.0}),
    (Stab(Param("x")).order_by("low").limit(7), {"x": 321.5}),
]


@pytest.mark.parametrize("backend_kind", ["memory", "file"])
@pytest.mark.parametrize("q,params", QUERY_CASES)
def test_prepared_matches_adhoc_and_oracle(tmp_path, backend_kind, q, params):
    engine = Engine(_backend(backend_kind, tmp_path))
    coll = engine.create_collection("c", make_intervals(300, seed=3))
    prepared = engine.prepare("c", q)
    assert isinstance(prepared, PreparedQuery)
    concrete = bind_params(q, params)
    adhoc = coll.planner.execute(coll.planner.plan(concrete, use_cache=False))
    got = prepared.run(**params)
    assert _uids(got.all()) == _uids(adhoc.all())
    assert _uids(got.all()) == _uids(coll.oracle(concrete))
    # identical access path => identical I/O accounting
    fresh = engine.prepare("c", q).run(**params)
    assert _uids(fresh.all()) == _uids(got.all())


def test_prepared_on_plain_engine_index():
    engine = Engine(SimulatedDisk(B))
    engine.create_interval_index("ivs", make_intervals(200, seed=4))
    prepared = engine.prepare("ivs", Stab(Param("x")))
    expect = engine.query("ivs", Stab(333.0)).all()
    assert _uids(prepared.run(x=333.0).all()) == _uids(expect)
    # repeated runs keep serving from cache
    assert _uids(prepared.run(x=333.0).all()) == _uids(expect)
    assert prepared.last_from_cache is True


def test_prepared_param_validation():
    engine = Engine(SimulatedDisk(B))
    engine.create_collection("c", make_intervals(50, seed=5))
    prepared = engine.prepare("c", Stab(Param("x")))
    assert prepared.params == ["x"]
    with pytest.raises(KeyError, match="missing"):
        prepared.run()
    with pytest.raises(KeyError, match="unknown"):
        prepared.run(x=1.0, y=2.0)


def test_prepared_plan_equals_explain():
    engine = Engine(SimulatedDisk(B))
    engine.create_collection("c", make_intervals(200, seed=6))
    q = Stab(Param("x")) & EndpointRange("low", Param("lo"), Param("hi"))
    prepared = engine.prepare("c", q)
    plan = prepared.plan(x=500.0, lo=420.0, hi=500.0)
    concrete = Stab(500.0) & EndpointRange("low", 420.0, 500.0)
    assert plan == engine.explain("c", concrete)
    result = prepared.run(x=500.0, lo=420.0, hi=500.0)
    assert result.plan == plan


# --------------------------------------------------------------------------- #
# invalidation: no plan served from cache across a write event
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("backend_kind", ["memory", "file"])
def test_bulk_load_invalidates_prepared_plans(tmp_path, backend_kind):
    engine = Engine(_backend(backend_kind, tmp_path))
    coll = engine.create_collection("c", make_intervals(150, seed=7))
    prepared = engine.prepare("c", Stab(Param("x")))
    prepared.run(x=400.0).all()
    assert prepared.last_from_cache is True

    coll.bulk_load(make_intervals(150, seed=8))
    got = prepared.run(x=400.0)
    assert prepared.last_from_cache is False  # the generation bump fired
    assert _uids(got.all()) == _uids(coll.oracle(Stab(400.0)))


def test_bulk_load_via_engine_invalidates_plain_index_planner():
    engine = Engine(SimulatedDisk(B))
    engine.create_interval_index("ivs", make_intervals(100, seed=9))
    prepared = engine.prepare("ivs", Stab(Param("x")))
    prepared.run(x=500.0).all()
    assert prepared.last_from_cache is True
    engine.bulk_load("ivs", make_intervals(100, seed=10))
    got = prepared.run(x=500.0)
    assert prepared.last_from_cache is False
    oracle = [iv for iv in engine["ivs"].intervals() if Stab(500.0).matches(iv)]
    assert _uids(got.all()) == _uids(oracle)


def test_attach_and_detach_invalidate(disk):
    engine = Engine(disk)
    coll = engine.create_collection("c", make_intervals(120, seed=11))
    prepared = engine.prepare("c", EndpointRange("high", Param("lo"), Param("hi")))
    first = prepared.run(lo=100.0, hi=300.0).all()
    assert prepared.last_from_cache is True
    assert _uids(first) == _uids(coll.oracle(EndpointRange("high", 100.0, 300.0)))

    # detaching the serving index forces a re-plan onto another access path
    detached = coll.detach("high-endpoints")
    assert detached is not None
    got = prepared.run(lo=100.0, hi=300.0)
    assert prepared.last_from_cache is False
    assert _uids(got.all()) == _uids(coll.oracle(EndpointRange("high", 100.0, 300.0)))
    assert got.plan.index != "high-endpoints"

    # re-attaching (fresh name) invalidates again
    from repro.btree import BPlusTree

    records = coll.records()
    tree = BPlusTree.bulk_load(disk, ((iv.high, iv) for iv in records), name="high2")

    def translate(q):
        if isinstance(q, EndpointRange) and q.side == "high":
            return Range(q.low, q.high, min_inclusive=q.min_inclusive,
                         max_inclusive=q.max_inclusive)
        return None

    coll.attach("high2", tree, translate=translate,
                run=lambda pq: (iv for _, iv in tree.query(pq)))
    got = prepared.run(lo=100.0, hi=300.0)
    assert prepared.last_from_cache is False
    assert got.plan.index == "high2"
    assert _uids(got.all()) == _uids(coll.oracle(EndpointRange("high", 100.0, 300.0)))

    with pytest.raises(KeyError):
        coll.detach("nope")


def test_delete_triggered_rebuild_invalidates(disk):
    engine = Engine(disk)
    items = make_intervals(120, seed=12)
    coll = engine.create_collection("c", items, dynamic=True)
    prepared = engine.prepare("c", Stab(Param("x")))
    prepared.run(x=500.0).all()
    assert prepared.last_from_cache is True

    manager = coll.planner.accessors[0].index
    generation = manager.generation
    # delete until the interval manager's tombstone threshold rebuilds it
    for iv in items:
        coll.delete(iv)
        if manager.generation != generation:
            break
    assert manager.generation != generation, "no rebuild fired; test is vacuous"
    got = prepared.run(x=500.0)
    assert prepared.last_from_cache is False
    assert _uids(got.all()) == _uids(coll.oracle(Stab(500.0)))


def test_class_index_rebuild_invalidates_prepared(disk):
    """Delete-triggered global rebuilds of a class index bump its generation,
    so cached strategies over it are never served across the rebuild."""
    from repro import ClassHierarchy, ClassObject

    hierarchy = ClassHierarchy()
    hierarchy.add_class("root")
    hierarchy.add_class("leaf", "root")
    objects = [
        ClassObject(float(i), "leaf" if i % 2 else "root", payload=i)
        for i in range(80)
    ]
    engine = Engine(disk)
    indexer = engine.create_class_index("cls", hierarchy, objects, method="combined")
    prepared = engine.prepare(
        "cls", ClassRange("root", Param("lo"), Param("hi"))
    )
    prepared.run(lo=0.0, hi=100.0).all()
    assert prepared.last_from_cache is True

    generation = indexer.generation
    for obj in objects:
        engine.delete("cls", obj)
        if indexer.generation != generation:
            break
    assert indexer.generation != generation, "no rebuild fired; test is vacuous"
    got = prepared.run(lo=0.0, hi=100.0)
    assert prepared.last_from_cache is False
    live = {o.uid for o in indexer.objects()}
    want = [o for o in objects if o.uid in live and 0.0 <= o.key <= 100.0]
    assert _uids(got.all()) == _uids(want)


def test_constraint_index_surfaces_manager_generation(disk):
    from repro import Constraint, GeneralizedRelation, GeneralizedTuple, var

    x = var("x")
    tuples = [
        GeneralizedTuple(
            [Constraint(x, ">=", float(i)), Constraint(x, "<=", float(i) + 5.0)],
            name=i,
        )
        for i in range(40)
    ]
    relation = GeneralizedRelation(["x"], tuples, name="r")
    engine = Engine(disk)
    index = engine.create_constraint_index("r", relation, "x")
    generation = index.generation
    index.manager._rebuild_stabbing()
    assert index.generation == generation + 1  # delegated, not hidden


def test_generation_key_blocks_stale_cache_hits(disk):
    """The planner itself never serves a cached plan across an invalidation."""
    engine = Engine(disk)
    coll = engine.create_collection("c", make_intervals(100, seed=13))
    planner = coll.planner
    planner.plan(Stab(1.0))
    hits = planner.cache_hits
    planner.plan(Stab(2.0))
    assert planner.cache_hits == hits + 1  # warm: same signature

    coll.bulk_load(make_intervals(10, seed=14))
    misses = planner.cache_misses
    planner.plan(Stab(3.0))  # must re-plan, not hit
    assert planner.cache_hits == hits + 1
    assert planner.cache_misses == misses + 1


def test_drop_index_fails_prepared_loudly(disk):
    engine = Engine(disk)
    engine.create_interval_index("ivs", make_intervals(60, seed=15))
    prepared = engine.prepare("ivs", Stab(Param("x")))
    prepared.run(x=500.0).all()
    assert prepared.last_from_cache is True
    engine.drop_index("ivs")
    # a dropped index must raise the engine's descriptive KeyError, never
    # silently answer from freed blocks
    with pytest.raises(KeyError, match="ivs"):
        prepared.run(x=500.0)


def test_drop_and_recreate_same_name_fails_prepared_loudly(disk):
    engine = Engine(disk)
    items = make_intervals(60, seed=15)
    engine.create_interval_index("ivs", items)
    prepared = engine.prepare("ivs", Stab(Param("x")))
    before = _uids(prepared.run(x=500.0).all())
    assert before  # non-empty, so a silent empty answer would be wrong
    engine.drop_index("ivs")
    engine.create_interval_index("ivs", make_intervals(60, seed=15))
    # same name, different index object: the prepared handle is stale and
    # says so instead of returning wrong results
    with pytest.raises(RuntimeError, match="re-created"):
        prepared.run(x=500.0)
    # a freshly prepared handle works against the new index
    fresh = engine.prepare("ivs", Stab(Param("x")))
    got = fresh.run(x=500.0).all()
    assert _uids(got) == _uids(
        [iv for iv in engine["ivs"].intervals() if Stab(500.0).matches(iv)]
    )


def test_prepared_bounds_track_incremental_growth(disk):
    """Plain inserts never bump the generation, but the cached strategy is
    re-costed per run, so predicted bounds follow the live structure size."""
    engine = Engine(disk)
    coll = engine.create_collection("c", make_intervals(50, seed=24), dynamic=True)
    prepared = engine.prepare("c", Stab(Param("x")))
    small = prepared.plan(x=500.0).bound.pages
    for iv in make_intervals(1500, seed=25):
        coll.insert(iv)
    grown = prepared.plan(x=500.0)
    assert prepared.last_from_cache is True  # no invalidating event fired
    assert grown.bound.pages > small  # log_B n grew with n
    assert grown == engine.explain("c", Stab(500.0))  # identical to fresh


def test_plan_cache_is_size_bounded(disk):
    engine = Engine(disk)
    coll = engine.create_collection("c", make_intervals(50, seed=16))
    planner = coll.planner
    # distinct signatures: vary the And arity so each query has a new shape
    q = Stab(1.0)
    for i in range(PLAN_CACHE_SIZE + 10):
        planner.plan(q)
        q = q & Stab(float(i))
    assert len(planner._cache) <= PLAN_CACHE_SIZE


# --------------------------------------------------------------------------- #
# bound accounting bugfixes
# --------------------------------------------------------------------------- #
def test_scan_fallback_bound_is_finite_and_meaningful(disk):
    engine = Engine(disk)
    n = 200
    engine.create_collection("c", make_intervals(n, seed=17))
    plan = engine.explain("c", ~Stab(500.0))
    assert plan.kind == "scan"
    assert plan.bound.pages != float("inf")
    assert plan.predicted() != float("inf")
    # a full scan reads at least n/B blocks and the bound says so
    assert plan.bound.pages >= n / disk.block_size
    result = engine.query("c", ~Stab(500.0))
    result.all()
    assert result.bound is not None and result.bound != float("inf")
    # the BOUND_SLACK acceptance check is no longer vacuous on scan plans
    assert result.ios <= BOUND_SLACK * result.bound + BOUND_SLACK_PAGES


def test_scan_bound_derived_when_accessor_has_no_scan_bound(disk):
    """An accessor advertising ``scan`` but no ``scan_bound`` still gets a
    finite bound derived from its live record count and the page size."""
    engine = Engine(disk)
    coll = engine.create_collection("c", make_intervals(64, seed=18))
    planner = coll.planner
    low = next(acc for acc in planner.accessors if acc.name == "low-endpoints")
    low.scan_bound = None  # simulate a custom attach without a bound
    plan = planner.plan(~Stab(1.0), use_cache=False)
    assert plan.kind == "scan"
    assert plan.bound.pages != float("inf")
    assert "full scan" in plan.bound.formula


def test_union_bound_charges_each_subplan_its_own_output(disk):
    engine = Engine(disk)
    intervals = [Interval(0.0, 1000.0, payload=i) for i in range(64)]
    intervals += [Interval(2000.0 + i, 2000.5 + i, payload=100 + i) for i in range(4)]
    coll = engine.create_collection("c", intervals)
    # branch 1 returns every telescope interval, branch 2 almost nothing
    q = Stab(500.0) | Stab(3000.0)
    result = coll.query(q)
    hits = result.all()
    t = len(hits)
    assert t == 64
    plan = result.plan
    assert plan.kind == "union"
    # the OLD accounting evaluated the summed formula at the combined raw
    # size, charging branch 2 for branch 1's t/B term; the fixed bound is
    # strictly tighter whenever outputs are asymmetric...
    old_style = plan.bound(t)
    assert result.bound < old_style
    # ...but never tighter than each branch at zero output
    assert result.bound >= plan.bound(0)
    # and observed I/O stays within the documented slack of the new bound
    assert result.ios <= BOUND_SLACK * result.bound + BOUND_SLACK_PAGES


def test_orderby_sorts_once_with_stable_ties(disk):
    engine = Engine(disk)
    intervals = [Interval(5.0, 10.0 + i, payload=i) for i in range(40)]
    coll = engine.create_collection("c", intervals)
    result = coll.query(Range(6.0, 7.0).order_by("low"))
    first = [iv.uid for iv in result.all()]
    # replaying an exhausted result serves the cached order, identical ties
    second = [iv.uid for iv in result]
    assert first == second
    # ties (equal ``low``) keep the access path's emission order (stable sort)
    access = coll.query(Range(6.0, 7.0)).all()
    assert first == [iv.uid for iv in access]


# --------------------------------------------------------------------------- #
# bulk accounting on the prepared fast path
# --------------------------------------------------------------------------- #
def test_prepared_bulk_accounting_matches_per_record(disk):
    engine = Engine(disk)
    engine.create_collection("c", make_intervals(300, seed=19))
    prepared = engine.prepare("c", Stab(Param("x")))
    fine = engine.query("c", Stab(444.0))
    fine.all()
    fast = prepared.run(x=444.0)
    fast.all()
    assert fast.ios == fine.ios
    assert _uids(fast.all()) == _uids(fine.all())


def test_prepared_partial_consumption_reports_ios(disk):
    """``first()``/early-break on a bulk-accounted result still reports the
    I/Os performed so far (the open bracket settles on ``ios`` reads)."""
    engine = Engine(disk)
    engine.create_collection("c", make_intervals(300, seed=23))
    prepared = engine.prepare("c", Stab(Param("x")))
    result = prepared.run(x=500.0)
    assert result.first() is not None
    partial = result.ios
    assert partial > 0
    result.all()
    full = engine.query("c", Stab(500.0))
    full.all()
    assert result.ios == full.ios


def test_prepare_unplannable_query_raises_at_prepare_time(disk):
    engine = Engine(disk)
    engine.create_key_index("kv", [(1, "a")])
    # a plain B+-tree has no scan fallback, so a bare Not is unservable;
    # without placeholders the error belongs at the prepare call site
    with pytest.raises(TypeError):
        engine.prepare("kv", Not(Stab(1)))
    # with placeholders the failure cannot be told apart from a
    # placeholder-rejecting index, so it surfaces on run() instead
    prepared = engine.prepare("kv", Not(Stab(Param("x"))))
    with pytest.raises(TypeError):
        prepared.run(x=1)


def test_prepared_result_replays_cache_without_new_io(disk):
    engine = Engine(disk)
    engine.create_collection("c", make_intervals(120, seed=20))
    prepared = engine.prepare("c", Stab(Param("x")))
    result = prepared.run(x=300.0)
    first = result.all()
    ios = result.ios
    assert result.all() == first
    assert result.ios == ios


@pytest.mark.parametrize("backend_kind", ["memory", "file"])
def test_prepared_survives_many_rounds_of_writes(tmp_path, backend_kind):
    """Oracle soak: cached answers stay identical to brute force while the
    collection churns through inserts, deletes and bulk loads."""
    import random

    rnd = random.Random(21)
    engine = Engine(_backend(backend_kind, tmp_path))
    items = make_intervals(80, seed=22)
    coll = engine.create_collection("c", items, dynamic=True)
    prepared = engine.prepare("c", Stab(Param("x")))
    live = list(items)
    for round_no in range(6):
        x = rnd.uniform(0, 1000)
        got = prepared.run(x=x)
        assert _uids(got.all()) == _uids(coll.oracle(Stab(x)))
        if round_no % 3 == 0:
            coll.bulk_load(make_intervals(20, seed=100 + round_no))
        elif live:
            for _ in range(min(10, len(live))):
                coll.delete(live.pop(rnd.randrange(len(live))))
