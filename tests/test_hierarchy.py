"""Tests for the class hierarchy model and the label-class procedure (Prop. 2.5)."""

from fractions import Fraction

import pytest

from repro.classes.hierarchy import ClassHierarchy, ClassObject, people_hierarchy
from repro.workloads import balanced_hierarchy, chain_hierarchy, random_hierarchy, star_hierarchy


class TestStructure:
    def test_add_and_lookup(self):
        h = ClassHierarchy()
        h.add_class("A")
        h.add_class("B", "A")
        assert "A" in h and "B" in h and "C" not in h
        assert h.parent("B") == "A"
        assert h.children("A") == ["B"]
        assert h.roots() == ["A"]
        assert len(h) == 2

    def test_duplicate_class_rejected(self):
        h = ClassHierarchy()
        h.add_class("A")
        with pytest.raises(ValueError):
            h.add_class("A")

    def test_unknown_parent_rejected(self):
        h = ClassHierarchy()
        with pytest.raises(KeyError):
            h.add_class("B", "missing")

    def test_people_hierarchy_shape(self):
        h = people_hierarchy()
        assert set(h.classes()) == {"Person", "Professor", "Student", "AssistantProfessor"}
        assert h.parent("AssistantProfessor") == "Professor"
        assert h.is_leaf("Student")
        assert not h.is_leaf("Person")
        assert h.ancestors("AssistantProfessor") == ["Professor", "Person"]
        assert set(h.descendants("Professor")) == {"Professor", "AssistantProfessor"}
        assert h.depth("AssistantProfessor") == 2
        assert h.max_depth() == 2
        assert h.subtree_size("Person") == 4

    def test_forest_with_multiple_roots(self):
        h = ClassHierarchy()
        h.add_class("X")
        h.add_class("Y")
        h.add_class("X1", "X")
        assert set(h.roots()) == {"X", "Y"}
        h.validate()

    def test_from_edges(self):
        h = ClassHierarchy.from_edges([("A", None), ("B", "A"), ("C", "B")])
        assert h.descendants("A") == ["A", "B", "C"] or set(h.descendants("A")) == {"A", "B", "C"}

    def test_topological_iteration_parents_first(self):
        h = random_hierarchy(40, seed=1)
        seen = set()
        for cls in h.iter_topological():
            parent = h.parent(cls)
            assert parent is None or parent in seen
            seen.add(cls)
        assert len(seen) == 40

    def test_validate_passes_on_generators(self):
        for h in (
            random_hierarchy(30, seed=2),
            balanced_hierarchy(3, 3),
            chain_hierarchy(10),
            star_hierarchy(15),
        ):
            h.validate()


class TestLabelClass:
    def test_paper_example_values(self):
        """Fig. 5: Person=[0,1), Student=1/3, Professor=2/3, Asst.Prof=5/6."""
        h = people_hierarchy()
        labels = h.labels()
        assert labels["Person"] == (Fraction(0), Fraction(1))
        child_lows = sorted(labels[c][0] for c in ("Professor", "Student"))
        assert child_lows == [Fraction(1, 3), Fraction(2, 3)]
        prof_low, prof_high = labels["Professor"]
        asst_low, asst_high = labels["AssistantProfessor"]
        assert prof_low <= asst_low and asst_high <= prof_high
        assert asst_high - asst_low == (prof_high - prof_low) / 2

    def test_descendant_ranges_are_nested(self):
        h = random_hierarchy(60, seed=3)
        labels = h.labels()
        for cls in h.classes():
            lo, hi = labels[cls]
            for desc in h.descendants(cls):
                dlo, dhi = labels[desc]
                assert lo <= dlo and dhi <= hi

    def test_non_descendant_values_fall_outside_range(self):
        h = random_hierarchy(60, seed=4)
        labels = h.labels()
        for cls in h.classes():
            lo, hi = labels[cls]
            descendants = set(h.descendants(cls))
            for other in h.classes():
                if other not in descendants:
                    value = labels[other][0]
                    assert not (lo <= value < hi)

    def test_class_values_are_distinct(self):
        h = random_hierarchy(100, seed=5)
        values = [h.class_value(c) for c in h.classes()]
        assert len(set(values)) == len(values)

    def test_values_are_exact_fractions(self):
        h = chain_hierarchy(50)
        for cls in h.classes():
            assert isinstance(h.class_value(cls), Fraction)

    def test_deep_chain_does_not_collapse(self):
        """Float labels would collide beyond ~50 levels; Fractions must not."""
        h = chain_hierarchy(200)
        values = [h.class_value(c) for c in h.classes()]
        assert len(set(values)) == 200

    def test_forest_roots_split_unit_interval(self):
        h = ClassHierarchy()
        h.add_class("A")
        h.add_class("B")
        h.add_class("C")
        labels = h.labels()
        assert labels["A"] == (Fraction(0), Fraction(1, 3))
        assert labels["B"] == (Fraction(1, 3), Fraction(2, 3))
        assert labels["C"] == (Fraction(2, 3), Fraction(1))

    def test_classes_by_value_consistent_with_labels(self):
        h = random_hierarchy(30, seed=6)
        ordered = h.classes_by_value()
        values = [h.class_value(c) for c in ordered]
        assert values == sorted(values)

    def test_labels_recomputed_after_adding_class(self):
        h = ClassHierarchy()
        h.add_class("A")
        first = h.labels()
        h.add_class("B", "A")
        second = h.labels()
        assert "B" in second and "B" not in first


class TestClassObject:
    def test_equality_ignores_payload(self):
        assert ClassObject(5, "A", payload=1) == ClassObject(5, "A", payload=2)

    def test_fields(self):
        obj = ClassObject(42.0, "Student", payload={"name": "ada"})
        assert obj.key == 42.0
        assert obj.class_name == "Student"
        assert obj.payload["name"] == "ada"
