"""Tests for the 3-sided metablock tree variant (Lemmas 4.3 and 4.4)."""

import random

import pytest

from repro.analysis.complexity import linear_space_bound, three_sided_query_bound
from repro.io import SimulatedDisk
from repro.metablock import ThreeSidedMetablockTree
from repro.metablock.geometry import PlanarPoint, ThreeSidedQuery

from tests.conftest import brute_three_sided, make_interval_points, make_points


class TestStaticQueries:
    def test_empty(self, tiny_disk):
        tree = ThreeSidedMetablockTree(tiny_disk)
        assert tree.query_3sided(0, 10, 0) == []
        assert len(tree) == 0

    def test_single_point(self, tiny_disk):
        tree = ThreeSidedMetablockTree(tiny_disk, [PlanarPoint(3, 4)])
        assert len(tree.query_3sided(0, 10, 0)) == 1
        assert tree.query_3sided(0, 2, 0) == []
        assert tree.query_3sided(0, 10, 5) == []

    def test_empty_x_range_returns_nothing(self, tiny_disk):
        tree = ThreeSidedMetablockTree(tiny_disk, make_points(50, seed=0))
        assert tree.query_3sided(10, 5, 0) == []

    @pytest.mark.parametrize("block_size,n", [(4, 400), (4, 1000), (8, 1200)])
    def test_matches_brute_force(self, block_size, n):
        disk = SimulatedDisk(block_size)
        pts = make_points(n, seed=n, domain=(0.0, 100.0))
        tree = ThreeSidedMetablockTree(disk, pts)
        tree.check_invariants()
        rnd = random.Random(n)
        for _ in range(40):
            x1 = rnd.uniform(-5, 100)
            x2 = x1 + rnd.uniform(0, 60)
            y0 = rnd.uniform(-5, 105)
            got = sorted((p.x, p.y) for p in tree.query_3sided(x1, x2, y0))
            assert got == brute_three_sided(pts, x1, x2, y0)

    def test_interval_shaped_points(self):
        """The class-indexing use: x = attribute, y = path position."""
        disk = SimulatedDisk(4)
        pts = make_interval_points(600, seed=3)
        tree = ThreeSidedMetablockTree(disk, pts)
        rnd = random.Random(3)
        for _ in range(30):
            x1 = rnd.uniform(0, 1000)
            x2 = x1 + rnd.uniform(0, 300)
            y0 = rnd.uniform(0, 1100)
            got = sorted((p.x, p.y) for p in tree.query_3sided(x1, x2, y0))
            assert got == brute_three_sided(pts, x1, x2, y0)

    def test_query_object_interface(self, tiny_disk):
        pts = make_points(200, seed=4, domain=(0.0, 50.0))
        tree = ThreeSidedMetablockTree(tiny_disk, pts)
        q = ThreeSidedQuery(10, 40, 20)
        assert sorted((p.x, p.y) for p in tree.query(q)) == brute_three_sided(pts, 10, 40, 20)

    def test_no_duplicates_in_output(self):
        disk = SimulatedDisk(4)
        pts = make_points(800, seed=5, domain=(0.0, 100.0))
        tree = ThreeSidedMetablockTree(disk, pts)
        out = tree.query_3sided(10, 90, 5)
        assert len(out) == len({id(p) for p in out})

    def test_integer_y_coordinates(self, tiny_disk):
        """Discrete y values, as used by the combined class index (path positions)."""
        rnd = random.Random(6)
        pts = [PlanarPoint(rnd.uniform(0, 100), rnd.randrange(0, 8), payload=i) for i in range(500)]
        tree = ThreeSidedMetablockTree(tiny_disk, pts)
        for pos in range(8):
            got = sorted((p.x, p.y) for p in tree.query_3sided(20, 70, pos))
            assert got == brute_three_sided(pts, 20, 70, pos)


class TestDynamicInserts:
    @pytest.mark.parametrize("block_size,n", [(4, 700), (6, 1000)])
    def test_incremental_matches_brute_force(self, block_size, n):
        disk = SimulatedDisk(block_size)
        tree = ThreeSidedMetablockTree(disk)
        pts = make_points(n, seed=n, domain=(0.0, 100.0))
        rnd = random.Random(n)
        for i, p in enumerate(pts):
            tree.insert(p)
            if i % (n // 5) == (n // 5) - 1:
                tree.check_invariants()
                for _ in range(5):
                    x1 = rnd.uniform(-5, 100)
                    x2 = x1 + rnd.uniform(0, 60)
                    y0 = rnd.uniform(-5, 105)
                    got = sorted((q.x, q.y) for q in tree.query_3sided(x1, x2, y0))
                    assert got == brute_three_sided(pts[: i + 1], x1, x2, y0)

    def test_bulk_then_insert(self):
        disk = SimulatedDisk(5)
        initial = make_points(500, seed=7, domain=(0.0, 100.0))
        tree = ThreeSidedMetablockTree(disk, initial)
        pts = list(initial)
        rnd = random.Random(7)
        for p in make_points(500, seed=8, domain=(0.0, 100.0)):
            tree.insert(p)
            pts.append(p)
        tree.check_invariants()
        for _ in range(25):
            x1 = rnd.uniform(-5, 100)
            x2 = x1 + rnd.uniform(0, 60)
            y0 = rnd.uniform(-5, 105)
            assert sorted((p.x, p.y) for p in tree.query_3sided(x1, x2, y0)) == brute_three_sided(
                pts, x1, x2, y0
            )

    def test_all_points_preserved_through_reorganisations(self):
        disk = SimulatedDisk(4)
        tree = ThreeSidedMetablockTree(disk)
        pts = make_points(900, seed=9)
        for p in pts:
            tree.insert(p)
        tree.check_invariants()
        assert sorted((p.x, p.y) for p in tree.all_points()) == sorted((p.x, p.y) for p in pts)

    def test_structure_bounds_after_inserts(self):
        disk = SimulatedDisk(4)
        tree = ThreeSidedMetablockTree(disk)
        for p in make_points(800, seed=10):
            tree.insert(p)
        for mb in tree.iter_metablocks():
            assert len(mb.points) <= 2 * 16 + 4
            assert len(mb.update_points) <= 4


class TestIOBounds:
    """Lemma 4.4: O(log_B n + log2 B + t/B) query I/Os, O(n/B) blocks."""

    def test_space_linear(self):
        B = 16
        n = 6_000
        disk = SimulatedDisk(block_size=B)
        tree = ThreeSidedMetablockTree(disk, make_points(n, seed=11))
        assert tree.block_count() <= 20 * linear_space_bound(n, B)

    def test_small_output_query_cost(self):
        B = 16
        n = 10_000
        disk = SimulatedDisk(block_size=B)
        pts = make_points(n, seed=12)
        tree = ThreeSidedMetablockTree(disk, pts)
        y_top = max(p.y for p in pts)
        with disk.measure() as m:
            out = tree.query_3sided(0, 1000, y_top - 1e-9)
        assert len(out) <= 2
        assert m.ios <= 12 * three_sided_query_bound(n, B, len(out))

    def test_output_term_scales_with_t_over_b(self):
        B = 16
        n = 8_000
        disk = SimulatedDisk(block_size=B)
        pts = make_points(n, seed=13)
        tree = ThreeSidedMetablockTree(disk, pts)
        with disk.measure() as m_all:
            out_all = tree.query_3sided(0, 1000, 0)
        assert len(out_all) == n
        assert m_all.ios <= 12 * three_sided_query_bound(n, B, n)
