"""Unit tests for the in-core baselines (interval tree, segment tree, PST, naive)."""

import random

import pytest

from repro.incore import IntervalTree, NaiveIntervalIndex, PrioritySearchTree, SegmentTree
from repro.interval import Interval

from tests.conftest import make_intervals


ALL_STRUCTURES = [NaiveIntervalIndex, IntervalTree, SegmentTree, PrioritySearchTree.from_intervals]


def build(factory, intervals):
    return factory(intervals)


class TestStabbingQueries:
    @pytest.mark.parametrize("factory", ALL_STRUCTURES)
    def test_empty_structure(self, factory):
        structure = build(factory, [])
        assert structure.stabbing_query(5) == []

    @pytest.mark.parametrize("factory", ALL_STRUCTURES)
    def test_single_interval(self, factory):
        structure = build(factory, [Interval(2, 8, payload="x")])
        assert [iv.payload for iv in structure.stabbing_query(5)] == ["x"]
        assert structure.stabbing_query(1) == []
        assert structure.stabbing_query(9) == []

    @pytest.mark.parametrize("factory", ALL_STRUCTURES)
    def test_endpoint_stabbing(self, factory):
        structure = build(factory, [Interval(2, 8)])
        assert len(structure.stabbing_query(2)) == 1
        assert len(structure.stabbing_query(8)) == 1

    @pytest.mark.parametrize("factory", ALL_STRUCTURES)
    def test_matches_brute_force_on_random_workload(self, factory):
        intervals = make_intervals(400, seed=11)
        structure = build(factory, intervals)
        naive = NaiveIntervalIndex(intervals)
        rnd = random.Random(5)
        for _ in range(60):
            q = rnd.uniform(-20, 1100)
            expected = sorted((iv.low, iv.high) for iv in naive.stabbing_query(q))
            got = sorted((iv.low, iv.high) for iv in structure.stabbing_query(q))
            assert got == expected

    @pytest.mark.parametrize("factory", ALL_STRUCTURES)
    def test_nested_intervals_all_stabbed_at_centre(self, factory):
        nested = [Interval(0 + i, 100 - i) for i in range(40)]
        structure = build(factory, nested)
        assert len(structure.stabbing_query(50)) == 40


class TestIntersectionQueries:
    @pytest.mark.parametrize("factory", [NaiveIntervalIndex, IntervalTree, SegmentTree])
    def test_matches_brute_force(self, factory):
        intervals = make_intervals(300, seed=3)
        structure = build(factory, intervals)
        rnd = random.Random(3)
        for _ in range(40):
            lo = rnd.uniform(-20, 1050)
            hi = lo + rnd.uniform(0, 120)
            expected = sorted((iv.low, iv.high) for iv in intervals if iv.intersects_range(lo, hi))
            got = sorted((iv.low, iv.high) for iv in structure.intersection_query(lo, hi))
            assert got == expected

    def test_no_duplicates_in_intersection_output(self):
        intervals = make_intervals(200, seed=9)
        tree = IntervalTree(intervals)
        out = tree.intersection_query(100, 400)
        assert len(out) == len({id(iv) for iv in out})


class TestDynamicUpdates:
    def test_interval_tree_insert_then_query(self):
        tree = IntervalTree()
        intervals = make_intervals(150, seed=2)
        for iv in intervals:
            tree.insert(iv)
        assert len(tree) == 150
        q = 500.0
        expected = sorted((iv.low, iv.high) for iv in intervals if iv.contains(q))
        assert sorted((iv.low, iv.high) for iv in tree.stabbing_query(q)) == expected

    def test_interval_tree_delete(self):
        intervals = make_intervals(50, seed=4)
        tree = IntervalTree(intervals)
        victim = intervals[10]
        assert tree.delete(victim)
        assert not tree.delete(victim) or victim in intervals  # second delete may hit an equal twin
        assert len(tree) == 49

    def test_segment_tree_insert_with_new_endpoints_rebuilds(self):
        st = SegmentTree(make_intervals(50, seed=6))
        new = Interval(-500.0, -400.0)
        st.insert(new)
        assert new in st.stabbing_query(-450.0)

    def test_naive_delete(self):
        naive = NaiveIntervalIndex([Interval(1, 2), Interval(3, 4)])
        assert naive.delete(Interval(1, 2))
        assert not naive.delete(Interval(9, 10))
        assert len(naive) == 1

    def test_pst_insert_then_query(self):
        pst = PrioritySearchTree()
        intervals = make_intervals(200, seed=8)
        for iv in intervals:
            pst.insert_interval(iv)
        assert len(pst) == 200
        q = 333.0
        expected = sorted((iv.low, iv.high) for iv in intervals if iv.contains(q))
        assert sorted((iv.low, iv.high) for iv in pst.stabbing_query(q)) == expected


class TestPrioritySearchTreeQueries:
    def test_three_sided_query_matches_brute_force(self):
        rnd = random.Random(12)
        points = [(rnd.uniform(0, 100), rnd.uniform(0, 100), i) for i in range(300)]
        pst = PrioritySearchTree(points)
        for _ in range(40):
            x1 = rnd.uniform(0, 100)
            x2 = x1 + rnd.uniform(0, 40)
            y0 = rnd.uniform(0, 100)
            expected = sorted((x, y) for x, y, _ in points if x1 <= x <= x2 and y >= y0)
            got = sorted((x, y) for x, y, _ in pst.query_3sided(x1, x2, y0))
            assert got == expected

    def test_two_sided_query_is_diagonal_shape(self):
        points = [(1, 10, "a"), (5, 3, "b"), (7, 8, "c")]
        pst = PrioritySearchTree(points)
        got = {p[2] for p in pst.query_2sided(6, 5)}
        assert got == {"a"}

    def test_expected_logarithmic_height_on_random_input(self):
        rnd = random.Random(1)
        pst = PrioritySearchTree()
        for i in range(1000):
            pst.insert(rnd.random(), rnd.random(), i)
        assert pst.height() <= 200  # far below the worst case of 1000 for random order

    def test_points_returns_everything(self):
        pst = PrioritySearchTree([(1, 2, None), (3, 4, None)])
        assert len(pst.points()) == 2


class TestSegmentTreeSpace:
    def test_stored_copies_grow_superlinearly(self):
        """The segment tree's O(n log n) redundancy (contrast with the metablock tree)."""
        small = SegmentTree(make_intervals(100, seed=1))
        large = SegmentTree(make_intervals(800, seed=1))
        assert large.stored_copies() / 800 > small.stored_copies() / 100 * 0.9
        assert large.stored_copies() >= 800  # at least one copy each
