"""Edge semantics of :class:`~repro.engine.result.QueryResult`.

Covers the satellite checklist: double iteration, ``len``/``bool`` before
and after consumption, ``ios`` monotonicity, the ``limit()``/``pages()``
cursors, and cross-backend (SimulatedDisk vs. FileDisk) equivalence of
composed ``And``/``Or`` queries checked against the ``matches`` oracles.
"""

import pytest

from repro import (
    EndpointRange,
    Engine,
    FileDisk,
    Interval,
    QueryResult,
    Range,
    SimulatedDisk,
    Stab,
)

from tests.conftest import make_intervals

B = 8


def _engine(kind="memory", tmp_path=None):
    backend = (
        FileDisk(str(tmp_path / "pages.bin"), block_size=B)
        if kind == "file"
        else SimulatedDisk(block_size=B)
    )
    engine = Engine(backend)
    engine.create_interval_index("ivs", make_intervals(300, seed=7, mean_length=80.0))
    return engine


class TestIterationSemantics:
    def test_double_iteration_replays_identical_hits_without_new_io(self):
        engine = _engine()
        result = engine.query("ivs", Stab(500.0))
        first = list(result)
        ios_after_first = result.ios
        assert first
        second = list(result)
        assert second == first
        assert result.ios == ios_after_first

    def test_interleaved_consumers_share_one_stream(self):
        engine = _engine()
        result = engine.query("ivs", Range(100.0, 900.0))
        it1, it2 = iter(result), iter(result)
        a, b = next(it1), next(it2)
        assert a == b
        rest1, rest2 = list(it1), list(it2)
        assert [a] + rest1 == [b] + rest2

    def test_len_and_bool_before_consumption(self):
        engine = _engine()
        hit = engine.query("ivs", Stab(500.0))
        assert not hit.started
        assert bool(hit)                  # reads at most a few blocks
        assert hit.count >= 1             # only what bool() needed
        assert len(hit) == len(hit.all())  # len() exhausts
        assert hit.exhausted

        empty = engine.query("ivs", Stab(-1e9))
        assert len(empty) == 0 and not bool(empty)
        assert list(empty) == []

    def test_len_and_bool_after_consumption_are_stable(self):
        engine = _engine()
        result = engine.query("ivs", Stab(500.0))
        n = len(result.all())
        ios = result.ios
        assert len(result) == n and bool(result) is (n > 0)
        assert result.ios == ios  # neither re-ran the query


class TestIosMonotonicity:
    def test_ios_never_decreases_while_streaming(self):
        engine = _engine()
        result = engine.query("ivs", Range(0.0, 1000.0))
        assert result.ios == 0  # lazy: nothing before iteration
        seen = 0
        last = 0
        for _ in result:
            seen += 1
            assert result.ios >= last
            last = result.ios
        assert result.exhausted and seen == result.count
        assert result.ios == last  # exhaustion adds no surprise I/Os

    def test_partial_consumption_costs_no_more_than_full(self):
        engine = _engine()
        partial = engine.query("ivs", Range(0.0, 1000.0))
        for i, _ in enumerate(partial):
            if i >= 5:
                break
        full = engine.query("ivs", Range(0.0, 1000.0))
        full.all()
        assert 0 < partial.ios <= full.ios


class TestCursors:
    def test_limit_is_lazy_and_cheaper_than_full_drain(self):
        engine = _engine()
        full = engine.query("ivs", Range(0.0, 1000.0))
        n_full = len(full.all())
        limited = engine.query("ivs", Range(0.0, 1000.0)).limit(3)
        hits = limited.all()
        assert len(hits) == 3 < n_full
        assert limited.ios < full.ios

    def test_limit_validates_and_handles_oversize(self):
        engine = _engine()
        with pytest.raises(ValueError):
            engine.query("ivs", Stab(500.0)).limit(-1)
        result = engine.query("ivs", Stab(-1e9)).limit(10)
        assert result.all() == []

    def test_pages_chunks_the_stream_lazily(self):
        engine = _engine()
        result = engine.query("ivs", Range(0.0, 1000.0))
        pages = result.pages(7)
        first = next(pages)
        assert len(first) == 7
        ios_after_first_page = result.ios
        rest = list(pages)
        assert result.ios >= ios_after_first_page
        flattened = first + [r for page in rest for r in page]
        assert flattened == result.all()
        assert all(len(page) <= 7 for page in rest)

    def test_pages_size_validated(self):
        engine = _engine()
        with pytest.raises(ValueError):
            next(engine.query("ivs", Stab(0.0)).pages(0))


class TestCrossBackendComposedEquivalence:
    @pytest.mark.parametrize(
        "q",
        [
            Stab(400.0) & Range(350.0, 450.0),
            Stab(100.0) | Stab(800.0),
            (Range(0.0, 500.0) & ~Stab(250.0)) | EndpointRange("low", 700.0, 750.0),
        ],
        ids=repr,
    )
    def test_collections_agree_with_the_oracle_on_both_backends(self, tmp_path, q):
        intervals = make_intervals(200, seed=13, mean_length=100.0)
        want = sorted(iv.payload for iv in intervals if q.matches(iv))
        for kind in ("memory", "file"):
            backend = (
                FileDisk(str(tmp_path / f"{kind}.bin"), block_size=B)
                if kind == "file"
                else SimulatedDisk(block_size=B)
            )
            with Engine(backend) as engine:
                engine.create_collection("c", intervals)
                got = sorted(iv.payload for iv in engine.query("c", q))
                assert got == want, kind


class TestErrorReplay:
    def test_error_reraised_from_limit_view(self):
        def boom():
            yield Interval(0, 1)
            raise RuntimeError("mid-stream")

        result = QueryResult(boom)
        limited = result.limit(5)
        with pytest.raises(RuntimeError):
            limited.all()
        with pytest.raises(RuntimeError):
            list(limited)


class TestConsumptionContract:
    """The documented double-iteration contract (see result.py docstring):

    decorated consumption (``iter``/``all``/``first``/``pages``) replays
    the cache; ``raw()`` on a pristine result is one-shot — anything after
    it raises :class:`ResultConsumedError` instead of silently re-running
    the query or yielding nothing.
    """

    def test_all_then_iter_replays_cached_rows(self):
        engine = _engine()
        result = engine.query("ivs", Stab(500.0))
        first = result.all()
        assert list(result) == first
        assert result.all() == first

    def test_iter_after_exhaustion_replays_not_empty(self):
        engine = _engine()
        result = engine.query("ivs", Stab(500.0))
        first = list(result)
        assert first  # the workload guarantees hits at 500.0
        assert list(result) == first  # not silently empty

    def test_raw_after_start_replays_cache(self):
        engine = _engine()
        result = engine.query("ivs", Stab(500.0))
        first = result.all()
        assert list(result.raw()) == first

    def test_raw_on_pristine_result_is_one_shot(self):
        from repro import ResultConsumedError

        calls = []

        def source():
            calls.append(1)
            return iter([1, 2, 3])

        result = QueryResult(source)
        assert list(result.raw()) == [1, 2, 3]
        with pytest.raises(ResultConsumedError, match="raw\\(\\)"):
            list(result)
        with pytest.raises(ResultConsumedError):
            result.all()
        with pytest.raises(ResultConsumedError):
            result.raw()
        assert calls == [1]  # the query never silently re-ran

    def test_raw_consumption_never_double_runs_the_query(self):
        engine = _engine()
        result = engine.query("ivs", Stab(500.0))
        hits = list(result.raw())
        assert hits
        before = engine.io_stats().total
        from repro import ResultConsumedError

        with pytest.raises(ResultConsumedError):
            result.all()
        assert engine.io_stats().total == before  # no I/O on the failure path
