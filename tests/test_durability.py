"""The durability subsystem: WAL format, group commit, MVCC epochs, replay.

Covers the three layers on their own (:mod:`repro.durability.wal`,
:mod:`repro.durability.mvcc`, :mod:`repro.durability.recovery`) and the
engine wiring that composes them: commits are logged and acknowledged
only after the record is durable, ``attach_wal`` replays a crashed
process's tail for every index kind, checkpoints truncate the log, and
reader sessions stream pinned-epoch snapshots while writers commit.
The subprocess kill-and-reopen harness lives in
``tests/test_crash_recovery.py``; this file exercises the same machinery
in-process, where each piece can be observed directly.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import Engine, Interval, Range, Stab
from repro.analysis import lockdep
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.constraints.relation import GeneralizedRelation
from repro.constraints.terms import Constraint, GeneralizedTuple, Variable
from repro.durability import EpochManager, WriteAheadLog, read_log
from repro.io import FileDisk
from repro.metablock.geometry import PlanarPoint, ThreeSidedQuery

from tests.conftest import make_intervals


@pytest.fixture(autouse=True)
def witness():
    """The whole durability suite runs under a strict lockdep witness: any
    latch held across a WAL/backend fsync, or any acquisition cycle in the
    commit kernel, fails the offending test immediately."""
    with lockdep.watching() as w:
        yield w


def wal_path(tmp_path, name="test.wal"):
    return str(tmp_path / name)


# ---------------------------------------------------------------------- #
# the log itself
# ---------------------------------------------------------------------- #
class TestWalFormat:
    def test_append_records_roundtrip(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, ("insert", "a", (1, 2)))
            wal.append(2, ("delete", "a", (3,)))
            got = list(wal.records())
        assert [(r.lsn, r.epoch, r.op) for r in got] == [
            (0, 1, ("insert", "a", (1, 2))),
            (1, 2, ("delete", "a", (3,))),
        ]
        # offsets frame the file exactly: each record starts where the
        # previous one ended
        assert got[0].offset == 0
        assert got[1].offset == got[0].length

    def test_reopen_preserves_records(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, ("insert", "a", (1,)))
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.record_count == 1
            wal.append(2, ("insert", "a", (2,)))
            assert [r.epoch for r in wal.records()] == [1, 2]

    def test_torn_tail_is_truncated_on_open(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, ("insert", "a", (1,)))
            intact = wal.size_bytes
        with open(path, "ab") as fh:
            fh.write(b"\x40\x00\x00\x00garbage")  # header promises 64 bytes
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.record_count == 1
            assert wal.size_bytes == intact
        assert os.path.getsize(path) == intact

    def test_corrupt_payload_stops_the_scan(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, ("insert", "a", (1,)))
            first = wal.size_bytes
            wal.append(2, ("insert", "a", (2,)))
        raw = bytearray(open(path, "rb").read())
        raw[first + 12] ^= 0xFF  # flip a byte inside the second payload
        open(path, "wb").write(bytes(raw))
        assert [r.epoch for r in read_log(path)] == [1]
        with WriteAheadLog(path, fsync=False) as wal:
            assert wal.record_count == 1

    def test_read_log_never_truncates(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, ("insert", "a", (1,)))
        with open(path, "ab") as fh:
            fh.write(b"torn")
        size = os.path.getsize(path)
        assert [r.epoch for r in read_log(path)] == [1]
        assert os.path.getsize(path) == size  # evidence preserved

    def test_truncate_empties_the_log(self, tmp_path):
        path = wal_path(tmp_path)
        with WriteAheadLog(path, fsync=False) as wal:
            wal.append(1, ("insert", "a", (1,)))
            wal.truncate()
            assert wal.record_count == 0
            assert wal.size_bytes == 0
            wal.append(2, ("insert", "a", (2,)))
            assert [r.epoch for r in wal.records()] == [2]


class TestGroupCommit:
    def test_sync_to_is_a_barrier(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), fsync=False)
        off = wal.append(1, ("insert", "a", (1,)))
        assert wal.sync_to(off) is True       # paid the barrier
        assert wal.sync_to(off) is False      # already durable
        assert wal.syncs == 1
        assert wal.group_absorbed == 1
        wal.close()

    def test_concurrent_commits_share_fsyncs(self, tmp_path):
        wal = WriteAheadLog(wal_path(tmp_path), fsync=False)
        per_thread, threads = 50, 8

        def committer(tid):
            for i in range(per_thread):
                off = wal.append(tid * per_thread + i, ("insert", "a", (i,)))
                wal.sync_to(off)

        ts = [threading.Thread(target=committer, args=(t,)) for t in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        total = per_thread * threads
        assert wal.commits == total
        assert wal.record_count == total
        # every commit either paid a barrier or rode one; under real
        # contention syncs < commits (the amortization the design is for),
        # but the invariant that must always hold is the accounting one
        assert wal.syncs + wal.group_absorbed == total
        assert wal.syncs >= 1
        wal.close()


# ---------------------------------------------------------------------- #
# the epoch clock
# ---------------------------------------------------------------------- #
class TestEpochManager:
    def test_ordered_publication(self):
        epochs = EpochManager()
        e1, e2 = epochs.begin(), epochs.begin()
        order = []
        done = threading.Event()

        def publish_second():
            epochs.publish(e2)       # must wait for e1
            order.append(e2)
            done.set()

        t = threading.Thread(target=publish_second)
        t.start()
        assert not done.wait(0.05)   # e2 is stuck behind e1
        epochs.publish(e1)
        order.append(e1)
        assert done.wait(2.0)
        t.join()
        assert epochs.current == e2
        assert order == [e1, e2] or order == [e2, e1]  # e2 appended after set

    def test_pins_hold_back_the_safe_epoch(self):
        epochs = EpochManager()
        epochs.publish(epochs.begin())      # current = 1
        with epochs.pinned() as e:
            assert e == 1
            epochs.publish(epochs.begin())  # current = 2
            assert epochs.safe_epoch() == 0  # pinned reader at 1 needs 1's view
            assert epochs.pinned_count() == 1
            assert epochs.oldest_pinned() == 1
        assert epochs.safe_epoch() == 2
        assert epochs.pinned_count() == 0

    def test_quiesce_waits_for_inflight(self):
        epochs = EpochManager()
        e = epochs.begin()
        done = threading.Event()

        def waiter():
            epochs.quiesce()
            done.set()

        t = threading.Thread(target=waiter)
        t.start()
        assert not done.wait(0.05)
        epochs.publish(e)
        assert done.wait(2.0)
        t.join()

    def test_write_epoch_is_thread_local(self):
        epochs = EpochManager()
        epochs.set_write_epoch(7)
        seen = []

        def other():
            seen.append(epochs.write_epoch())

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert seen == [None]
        assert epochs.write_epoch() == 7
        epochs.clear_write_epoch()
        assert epochs.write_epoch() is None


# ---------------------------------------------------------------------- #
# the engine wiring
# ---------------------------------------------------------------------- #
class TestEngineWal:
    def test_commits_are_logged(self, tmp_path):
        eng = Engine(block_size=8)
        eng.attach_wal(wal_path(tmp_path), fsync=False)
        ivs = make_intervals(10, seed=1)
        eng.create_collection("c", ivs, dynamic=True)
        extra = Interval(1.0, 2.0)
        eng.insert("c", extra)
        assert eng.delete("c", ivs[0]) is True
        kinds = [r.op[0] for r in eng.wal.records()]
        assert kinds == ["create", "insert", "delete"]
        epochs = [r.epoch for r in eng.wal.records()]
        assert epochs == sorted(epochs)  # log order == epoch order

    def test_delete_miss_is_not_logged(self, tmp_path):
        eng = Engine(block_size=8)
        eng.attach_wal(wal_path(tmp_path), fsync=False)
        eng.create_collection("c", make_intervals(5, seed=2), dynamic=True)
        assert eng.delete("c", Interval(5000.0, 5001.0)) is False
        assert [r.op[0] for r in eng.wal.records()] == ["create"]

    def test_ack_implies_synced(self, tmp_path):
        eng = Engine(block_size=8)
        eng.attach_wal(wal_path(tmp_path), fsync=False)
        eng.create_collection("c", dynamic=True)
        eng.insert("c", Interval(1.0, 2.0))
        # the engine returned: the log must already be durable up to here
        assert eng.wal.synced_bytes == eng.wal.size_bytes

    def test_double_attach_refused(self, tmp_path):
        eng = Engine(block_size=8)
        eng.attach_wal(wal_path(tmp_path), fsync=False)
        with pytest.raises(RuntimeError):
            eng.attach_wal(wal_path(tmp_path, "other.wal"), fsync=False)

    def test_fsyncs_counted_into_backend_stats(self, tmp_path):
        eng = Engine(block_size=8)
        eng.attach_wal(wal_path(tmp_path))  # real fsync
        eng.create_collection("c", dynamic=True)
        eng.insert("c", Interval(1.0, 2.0))
        stats = eng.io_stats().snapshot()
        assert stats.fsyncs >= 2
        # durability barriers are not block I/O in the paper's model
        assert stats.total == stats.reads + stats.writes


def _drain(engine, name, q):
    return {r.uid for r in engine.query(name, q).all()}


class TestWalReplay:
    """``attach_wal`` on a fresh engine rebuilds a crashed engine's state.

    The first engine never checkpoints and never closes — the WAL is the
    only survivor, exactly the crash contract — and the replayed engine
    must answer every query identically, for every index kind.
    """

    def _crashed_and_recovered(self, tmp_path, build):
        path = wal_path(tmp_path)
        crashed = Engine(block_size=8)
        crashed.attach_wal(path, fsync=False)
        build(crashed)
        crashed.wal.close()     # drop the handle; the state is abandoned
        recovered = Engine(block_size=8)
        replayed = recovered.attach_wal(path, fsync=False)
        assert replayed == len(list(recovered.wal.records()))
        assert replayed > 0
        return crashed, recovered

    def test_interval_index(self, tmp_path):
        ivs = make_intervals(30, seed=3)

        def build(eng):
            eng.create_interval_index("iv", ivs[:25], dynamic=True)
            for iv in ivs[25:]:
                eng.insert("iv", iv)
            eng.delete("iv", ivs[0])

        crashed, recovered = self._crashed_and_recovered(tmp_path, build)
        for q in (Stab(ivs[1].low), Stab(500.0), Range(100.0, 300.0)):
            assert _drain(recovered, "iv", q) == _drain(crashed, "iv", q)

    def test_collection(self, tmp_path):
        ivs = make_intervals(30, seed=4)

        def build(eng):
            eng.create_collection("c", ivs[:20], dynamic=True)
            eng.bulk_load("c", ivs[20:28])
            eng.insert("c", ivs[28])
            eng.update("c", ivs[5], ivs[29])
            eng.delete("c", ivs[6])

        crashed, recovered = self._crashed_and_recovered(tmp_path, build)
        for q in (Stab(ivs[2].low), Range(0.0, 1000.0)):
            assert _drain(recovered, "c", q) == _drain(crashed, "c", q)

    def test_key_index(self, tmp_path):
        pairs = [(float(i), Interval(float(i), float(i + 1))) for i in range(40)]

        def build(eng):
            eng.create_key_index("k", pairs[:30])
            for key, value in pairs[30:]:
                eng.insert("k", key, value)
            eng.delete("k", 3.0)

        def keyed(engine):
            # range scans on a B+-tree stream (key, value) pairs
            return {
                (k, v.uid) for k, v in engine.query("k", Range(0.0, 100.0)).all()
            }

        crashed, recovered = self._crashed_and_recovered(tmp_path, build)
        assert _drain(recovered, "k", Stab(10.0)) == _drain(crashed, "k", Stab(10.0))
        assert _drain(recovered, "k", Stab(3.0)) == set()
        assert keyed(recovered) == keyed(crashed)

    def test_point_index(self, tmp_path):
        pts = [PlanarPoint(float(i % 7), float(i)) for i in range(30)]

        def build(eng):
            eng.create_point_index("p", pts[:25])
            for p in pts[25:]:
                eng.insert("p", p)
            eng.delete("p", pts[0])

        crashed, recovered = self._crashed_and_recovered(tmp_path, build)
        q = ThreeSidedQuery(0.0, 6.0, 10.0)
        assert _drain(recovered, "p", q) == _drain(crashed, "p", q)

    def test_class_index(self, tmp_path):
        hierarchy = ClassHierarchy()
        hierarchy.add_class("Root")
        hierarchy.add_class("A", "Root")
        hierarchy.add_class("B", "Root")
        objs = [
            ClassObject(float(i), ("Root", "A", "B")[i % 3]) for i in range(24)
        ]

        def build(eng):
            eng.create_class_index("cls", hierarchy, objs[:20], method="combined")
            for obj in objs[20:]:
                eng.insert("cls", obj)

        from repro.engine import ClassRange

        crashed, recovered = self._crashed_and_recovered(tmp_path, build)
        q = ClassRange("A", 0.0, 100.0)
        assert _drain(recovered, "cls", q) == _drain(crashed, "cls", q)

    def test_constraint_index(self, tmp_path):
        x = Variable("x")
        relation = GeneralizedRelation(
            ["x"],
            [
                GeneralizedTuple(
                    [Constraint(x, ">=", float(i)), Constraint(x, "<=", float(i + 2))],
                    name=f"t{i}",
                )
                for i in range(20)
            ],
            name="r",
        )

        def build(eng):
            eng.create_constraint_index("gx", relation, "x", dynamic=True)

        def names(engine, q):
            return {t.name for t in engine.query("gx", q).all()}

        crashed, recovered = self._crashed_and_recovered(tmp_path, build)
        assert names(recovered, Stab(5.0)) == names(crashed, Stab(5.0))
        assert names(recovered, Stab(5.0))  # non-vacuous

    def test_drop_survives_replay(self, tmp_path):
        path = wal_path(tmp_path)
        crashed = Engine(block_size=8)
        crashed.attach_wal(path, fsync=False)
        crashed.create_collection("keep", make_intervals(5, seed=5), dynamic=True)
        crashed.create_collection("gone", make_intervals(5, seed=6), dynamic=True)
        crashed.drop_index("gone")
        crashed.wal.close()
        recovered = Engine(block_size=8)
        recovered.attach_wal(path, fsync=False)
        assert recovered.names() == ["keep"]


class TestCheckpointAndRecovery:
    def test_checkpoint_truncates_and_stamps(self, tmp_path):
        db = str(tmp_path / "db.pages")
        eng = Engine(FileDisk(db, block_size=8))
        eng.attach_wal()
        eng.create_collection("c", make_intervals(10, seed=7), dynamic=True)
        assert eng.wal.record_count == 1
        eng.checkpoint()
        assert eng.wal.record_count == 0
        assert eng.backend.meta["durable_epoch"] == eng.epochs.current
        eng.close()

    def test_replay_is_idempotent_across_the_truncate_window(self, tmp_path):
        """A crash between checkpoint and WAL truncate must not double-apply."""
        db = str(tmp_path / "db.pages")
        eng = Engine(FileDisk(db, block_size=8))
        eng.attach_wal()
        ivs = make_intervals(10, seed=8)
        eng.create_collection("c", ivs, dynamic=True)
        eng.insert("c", Interval(1.0, 2.0))
        # simulate the window: snapshot the pre-checkpoint log, checkpoint
        # (which truncates), then put the stale tail back
        stale = open(db + ".wal", "rb").read()
        eng.checkpoint()
        eng.wal.close()
        eng.wal = None
        eng.flush()
        eng.backend.close()
        open(db + ".wal", "wb").write(stale)
        reopened = Engine.open(db)
        try:
            # the stale records carry epochs <= durable_epoch: all skipped
            counts = {e["name"]: e["records"] for e in reopened.catalog()}
            assert counts == {"c": 11}
        finally:
            reopened.close()

    def test_open_without_wal_flag(self, tmp_path):
        db = str(tmp_path / "db.pages")
        eng = Engine(FileDisk(db, block_size=8))
        eng.attach_wal()
        eng.create_collection("c", make_intervals(6, seed=9), dynamic=True)
        eng.close()
        reopened = Engine.open(db, wal=False)
        try:
            assert reopened.wal is None
            assert [e["name"] for e in reopened.catalog()] == ["c"]
        finally:
            reopened.close()


# ---------------------------------------------------------------------- #
# MVCC snapshot reads
# ---------------------------------------------------------------------- #
class TestSnapshotReads:
    def test_visibility_tags_during_pinned_read(self):
        """A pinned epoch keeps its snapshot while commits land after it.

        The pin (not the per-request latch) is what carries the snapshot:
        commits proceed freely while an epoch is pinned — the reader just
        residual-filters what it streams down to its epoch's visibility.
        """
        eng = Engine(block_size=8)
        ivs = make_intervals(12, seed=10)
        eng.create_collection("c", ivs, dynamic=True)
        everything = Range(-1.0, 2000.0)
        with eng.epochs.pinned() as epoch:
            before = {r.uid for r in eng.query("c", everything).all()}
            eng.insert("c", Interval(10.0, 20.0))   # commits after the pin
            eng.delete("c", ivs[0])
            # raw drain sees the new physical state (insert applied, delete
            # tombstoned); the visibility filter restores the snapshot
            raw = eng.query("c", everything).all()
            visible = {r.uid for r in eng.visible_records("c", raw, epoch)}
            assert visible == before
        # after the pin is gone, a fresh read turn sees the commits
        with eng.read_turn("c") as epoch:
            raw = eng.query("c", everything).all()
            after = {r.uid for r in eng.visible_records("c", raw, epoch)}
        assert ivs[0].uid not in after
        assert len(after) == len(before)  # one in, one out

    def test_sessions_read_consistent_snapshots(self):
        eng = Engine(block_size=8)
        ivs = make_intervals(40, seed=11)
        eng.create_collection("c", ivs, dynamic=True)
        session = eng.session()
        res = session.query("c", Range(-1.0, 2000.0))
        assert {r.uid for r in res.records} == {iv.uid for iv in ivs}

    def test_reader_not_blocked_by_writer_on_other_index(self):
        """The MVCC point: a slow commit on index B never delays reads of A."""
        eng = Engine(block_size=8)
        eng.create_collection("a", make_intervals(10, seed=12), dynamic=True)
        eng.create_collection("b", dynamic=True)
        in_commit = threading.Event()
        release = threading.Event()
        original = eng.index("b").insert

        def slow_insert(*args, **kw):
            in_commit.set()
            release.wait(10.0)
            return original(*args, **kw)

        eng.index("b").insert = slow_insert
        t = threading.Thread(target=lambda: eng.insert("b", Interval(1.0, 2.0)))
        t.start()
        assert in_commit.wait(5.0)
        try:
            # while b's commit holds b's latch + the write mutex, a read
            # turn on a must still complete
            session = eng.session()
            res = session.query("a", Stab(500.0))
            assert res is not None
        finally:
            release.set()
            t.join()

    def test_tombstones_purge_once_unpinned(self):
        eng = Engine(block_size=8)
        ivs = make_intervals(8, seed=13)
        eng.create_collection("c", ivs, dynamic=True)
        col = eng.index("c")
        with eng.epochs.pinned():
            eng.delete("c", ivs[0])
            assert col.has_mvcc_state  # tombstone held for the pinned reader
        # next commit's GC pass reclaims it (no pins left)
        eng.insert("c", Interval(1.0, 2.0))
        assert not col.has_mvcc_state

    def test_delete_matching_remains_atomic(self):
        eng = Engine(block_size=8)
        ivs = [Interval(float(i), float(i) + 5.0) for i in range(20)]
        eng.create_collection("c", ivs, dynamic=True)
        session = eng.session()
        res = session.delete_matching("c", Stab(7.5))
        expected = {iv.uid for iv in ivs if iv.low <= 7.5 <= iv.high}
        assert {r.uid for r in res.records} == expected
        assert session.query("c", Stab(7.5)).records == []


# ---------------------------------------------------------------------- #
# the lockdep witness over the real durability paths
# ---------------------------------------------------------------------- #
class TestLockdepOverDurability:
    def test_group_commit_barrier_is_observed_lock_free(self, tmp_path, witness):
        """The WAL's fsync must reach the witness with no no_block lock held."""
        with WriteAheadLog(wal_path(tmp_path)) as wal:
            lsn = wal.append(1, ("insert", "a", (1.0, 2.0)))
            assert wal.sync_to(lsn) is True
        assert witness.blocking_calls >= 1
        assert witness.violations == []

    def test_concurrent_commits_stay_witness_clean(self, tmp_path, witness):
        """8 threads through the full commit kernel (real fsyncs): the
        acquisition DAG must stay acyclic and barrier-clean."""
        eng = Engine(block_size=8)
        eng.attach_wal(wal_path(tmp_path))  # real fsyncs
        try:
            eng.create_collection("c", [], dynamic=True)
            errors = []

            def committer(tid):
                try:
                    session = eng.session()
                    for i in range(5):
                        session.insert(
                            "c", Interval(float(tid * 100 + i), float(tid * 100 + i + 1))
                        )
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            ts = [threading.Thread(target=committer, args=(t,)) for t in range(8)]
            for t in ts:
                t.start()
            for t in ts:
                t.join()
            assert errors == []
            # the kernel's one legal edge, witnessed for real
            assert ("engine.write_mutex", "latch:c") in witness.edges()
            assert witness.blocking_calls >= 1      # real fsyncs happened
            assert witness.violations == []
        finally:
            eng.close()

    def test_checkpoint_runs_witness_clean(self, tmp_path, witness):
        eng = Engine(FileDisk(str(tmp_path / "db.pages"), block_size=8))
        eng.attach_wal(wal_path(tmp_path))
        try:
            eng.create_collection("c", make_intervals(12, seed=7), dynamic=True)
            eng.insert("c", Interval(3.0, 4.0))
            eng.checkpoint()
            assert witness.violations == []
        finally:
            eng.close()
