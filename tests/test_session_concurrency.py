"""The concurrency kernel: thread-safe counters, RWLock, EngineSession.

Covers the serving subsystem's foundation layer by layer:

* ``IOStats.count`` loses no updates under contention (the 8-thread
  backend hammer the bare ``+=`` era would fail);
* per-thread attribution sinks see exactly their own thread's I/Os;
* ``RWLock``: shared readers, exclusive writers, writer preference, and
  the write-intent upgrade (including the two-upgrader conflict);
* ``EngineSession``: concurrent readers and writers against one engine
  stay oracle-equivalent, with per-request I/O attribution intact;
* the lockdep witness (:mod:`repro.analysis.lockdep`): every test in this
  module runs under an enabled witness, so any lock-order cycle or
  latch-held-across-fsync the workloads provoke fails the test on first
  occurrence — plus deliberate-violation regressions proving it fires.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import Engine, Interval, SimulatedDisk, Stab
from repro.analysis import lockdep
from repro.analysis.lockdep import (
    BlockingUnderLockError,
    LockdepWitness,
    LockOrderError,
    WitnessedMutex,
)
from repro.engine.session import RWLock, WriteIntentError
from repro.io.counters import IOStats
from repro.workloads import random_intervals


@pytest.fixture(autouse=True)
def witness():
    """Every test in this module runs under a strict lockdep witness."""
    with lockdep.watching() as w:
        yield w


class TestIOStatsThreadSafety:
    def test_count_is_atomic_under_contention(self):
        stats = IOStats()
        threads, per_thread = 8, 2_000

        def hammer():
            for _ in range(per_thread):
                stats.count(reads=1, writes=1, cache_hits=1)

        ts = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert stats.reads == threads * per_thread
        assert stats.writes == threads * per_thread
        assert stats.cache_hits == threads * per_thread
        assert stats.total == 2 * threads * per_thread

    def test_backend_hammered_from_8_threads_counts_exactly(self, disk):
        """The regression the satellite asks for: one backend, 8 threads."""
        blocks = [disk.allocate([i]) for i in range(16)]
        disk.stats.reset()
        threads, per_thread = 8, 500

        def hammer(tid):
            for i in range(per_thread):
                disk.read(blocks[(tid + i) % len(blocks)].block_id)

        ts = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert disk.stats.reads == threads * per_thread

    def test_attributed_sink_sees_only_its_thread(self, disk):
        block = disk.allocate([1])
        sink_main = IOStats()
        noise_done = threading.Event()
        start = threading.Event()

        def noise():
            start.wait()
            for _ in range(300):
                disk.read(block.block_id)
            noise_done.set()

        t = threading.Thread(target=noise)
        t.start()
        with disk.stats.attributed(sink_main):
            start.set()
            for _ in range(50):
                disk.read(block.block_id)
            noise_done.wait()
        t.join()
        assert sink_main.reads == 50           # none of the noise thread's 300
        assert disk.stats.reads >= 350         # global totals have both

    def test_attribution_scopes_nest(self, disk):
        block = disk.allocate([1])
        outer, inner = IOStats(), IOStats()
        with disk.stats.attributed(outer):
            disk.read(block.block_id)
            with disk.stats.attributed(inner):
                disk.read(block.block_id)
        assert inner.reads == 1
        assert outer.reads == 2

    def test_nested_equal_sinks_unregister_by_identity(self, disk):
        """Two ==-equal sinks (both zero) must not unregister each other."""
        block = disk.allocate([1])
        outer, inner = IOStats(), IOStats()
        with disk.stats.attributed(outer):
            with disk.stats.attributed(inner):
                pass  # inner scope does no I/O: inner == outer here
            disk.read(block.block_id)  # must land in OUTER, not inner
        assert outer.reads == 1
        assert inner.reads == 0

    def test_filedisk_concurrent_reads_deserialize_correctly(self, tmp_path):
        """Parallel readers share one file handle; seek+read must not race."""
        from repro.io import FileDisk

        fdisk = FileDisk(str(tmp_path / "pages.bin"), block_size=8)
        blocks = [fdisk.allocate([("payload", i)] * 4) for i in range(32)]
        errors = []

        def reader(tid):
            try:
                for i in range(400):
                    bid = blocks[(tid * 7 + i) % len(blocks)].block_id
                    block = fdisk.read(bid)
                    assert block.records[0] == ("payload", bid)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        ts = [threading.Thread(target=reader, args=(t,)) for t in range(6)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert errors == []

    def test_buffer_manager_concurrent_reads(self, tiny_disk):
        """The LRU pool under parallel readers: no KeyErrors, no lost pages."""
        from repro.io import BufferManager

        pool = BufferManager(tiny_disk, capacity_pages=4)
        blocks = [pool.allocate([i]) for i in range(24)]
        errors = []

        def reader(tid):
            try:
                for i in range(500):
                    bid = blocks[(tid * 5 + i) % len(blocks)].block_id
                    assert pool.read(bid).records == [bid]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        ts = [threading.Thread(target=reader, args=(t,)) for t in range(6)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert errors == []

    def test_snapshot_and_merge(self):
        stats = IOStats()
        stats.count(reads=3, writes=2)
        snap = stats.snapshot()
        stats.count(reads=1)
        assert snap.reads == 3 and stats.reads == 4
        other = IOStats()
        other.merge(stats)
        assert other.reads == 4 and other.writes == 2


class TestRWLock:
    def test_readers_share(self):
        lock = RWLock()
        inside = []
        barrier = threading.Barrier(3, timeout=5)

        def reader():
            with lock.read():
                inside.append(1)
                barrier.wait()  # all three must be inside simultaneously

        ts = [threading.Thread(target=reader) for _ in range(3)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert len(inside) == 3

    def test_writer_excludes_readers_and_writers(self):
        lock = RWLock()
        log = []

        def writer(tag):
            with lock.write():
                log.append((tag, "in"))
                # a deliberately slow critical section: the exclusion test
                # lint: allow(blocking-under-mutex)
                time.sleep(0.02)
                log.append((tag, "out"))

        ts = [threading.Thread(target=writer, args=(i,)) for i in range(3)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        # write turns never interleave: in/out strictly alternate
        assert [kind for _, kind in log] == ["in", "out"] * 3

    def test_waiting_writer_blocks_new_readers(self):
        lock = RWLock()
        lock.acquire_read()
        writer_started = threading.Event()
        writer_done = threading.Event()
        reader_entered = threading.Event()

        def writer():
            writer_started.set()
            with lock.write():
                pass
            writer_done.set()

        def late_reader():
            with lock.read():
                reader_entered.set()

        wt = threading.Thread(target=writer)
        wt.start()
        writer_started.wait()
        # let the writer queue up behind the held read lock
        # lint: allow(blocking-under-mutex)
        time.sleep(0.02)
        rt = threading.Thread(target=late_reader)
        rt.start()
        # the late reader must NOT enter while a writer is waiting
        assert not reader_entered.wait(timeout=0.05)
        lock.release_read()
        wt.join(timeout=5)
        rt.join(timeout=5)
        assert writer_done.is_set() and reader_entered.is_set()

    def test_upgrade_is_exclusive_and_downgrades(self):
        lock = RWLock()
        witnessed = []

        def other_reader(started: threading.Event, release: threading.Event):
            with lock.read():
                started.set()
                release.wait(timeout=5)

        started, release = threading.Event(), threading.Event()
        t = threading.Thread(target=other_reader, args=(started, release))
        t.start()
        started.wait()
        lock.acquire_read()
        release.set()  # upgrade must wait for the other reader to drain
        with lock.upgrade():
            witnessed.append(lock._writer)
            assert lock._readers == 0
        # back to being a plain reader
        assert lock._readers == 1 and not lock._writer
        lock.release_read()
        t.join(timeout=5)
        assert witnessed == [True]

    def test_second_upgrader_gets_write_intent_error(self):
        lock = RWLock()
        lock.acquire_read()
        first_upgrading = threading.Event()
        proceed = threading.Event()
        errors = []

        def first():
            lock.acquire_read()
            try:
                # readers: main + this thread -> upgrade waits for main
                with lock._cond:
                    lock._upgrader = threading.get_ident()
                first_upgrading.set()
                proceed.wait(timeout=5)
            finally:
                with lock._cond:
                    lock._upgrader = None
                lock.release_read()

        t = threading.Thread(target=first)
        t.start()
        first_upgrading.wait()
        try:
            with lock.upgrade():
                pass  # pragma: no cover - must not be reached
        except WriteIntentError as exc:
            errors.append(exc)
        proceed.set()
        t.join(timeout=5)
        lock.release_read()
        assert len(errors) == 1

    def test_context_managers_release_on_error(self):
        lock = RWLock()
        with pytest.raises(RuntimeError):
            with lock.write():
                raise RuntimeError("boom")
        with pytest.raises(RuntimeError):
            with lock.read():
                raise RuntimeError("boom")
        # both sides fully released
        with lock.write():
            pass


class TestEngineSession:
    def make_engine(self, n=1500):
        engine = Engine(SimulatedDisk(16))
        base = random_intervals(n, seed=3, mean_length=12.0)
        engine.create_collection("base", base)
        return engine, base

    def test_query_matches_oracle_and_attributes_io(self):
        engine, base = self.make_engine()
        session = engine.session()
        q = Stab(500.0)
        res = session.query("base", q)
        assert {iv.uid for iv in res.records} == {
            iv.uid for iv in base if q.matches(iv)
        }
        assert res.ios > 0
        assert res.bound is not None
        assert session.stats.total == res.ios
        assert session.requests == 1

    def test_concurrent_readers_and_writers_stay_oracle_equivalent(self):
        engine, base = self.make_engine()
        errors = []

        def reader(tid):
            session = engine.session()
            try:
                for i in range(30):
                    q = Stab(10.0 + 30 * tid + i)
                    res = session.query("base", q)
                    got = {iv.uid for iv in res.records}
                    want = {iv.uid for iv in base if q.matches(iv)}
                    # writers only touch records far outside [0, 1000]
                    assert got == want, f"reader {tid} query {q}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def writer(tid):
            session = engine.session()
            try:
                for i in range(10):
                    iv = Interval(9000 + tid, 9002 + tid, payload=(tid, i))
                    session.insert("base", iv)
                    res = session.query("base", Stab(9001 + tid))
                    assert any(r.uid == iv.uid for r in res.records)
                    assert session.delete("base", iv).records == [True]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        ts = [threading.Thread(target=reader, args=(t,)) for t in range(6)]
        ts += [threading.Thread(target=writer, args=(t,)) for t in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert errors == []
        # all transient writes rolled back: the oracle is the base set
        session = engine.session()
        res = session.query("base", Stab(500.0))
        assert {iv.uid for iv in res.records} == {
            iv.uid for iv in base if Stab(500.0).matches(iv)
        }

    def test_per_session_attribution_under_concurrency(self):
        """Two sessions on one backend each measure exactly their own I/Os."""
        engine, base = self.make_engine()
        totals = {}
        barrier = threading.Barrier(2, timeout=10)

        def worker(tid):
            session = engine.session()
            barrier.wait()
            for i in range(20):
                session.query("base", Stab(100.0 * tid + i))
            totals[tid] = session.stats.total

        ts = [threading.Thread(target=worker, args=(t,)) for t in (1, 2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        # re-run each stream serially on a fresh engine: the attributed
        # totals must match the uncontended cost exactly
        engine2 = Engine(SimulatedDisk(16))
        engine2.create_collection(
            "base", random_intervals(1500, seed=3, mean_length=12.0))
        for tid in (1, 2):
            session = engine2.session()
            for i in range(20):
                session.query("base", Stab(100.0 * tid + i))
            assert totals[tid] == session.stats.total

    def test_delete_matching_upgrade_path(self):
        engine, _ = self.make_engine(n=300)
        session = engine.session()
        victims = session.query("base", Stab(400.0)).records
        removed = session.delete_matching("base", Stab(400.0))
        assert {r.uid for r in removed.records} == {r.uid for r in victims}
        assert session.query("base", Stab(400.0)).records == []

    def test_prepared_run_through_session(self):
        from repro import Param

        engine, base = self.make_engine()
        session = engine.session()
        prepared = session.prepare("base", Stab(Param("x")))
        res = session.run(prepared, x=250.0)
        assert {iv.uid for iv in res.records} == {
            iv.uid for iv in base if Stab(250.0).matches(iv)
        }
        assert res.from_cache is not None


class TestLockdepWitness:
    """The runtime lock-order witness: deliberate violations must fire."""

    def test_deliberate_out_of_order_acquisition_fires(self, witness):
        # thread-of-record order: A then B ...
        a = RWLock("latch:A")
        b = RWLock("latch:B")
        a.acquire_read()
        b.acquire_read()
        b.release_read()
        a.release_read()
        # ... and the reverse nesting closes the cycle: first occurrence
        # fails, even though no deadlock happened on *this* interleaving
        b.acquire_read()
        with pytest.raises(LockOrderError, match="cycle"):
            a.acquire_read()
        assert witness.violations

    def test_cross_thread_cycle_is_witnessed(self, witness):
        # the classic two-thread deadlock shape, run without overlap so it
        # cannot actually deadlock — the DAG still convicts it
        a = RWLock("latch:A")
        b = RWLock("latch:B")
        errors = []

        def forward():
            a.acquire_write()
            b.acquire_write()
            b.release_write()
            a.release_write()

        def backward():
            b.acquire_write()
            try:
                a.acquire_write()
            except LockOrderError as exc:
                errors.append(exc)
            else:
                a.release_write()
            b.release_write()

        t1 = threading.Thread(target=forward)
        t1.start()
        t1.join()
        t2 = threading.Thread(target=backward)
        t2.start()
        t2.join()
        assert len(errors) == 1

    def test_rank_inversion_fires(self):
        latch = RWLock("latch:X")
        mutex = WitnessedMutex("engine.write_mutex")
        latch.acquire_write()
        try:
            with pytest.raises(LockOrderError, match="rank inversion"):
                mutex.acquire()
        finally:
            latch.release_write()

    def test_latch_held_across_fsync_fires(self):
        latch = RWLock("latch:X", no_block=True)
        latch.acquire_read()
        try:
            with pytest.raises(BlockingUnderLockError):
                lockdep.notify_blocking("wal.sync_to")
        finally:
            latch.release_read()

    def test_allowed_scope_permits_barriers(self, witness):
        latch = RWLock("latch:X", no_block=True)
        latch.acquire_read()
        try:
            with lockdep.allowed("quiesced checkpoint"):
                lockdep.notify_blocking("backend.sync")
        finally:
            latch.release_read()
        assert witness.allowed_blocking_calls == 1
        assert witness.violations == []

    def test_reentrant_mutex_holds_do_not_self_cycle(self, witness):
        mutex = WitnessedMutex("engine.write_mutex")
        with mutex:
            with mutex:
                pass
        assert witness.violations == []

    def test_engine_commit_kernel_is_clean_and_witnessed(self, witness):
        engine = Engine(SimulatedDisk(16))
        engine.create_collection("t", random_intervals(50, seed=1))
        session = engine.session()
        session.insert("t", Interval(1.0, 5.0))
        session.query("t", Stab(2.0))
        session.delete_matching("t", Stab(2.0))
        assert ("engine.write_mutex", "latch:t") in witness.edges()
        assert witness.violations == []

    def test_witness_tolerates_unseen_releases(self, witness):
        # enabling mid-hold: a release for a lock the witness never saw
        # acquired must not poison the run
        witness.released("latch:never-acquired")
        assert witness.violations == []

    def test_nested_witness_enable_is_refused(self):
        with pytest.raises(RuntimeError, match="already enabled"):
            lockdep.enable(LockdepWitness())
