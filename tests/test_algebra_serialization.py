"""Algebra wire form: ``to_dict``/``from_dict`` round-trips every node.

Property-based (hypothesis): for randomly composed query trees over every
node type — leaves, combinators, modifiers, ``Param`` placeholders and the
geometric shapes — ``query_from_dict(q.to_dict())`` must preserve

* equality and :meth:`~repro.algebra.AlgebraicQuery.signature` (the plan
  cache key: a deserialized query must hit the same cached strategy), and
* ``matches`` semantics over arbitrary records (the oracle the serving
  layer's correctness rests on).

Plus JSON-serializability (the actual wire) and the documented rejection
of non-serializable operands.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.queries import (
    And,
    ClassRange,
    DiagonalCornerQuery,
    EndpointRange,
    Limit,
    Not,
    Or,
    OrderBy,
    Param,
    Range,
    Stab,
    ThreeSidedQuery,
    TwoSidedQuery,
    bind_params,
    query_from_dict,
    unbound_params,
)
from repro.interval import Interval
from repro.metablock.geometry import PlanarPoint, RangeQuery

# ----------------------------------------------------------------------- #
# strategies
# ----------------------------------------------------------------------- #
scalars = st.one_of(
    st.integers(min_value=-1000, max_value=1000),
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False),
)
operand = st.one_of(scalars, st.builds(Param, st.sampled_from("xyzw")))


def leaf_nodes(op):
    ordered = st.tuples(scalars, scalars).map(sorted)
    return st.one_of(
        st.builds(Stab, op),
        st.builds(Range, op, op, min_inclusive=st.booleans(),
                  max_inclusive=st.booleans()),
        st.builds(EndpointRange, st.sampled_from(["low", "high"]), op, op,
                  min_inclusive=st.booleans(), max_inclusive=st.booleans()),
        st.builds(ClassRange, st.sampled_from(["a", "b", "c"]), op, op),
        st.builds(DiagonalCornerQuery, scalars),
        st.builds(TwoSidedQuery, scalars, scalars),
        ordered.map(lambda lohi: ThreeSidedQuery(lohi[0], lohi[1], 0.0)),
        ordered.map(lambda lohi: RangeQuery(lohi[0], lohi[1], -5.0, 5.0)),
    )


def query_trees(op):
    return st.recursive(
        leaf_nodes(op),
        lambda children: st.one_of(
            st.lists(children, min_size=2, max_size=3).map(lambda ps: And(*ps)),
            st.lists(children, min_size=2, max_size=3).map(lambda ps: Or(*ps)),
            st.builds(Not, children),
            st.builds(Limit, children, st.integers(min_value=0, max_value=50)),
            st.builds(OrderBy, children,
                      st.sampled_from([None, "low", "high"]),
                      reverse=st.booleans()),
        ),
        max_leaves=6,
    )


records = st.one_of(
    st.tuples(scalars, scalars).map(
        lambda lh: Interval(min(lh), max(lh), payload="r")),
    st.builds(PlanarPoint, scalars, scalars),
    scalars,  # bare keys
)


# ----------------------------------------------------------------------- #
# the properties
# ----------------------------------------------------------------------- #
class TestRoundTripProperties:
    @settings(max_examples=200, deadline=None)
    @given(q=query_trees(st.one_of(scalars)))
    def test_round_trip_preserves_equality_and_signature(self, q):
        data = q.to_dict()
        json.dumps(data)  # must be actual wire material
        back = query_from_dict(data)
        assert back == q
        assert back.signature() == q.signature()

    @settings(max_examples=200, deadline=None)
    @given(q=query_trees(st.one_of(scalars)), record=records)
    def test_round_trip_preserves_matches(self, q, record):
        back = query_from_dict(q.to_dict())
        try:
            expected = q.matches(record)
        except (TypeError, AttributeError) as exc:
            # mixed-type comparisons / shape-specific nodes (geometric
            # queries expect point records) reject the record either way
            with pytest.raises(type(exc)):
                back.matches(record)
            return
        assert back.matches(record) == expected

    @settings(max_examples=150, deadline=None)
    @given(q=query_trees(operand))
    def test_round_trip_preserves_params(self, q):
        back = query_from_dict(q.to_dict())
        names = unbound_params(q)
        assert unbound_params(back) == names
        assert back.signature() == q.signature()
        if names:
            bindings = {name: 1.0 for name in names}
            assert bind_params(back, bindings) == bind_params(q, bindings)


class TestWireFormEdges:
    def test_param_wire_form(self):
        assert Param("x").to_dict() == {"node": "Param", "name": "x"}
        q = query_from_dict(Stab(Param("x")).to_dict())
        assert q == Stab(Param("x"))
        assert unbound_params(q) == {"x"}

    def test_class_range_drops_process_local_hierarchy(self):
        class FakeHierarchy:
            def descendants(self, name):
                return {name}

        q = ClassRange("c", 0, 9, hierarchy=FakeHierarchy())
        data = q.to_dict()
        assert "hierarchy" not in data
        assert query_from_dict(data) == ClassRange("c", 0, 9)

    def test_callable_order_by_key_is_rejected(self):
        q = OrderBy(Stab(1.0), key=lambda r: r.low)
        with pytest.raises(ValueError, match="not\\s+wire-serializable"):
            q.to_dict()

    def test_unknown_node_rejected(self):
        with pytest.raises(ValueError, match="unknown query node"):
            query_from_dict({"node": "Nonsense"})

    def test_malformed_node_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            query_from_dict({"node": "Range", "low": 1})  # missing high
        with pytest.raises(ValueError, match="malformed"):
            # ThreeSidedQuery validates x1 <= x2 in __post_init__
            query_from_dict({"node": "ThreeSidedQuery",
                             "x1": 5, "x2": 1, "y0": 0})

    def test_not_a_node_rejected(self):
        with pytest.raises(ValueError, match="not a serialized query"):
            query_from_dict({"low": 1, "high": 2})
        with pytest.raises(ValueError, match="not a serialized query"):
            query_from_dict([1, 2, 3])
