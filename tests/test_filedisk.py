"""Tests for the file-backed storage backend (``repro.io.filedisk``)."""

import os
import pickle

import pytest

from repro.io import FileDisk, SimulatedDisk, StorageBackend
from repro.btree import BPlusTree
from repro.pst import ExternalPST
from repro.metablock.geometry import PlanarPoint


@pytest.fixture
def fdisk(tmp_path):
    disk = FileDisk(str(tmp_path / "pages.bin"), block_size=4)
    yield disk
    disk.close()


class TestContract:
    def test_satisfies_storage_backend_protocol(self, fdisk):
        assert isinstance(fdisk, StorageBackend)
        assert isinstance(SimulatedDisk(4), StorageBackend)

    def test_round_trip_and_accounting(self, fdisk):
        block = fdisk.allocate(records=[1, 2], header={"leaf": True})
        assert fdisk.stats.writes == 1 and fdisk.stats.allocations == 1
        got = fdisk.read(block.block_id)
        assert got.records == [1, 2] and got.header == {"leaf": True}
        assert fdisk.stats.reads == 1

    def test_reads_return_fresh_copies_until_write(self, fdisk):
        block = fdisk.allocate(records=["a"])
        copy = fdisk.read(block.block_id)
        copy.records.append("b")                       # mutation not persisted
        assert fdisk.read(block.block_id).records == ["a"]
        fdisk.write(copy)                              # now it is
        assert fdisk.read(block.block_id).records == ["a", "b"]

    def test_capacity_enforced_on_write(self, fdisk):
        block = fdisk.allocate(records=[1, 2, 3, 4])
        block.records.append(5)
        with pytest.raises(ValueError):
            fdisk.write(block)

    def test_free_and_missing_blocks(self, fdisk):
        block = fdisk.allocate(records=[1])
        fdisk.free(block.block_id)
        assert fdisk.blocks_in_use == 0
        with pytest.raises(KeyError):
            fdisk.read(block.block_id)
        with pytest.raises(KeyError):
            fdisk.write(block)

    def test_measure_scopes_ios(self, fdisk):
        block = fdisk.allocate(records=[1])
        with fdisk.measure() as m:
            fdisk.read(block.block_id)
        assert m.ios == 1 and m.reads == 1

    def test_peek_costs_nothing(self, fdisk):
        block = fdisk.allocate(records=[7])
        before = fdisk.stats.total
        assert fdisk.peek(block.block_id).records == [7]
        assert fdisk.stats.total == before


class TestLifecycle:
    def test_compact_reclaims_superseded_versions(self, fdisk):
        block = fdisk.allocate(records=[0])
        for i in range(10):
            block.records = [i]
            fdisk.write(block)
        grown = fdisk.file_bytes
        reclaimed = fdisk.compact()
        assert reclaimed > 0 and fdisk.file_bytes < grown
        assert fdisk.read(block.block_id).records == [9]

    def test_temporary_file_cleanup(self):
        disk = FileDisk(block_size=4)
        path = disk.path
        assert os.path.exists(path)
        disk.close()
        assert not os.path.exists(path)
        with pytest.raises(ValueError):
            disk.read(0)

    def test_context_manager_closes(self, tmp_path):
        path = str(tmp_path / "x.bin")
        with FileDisk(path, block_size=4) as disk:
            disk.allocate(records=[1])
        assert os.path.exists(path)    # named files are kept

    def test_block_size_validation(self):
        with pytest.raises(ValueError):
            FileDisk(block_size=1)

    def test_refuses_to_truncate_existing_page_file(self, tmp_path):
        path = str(tmp_path / "precious.bin")
        with FileDisk(path, block_size=4) as disk:
            disk.allocate(records=[1, 2, 3])
        assert os.path.getsize(path) > 0
        with pytest.raises(ValueError, match="refusing to truncate"):
            FileDisk(path, block_size=4)
        assert os.path.getsize(path) > 0          # untouched
        with FileDisk(path, block_size=4, overwrite=True) as disk:
            assert disk.blocks_in_use == 0        # explicit opt-in truncates


class TestStructuresOnFileDisk:
    def test_btree_insert_search_delete(self, fdisk):
        tree = BPlusTree(fdisk, name="t")
        for i in range(200):
            tree.insert(i % 37, i)
        assert sorted(tree.search(5)) == sorted(v for v in range(200) if v % 37 == 5)
        assert tree.delete(5)
        assert len(tree.search(5)) == len([v for v in range(200) if v % 37 == 5]) - 1

    def test_pst_query_and_rebuild_insert(self, fdisk):
        pts = [PlanarPoint(i, 100 - i, payload=i) for i in range(60)]
        pst = ExternalPST(fdisk, pts)
        got = sorted(p.payload for p in pst.query_3sided(10, 20, 0))
        assert got == list(range(10, 21))
        pst.insert(PlanarPoint(15, 1000, payload="new"))
        got = sorted(str(p.payload) for p in pst.query_3sided(10, 20, 90))
        assert got == [str(v) for v in range(10, 11)] + ["new"]

    def test_identical_io_counts_across_backends(self, tmp_path):
        """The I/O *model* is backend-independent: counts must match exactly."""
        pairs = [(i, str(i)) for i in range(300)]
        sim = SimulatedDisk(8)
        fil = FileDisk(str(tmp_path / "pages.bin"), block_size=8)
        t1 = BPlusTree.bulk_load(sim, pairs)
        t2 = BPlusTree.bulk_load(fil, pairs)
        with sim.measure() as m1:
            r1 = t1.range_search(40, 160)
        with fil.measure() as m2:
            r2 = t2.range_search(40, 160)
        assert r1 == r2
        assert m1.ios == m2.ios
        fil.close()
