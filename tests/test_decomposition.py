"""Tests for label-edges (Lemma 4.5) and rake-and-contract (Lemma 4.6)."""

import math

import pytest

from repro.classes.decomposition import PathPiece, RakePiece, label_edges, rake_and_contract
from repro.classes.hierarchy import people_hierarchy
from repro.workloads import balanced_hierarchy, chain_hierarchy, random_hierarchy, star_hierarchy


HIERARCHIES = {
    "people": people_hierarchy(),
    "chain": chain_hierarchy(17),
    "star": star_hierarchy(33),
    "balanced": balanced_hierarchy(3, 2),
    "random-small": random_hierarchy(20, seed=1),
    "random-large": random_hierarchy(150, seed=2),
    "forest": random_hierarchy(40, seed=3, roots=4),
}


class TestLabelEdges:
    def test_thick_edge_goes_to_largest_subtree(self):
        h = people_hierarchy()
        labeling = label_edges(h)
        # Professor's subtree (2 classes) is larger than Student's (1)
        assert labeling.thick_child["Person"] == "Professor"
        assert labeling.thick_child["Professor"] == "AssistantProfessor"
        assert labeling.thick_child["Student"] is None

    def test_leaves_have_no_thick_child(self):
        h = random_hierarchy(30, seed=4)
        labeling = label_edges(h)
        for cls in h.classes():
            if h.is_leaf(cls):
                assert labeling.thick_child[cls] is None
            else:
                assert labeling.thick_child[cls] in h.children(cls)

    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    def test_lemma_45_thin_edges_bounded_by_log_c(self, shape):
        h = HIERARCHIES[shape]
        labeling = label_edges(h)
        c = len(h)
        bound = math.log2(c) if c > 1 else 0
        for cls in h.classes():
            assert labeling.thin_edge_count_to_root(cls, h) <= bound + 1e-9

    def test_chain_has_no_thin_edges(self):
        h = chain_hierarchy(25)
        labeling = label_edges(h)
        for cls in h.classes():
            assert labeling.thin_edge_count_to_root(cls, h) == 0

    def test_star_leaves_have_at_most_one_thin_edge(self):
        h = star_hierarchy(20)
        labeling = label_edges(h)
        thin_counts = {labeling.thin_edge_count_to_root(c, h) for c in h.classes()}
        assert thin_counts <= {0, 1}

    def test_is_thick_helper(self):
        h = people_hierarchy()
        labeling = label_edges(h)
        assert labeling.is_thick("Professor", h)
        assert not labeling.is_thick("Student", h)
        assert not labeling.is_thick("Person", h)  # roots have no parent edge


class TestRakeAndContract:
    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    def test_every_class_has_a_query_plan(self, shape):
        h = HIERARCHIES[shape]
        decomposition = rake_and_contract(h)
        assert set(decomposition.query_plan) == set(h.classes())

    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    def test_every_class_extent_is_stored_somewhere(self, shape):
        h = HIERARCHIES[shape]
        decomposition = rake_and_contract(h)
        for cls in h.classes():
            assert decomposition.copies_of_extent(cls) >= 1

    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    def test_lemma_46_copies_bounded_by_log_c(self, shape):
        h = HIERARCHIES[shape]
        decomposition = rake_and_contract(h)
        c = len(h)
        assert decomposition.max_copies() <= math.ceil(math.log2(c)) + 1 if c > 1 else 1

    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    def test_query_plans_cover_full_extents(self, shape):
        """The piece answering class C must contain the extents of all C's descendants."""
        h = HIERARCHIES[shape]
        decomposition = rake_and_contract(h)
        pieces = {p.piece_id: p for p in decomposition.pieces}
        for cls in h.classes():
            piece_id, position = decomposition.query_plan[cls]
            piece = pieces[piece_id]
            if isinstance(piece, RakePiece):
                covered = piece.classes
            else:
                covered = set()
                for pos in range(position, len(piece.nodes)):
                    covered |= piece.classes_per_node[pos]
            assert set(h.descendants(cls)) <= covered

    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    def test_query_plan_does_not_overcover(self, shape):
        """The covered classes are exactly the descendants (no foreign extents)."""
        h = HIERARCHIES[shape]
        decomposition = rake_and_contract(h)
        pieces = {p.piece_id: p for p in decomposition.pieces}
        for cls in h.classes():
            piece_id, position = decomposition.query_plan[cls]
            piece = pieces[piece_id]
            if isinstance(piece, RakePiece):
                covered = set(piece.classes)
            else:
                covered = set()
                for pos in range(position, len(piece.nodes)):
                    covered |= piece.classes_per_node[pos]
            assert covered == set(h.descendants(cls))

    def test_chain_contracts_to_one_path(self):
        decomposition = rake_and_contract(chain_hierarchy(9))
        assert len(decomposition.pieces) == 1
        piece = decomposition.pieces[0]
        assert isinstance(piece, PathPiece)
        assert piece.nodes == [f"D{i}" for i in range(9)]

    def test_star_rakes_leaves_then_handles_root(self):
        decomposition = rake_and_contract(star_hierarchy(12))
        rakes = [p for p in decomposition.pieces if isinstance(p, RakePiece)]
        assert len(rakes) >= 10
        # the root's piece must cover every class
        root_piece_id, _ = decomposition.query_plan["Sroot"]
        piece = next(p for p in decomposition.pieces if p.piece_id == root_piece_id)
        covered = (
            piece.classes
            if isinstance(piece, RakePiece)
            else set().union(*piece.classes_per_node)
        )
        assert len(covered) == 12

    def test_extent_locations_are_consistent_with_pieces(self):
        h = random_hierarchy(50, seed=9)
        decomposition = rake_and_contract(h)
        pieces = {p.piece_id: p for p in decomposition.pieces}
        for cls, locations in decomposition.extent_locations.items():
            for piece_id, position in locations:
                piece = pieces[piece_id]
                if isinstance(piece, RakePiece):
                    assert position is None
                    assert cls in piece.classes
                else:
                    assert 0 <= position < len(piece.nodes)
                    assert cls in piece.classes_per_node[position]

    def test_paths_follow_thick_edges(self):
        h = random_hierarchy(80, seed=10)
        labeling = label_edges(h)
        decomposition = rake_and_contract(h, labeling)
        for piece in decomposition.pieces:
            if isinstance(piece, PathPiece):
                for parent, child in zip(piece.nodes, piece.nodes[1:]):
                    assert h.parent(child) == parent
                    assert labeling.thick_child[parent] == child
