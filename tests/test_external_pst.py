"""Tests for the blocked priority search tree (Lemma 4.1)."""

import random

import pytest

from repro.analysis.complexity import external_pst_query_bound, linear_space_bound
from repro.io import SimulatedDisk
from repro.metablock.geometry import PlanarPoint, ThreeSidedQuery
from repro.pst import ExternalPST

from tests.conftest import brute_three_sided, make_points


class TestConstruction:
    def test_empty(self, disk):
        pst = ExternalPST(disk, [])
        assert len(pst) == 0
        assert pst.query_3sided(0, 10, 0) == []
        assert pst.block_count() == 0

    def test_single_point(self, disk):
        pst = ExternalPST(disk, [PlanarPoint(5, 7)])
        assert len(pst.query_3sided(0, 10, 0)) == 1
        assert pst.query_3sided(6, 10, 0) == []
        assert pst.query_3sided(0, 10, 8) == []

    def test_space_is_linear(self):
        B = 16
        for n in (500, 4_000):
            disk = SimulatedDisk(block_size=B)
            pst = ExternalPST(disk, make_points(n, seed=n))
            assert pst.block_count() <= 2 * linear_space_bound(n, B) + 2

    def test_heap_property_every_node_dominates_descendants(self):
        disk = SimulatedDisk(block_size=4)
        pst = ExternalPST(disk, make_points(300, seed=1))

        def check(block_id):
            if block_id is None:
                return
            block = disk.peek(block_id)
            min_y = block.header["min_y"]
            for child_key in ("left", "right"):
                child_id = block.header[child_key]
                if child_id is not None:
                    child = disk.peek(child_id)
                    assert all(p.y <= min_y for p in child.records)
                    check(child_id)

        check(pst.root_id)

    def test_destroy_frees_blocks(self, disk):
        before = disk.blocks_in_use
        pst = ExternalPST(disk, make_points(100, seed=2))
        assert disk.blocks_in_use > before
        pst.destroy()
        assert disk.blocks_in_use == before


class TestQueryCorrectness:
    @pytest.mark.parametrize("block_size,n", [(4, 300), (8, 800), (16, 1500)])
    def test_three_sided_matches_brute_force(self, block_size, n):
        disk = SimulatedDisk(block_size)
        pts = make_points(n, seed=n, domain=(0.0, 100.0))
        pst = ExternalPST(disk, pts)
        rnd = random.Random(n)
        for _ in range(40):
            x1 = rnd.uniform(-5, 100)
            x2 = x1 + rnd.uniform(0, 50)
            y0 = rnd.uniform(-5, 105)
            got = sorted((p.x, p.y) for p in pst.query_3sided(x1, x2, y0))
            assert got == brute_three_sided(pts, x1, x2, y0)

    def test_query_object_interface(self, disk):
        pts = make_points(100, seed=3, domain=(0.0, 50.0))
        pst = ExternalPST(disk, pts)
        q = ThreeSidedQuery(10, 30, 25)
        assert sorted((p.x, p.y) for p in pst.query(q)) == brute_three_sided(pts, 10, 30, 25)

    def test_two_sided_query(self, disk):
        pts = make_points(200, seed=4, domain=(0.0, 50.0))
        pst = ExternalPST(disk, pts)
        got = sorted((p.x, p.y) for p in pst.query_2sided(25, 25))
        assert got == sorted((p.x, p.y) for p in pts if p.x <= 25 and p.y >= 25)

    def test_duplicate_x_values(self, disk):
        pts = [PlanarPoint(5.0, float(i), payload=i) for i in range(100)]
        pst = ExternalPST(disk, pts)
        assert len(pst.query_3sided(5, 5, 50)) == 50
        assert len(pst.query_3sided(4, 6, 0)) == 100
        assert pst.query_3sided(6, 7, 0) == []


class TestIOBounds:
    """Lemma 4.1: O(log2 n + t/B) I/Os per 3-sided query."""

    def test_small_output_query_cost(self):
        B = 16
        n = 8_000
        disk = SimulatedDisk(block_size=B)
        pts = make_points(n, seed=5)
        pst = ExternalPST(disk, pts)
        y_top = max(p.y for p in pts)
        with disk.measure() as m:
            out = pst.query_3sided(0, 1000, y_top - 1e-9)
        assert len(out) <= 2
        assert m.ios <= 6 * external_pst_query_bound(n, B, len(out))

    def test_large_output_scales_with_t_over_b(self):
        B = 16
        n = 8_000
        disk = SimulatedDisk(block_size=B)
        pts = make_points(n, seed=6)
        pst = ExternalPST(disk, pts)
        with disk.measure() as m:
            out = pst.query_3sided(0, 1000, 0)
        assert len(out) == n
        assert m.ios <= 4 * (n / B) + 20
