"""Tests for the augmented (semi-dynamic) metablock tree (Section 3.2, Theorem 3.7)."""

import random

import pytest

from repro.analysis.complexity import linear_space_bound, metablock_insert_bound
from repro.io import SimulatedDisk
from repro.metablock import AugmentedMetablockTree
from repro.metablock.geometry import PlanarPoint

from tests.conftest import brute_diagonal, make_interval_points


class TestInsertCorrectness:
    def test_insert_into_empty_tree(self, tiny_disk):
        tree = AugmentedMetablockTree(tiny_disk)
        tree.insert(PlanarPoint(1, 5))
        assert len(tree) == 1
        assert [(p.x, p.y) for p in tree.diagonal_query(3)] == [(1, 5)]

    def test_inserted_points_visible_immediately(self, tiny_disk):
        tree = AugmentedMetablockTree(tiny_disk)
        pts = make_interval_points(50, seed=1)
        for i, p in enumerate(pts):
            tree.insert(p)
            q = p.x
            assert (p.x, p.y) in {(r.x, r.y) for r in tree.diagonal_query(q)}
        assert len(tree) == 50

    @pytest.mark.parametrize("block_size,n", [(4, 800), (6, 1200), (8, 1500)])
    def test_incremental_build_matches_brute_force(self, block_size, n):
        disk = SimulatedDisk(block_size)
        tree = AugmentedMetablockTree(disk)
        pts = make_interval_points(n, seed=n)
        rnd = random.Random(n)
        for i, p in enumerate(pts):
            tree.insert(p)
            if i % (n // 6) == (n // 6) - 1:
                tree.check_invariants()
                for _ in range(6):
                    q = rnd.uniform(-20, 1300)
                    got = sorted((r.x, r.y) for r in tree.diagonal_query(q))
                    assert got == brute_diagonal(pts[: i + 1], q)

    def test_bulk_load_then_insert(self):
        disk = SimulatedDisk(block_size=5)
        initial = make_interval_points(400, seed=7)
        tree = AugmentedMetablockTree(disk, initial)
        extra = make_interval_points(400, seed=8)
        pts = list(initial)
        rnd = random.Random(0)
        for p in extra:
            tree.insert(p)
            pts.append(p)
        tree.check_invariants()
        for _ in range(25):
            q = rnd.uniform(-20, 1300)
            assert sorted((r.x, r.y) for r in tree.diagonal_query(q)) == brute_diagonal(pts, q)

    def test_sorted_insertion_order(self, tiny_disk):
        tree = AugmentedMetablockTree(tiny_disk)
        pts = [PlanarPoint(float(i), float(i + 3), payload=i) for i in range(300)]
        for p in pts:
            tree.insert(p)
        tree.check_invariants()
        for q in (0.0, 100.5, 299.0, 302.9, 303.1):
            assert sorted((r.x, r.y) for r in tree.diagonal_query(q)) == brute_diagonal(pts, q)

    def test_reverse_sorted_insertion_order(self, tiny_disk):
        tree = AugmentedMetablockTree(tiny_disk)
        pts = [PlanarPoint(float(i), float(i + 3), payload=i) for i in reversed(range(300))]
        for p in pts:
            tree.insert(p)
        tree.check_invariants()
        for q in (0.0, 150.5, 299.0):
            assert sorted((r.x, r.y) for r in tree.diagonal_query(q)) == brute_diagonal(pts, q)

    def test_duplicate_points(self, tiny_disk):
        tree = AugmentedMetablockTree(tiny_disk)
        pts = [PlanarPoint(10.0, 20.0, payload=i) for i in range(100)]
        for p in pts:
            tree.insert(p)
        assert len(tree.diagonal_query(15.0)) == 100

    def test_insert_many_helper(self, tiny_disk):
        tree = AugmentedMetablockTree(tiny_disk)
        pts = make_interval_points(60, seed=2)
        tree.insert_many(pts)
        assert len(tree) == 60

    def test_deletions_tombstone_the_stabbing_structure(self, tiny_disk):
        """The metablock tree itself stays insert-only (as in the paper);
        the manager layers uid tombstones + global rebuilds on top."""
        from repro.core import ExternalIntervalManager
        from repro.interval import Interval

        stored = Interval(0, 1)
        manager = ExternalIntervalManager(tiny_disk, [stored])
        assert not hasattr(manager._stabbing, "delete")
        assert manager.delete(stored) is True
        assert manager.stabbing_query(0.5) == []


class TestReorganisations:
    def test_leaf_splits_keep_all_points(self):
        disk = SimulatedDisk(block_size=4)
        tree = AugmentedMetablockTree(disk)
        pts = make_interval_points(200, seed=3)  # >> 2B^2 = 32 forces splits
        for p in pts:
            tree.insert(p)
        tree.check_invariants()
        assert len(tree) == 200
        assert sorted((p.x, p.y) for p in tree.all_points()) == sorted((p.x, p.y) for p in pts)

    def test_metablock_sizes_stay_bounded(self):
        disk = SimulatedDisk(block_size=4)
        tree = AugmentedMetablockTree(disk)
        for p in make_interval_points(1000, seed=4):
            tree.insert(p)
        cap = 4 * 4
        for mb in tree.iter_metablocks():
            assert len(mb.points) <= 2 * cap + 4

    def test_branching_factor_stays_bounded(self):
        disk = SimulatedDisk(block_size=4)
        tree = AugmentedMetablockTree(disk)
        for p in make_interval_points(1500, seed=5):
            tree.insert(p)
        for mb in tree.iter_metablocks():
            assert len(mb.children) <= 2 * 4 + 1

    def test_update_blocks_stay_small(self):
        disk = SimulatedDisk(block_size=4)
        tree = AugmentedMetablockTree(disk)
        for p in make_interval_points(500, seed=6):
            tree.insert(p)
        for mb in tree.iter_metablocks():
            assert len(mb.update_points) <= 4

    def test_no_leaked_blocks_after_reorganisations(self):
        """Every block still allocated belongs to some live structure."""
        disk = SimulatedDisk(block_size=4)
        tree = AugmentedMetablockTree(disk)
        for p in make_interval_points(600, seed=7):
            tree.insert(p)
        # the accounted block count must not exceed what the disk has live,
        # and the disk must not hold more than a constant factor extra
        accounted = tree.block_count()
        assert accounted <= disk.blocks_in_use
        assert disk.blocks_in_use <= accounted * 1.2 + 10


class TestIOBounds:
    """Theorem 3.7: queries stay optimal, inserts amortize to ~log_B n."""

    def test_space_stays_linear_after_inserts(self):
        B = 8
        n = 4_000
        disk = SimulatedDisk(block_size=B)
        tree = AugmentedMetablockTree(disk)
        for p in make_interval_points(n, seed=8):
            tree.insert(p)
        assert disk.blocks_in_use <= 20 * linear_space_bound(n, B)

    def test_amortized_insert_io_is_polylogarithmic(self):
        B = 16
        n = 3_000
        disk = SimulatedDisk(block_size=B)
        tree = AugmentedMetablockTree(disk, make_interval_points(n, seed=9))
        extra = make_interval_points(500, seed=10)
        with disk.measure() as m:
            for p in extra:
                tree.insert(p)
        per_insert = m.ios / len(extra)
        assert per_insert <= 30 * metablock_insert_bound(n, B)

    def test_queries_remain_cheap_after_many_inserts(self):
        B = 16
        disk = SimulatedDisk(block_size=B)
        tree = AugmentedMetablockTree(disk)
        pts = make_interval_points(5_000, seed=11, mean_length=2.0)
        for p in pts:
            tree.insert(p)
        q = max(p.y for p in pts) - 1e-9
        with disk.measure() as m:
            out = tree.diagonal_query(q)
        assert len(out) <= 2
        assert m.ios <= 60  # ~ c * (log_B n + 1) with a generous constant
