"""End-to-end integration tests combining several subsystems.

These scenarios mirror the three example applications shipped in
``examples/`` and make sure the public API composes the way the README
advertises.
"""

import random

import pytest

import repro
from repro import (
    ClassHierarchy,
    ClassIndexer,
    ClassObject,
    ExternalIntervalManager,
    Interval,
    SimulatedDisk,
)
from repro.classes.hierarchy import people_hierarchy
from repro.constraints import GeneralizedOneDimensionalIndex
from repro.constraints.rectangles import intersecting_pairs, rectangle_relation
from repro.workloads import random_class_objects, random_intervals


class TestPublicAPI:
    def test_version_and_exports(self):
        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_snippet_from_readme(self):
        disk = SimulatedDisk(block_size=16)
        manager = ExternalIntervalManager(disk, [Interval(1, 5), Interval(3, 9)])
        assert sorted((iv.low, iv.high) for iv in manager.stabbing_query(4)) == [(1, 5), (3, 9)]


class TestTemporalDatabaseScenario:
    """Indexing validity intervals of versioned records (constraint indexing use case)."""

    def test_versioned_record_lookup(self):
        rnd = random.Random(0)
        disk = SimulatedDisk(block_size=16)
        history = []
        for record_id in range(300):
            start = rnd.uniform(0, 900)
            history.append(Interval(start, start + rnd.uniform(1, 80), payload=f"v{record_id}"))
        manager = ExternalIntervalManager(disk, history)

        # "which record versions were valid at time 400?"
        alive = manager.stabbing_query(400.0)
        assert sorted(iv.payload for iv in alive) == sorted(
            iv.payload for iv in history if iv.contains(400.0)
        )

        # appending new versions keeps queries consistent
        fresh = Interval(399.0, 401.0, payload="hotfix")
        manager.insert(fresh)
        assert "hotfix" in {iv.payload for iv in manager.stabbing_query(400.0)}

        # audit query: everything overlapping a reporting window
        window = manager.intersection_query(100.0, 200.0)
        expected = [iv for iv in history if iv.intersects_range(100.0, 200.0)]
        assert len(window) == len(expected)

    def test_io_cost_tracked_per_query(self):
        disk = SimulatedDisk(block_size=16)
        manager = ExternalIntervalManager(disk, random_intervals(2000, seed=1))
        with disk.measure() as m:
            manager.stabbing_query(500.0)
        assert m.ios > 0
        assert m.ios < 2000 / 16  # far below a full scan


class TestPeopleDatabaseScenario:
    """Example 2.3/2.4: salary queries against class full extents."""

    def test_salary_queries_across_schemes(self):
        hierarchy = people_hierarchy()
        rnd = random.Random(1)
        objects = []
        for i in range(400):
            cls = rnd.choice(hierarchy.classes())
            objects.append(ClassObject(rnd.uniform(10_000, 200_000), cls, payload=f"person{i}"))

        answers = {}
        for method in ClassIndexer.methods():
            index = ClassIndexer(SimulatedDisk(16), hierarchy, objects, method=method)
            result = index.query("Professor", 50_000, 60_000)
            answers[method] = sorted(o.payload for o in result)
        # every scheme gives the same answer
        assert len(set(map(tuple, answers.values()))) == 1
        wanted = {"Professor", "AssistantProfessor"}
        expected = sorted(
            o.payload for o in objects if o.class_name in wanted and 50_000 <= o.key <= 60_000
        )
        assert answers["simple"] == expected

    def test_new_hires_are_queryable(self):
        hierarchy = people_hierarchy()
        index = ClassIndexer(SimulatedDisk(8), hierarchy, [], method="combined")
        index.insert(ClassObject(85_000.0, "AssistantProfessor", payload="ada"))
        index.insert(ClassObject(95_000.0, "Student", payload="grace"))
        assert [o.payload for o in index.query("Professor", 80_000, 90_000)] == ["ada"]
        assert sorted(o.payload for o in index.query("Person", 0, 1e6)) == ["ada", "grace"]


class TestSpatialConstraintScenario:
    """Example 2.1: rectangle data stored as generalized tuples."""

    def test_indexed_rectangle_join_matches_naive(self):
        rnd = random.Random(2)
        rects = []
        for i in range(80):
            a, b = rnd.uniform(0, 200), rnd.uniform(0, 200)
            rects.append((f"rect{i}", a, b, a + rnd.uniform(1, 30), b + rnd.uniform(1, 30)))
        relation = rectangle_relation(rects)
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(16), relation, "x")
        naive_pairs = set(map(frozenset, intersecting_pairs(relation)))
        indexed_pairs = set(map(frozenset, intersecting_pairs(relation, index)))
        assert naive_pairs == indexed_pairs

    def test_range_restriction_returns_generalized_relation(self):
        relation = rectangle_relation([("a", 0, 0, 10, 10), ("b", 50, 50, 60, 60)])
        index = GeneralizedOneDimensionalIndex(SimulatedDisk(8), relation, "x")
        restricted = index.range_query(5, 20)
        assert {gt.name for gt in restricted} == {"a"}
        assert restricted.contains_point({"x": 7, "y": 3})
        assert not restricted.contains_point({"x": 55, "y": 55})


class TestMixedWorkloadScenario:
    def test_objects_and_intervals_share_a_disk(self):
        """Several indexes can coexist on one simulated disk with shared accounting."""
        disk = SimulatedDisk(block_size=16)
        hierarchy = people_hierarchy()
        objects = random_class_objects(hierarchy, 300, seed=3)
        intervals = random_intervals(300, seed=4)

        class_index = ClassIndexer(disk, hierarchy, objects, method="simple")
        interval_index = ExternalIntervalManager(disk, intervals)

        with disk.measure() as m:
            class_index.query("Person", 100, 300)
            interval_index.stabbing_query(250.0)
        assert m.ios > 0
        assert disk.blocks_in_use >= class_index.block_count()
