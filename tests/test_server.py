"""The serving subsystem end to end: protocol, server, client, driver.

An in-process :class:`ReproServer` (background thread) is driven through
real sockets by :class:`ReproClient` — the full wire path, minus the
subprocess boundary the benchmark adds.  Covers the whole command
surface, oracle-equivalence under concurrent clients, prepared-handle
leases and their invalidation semantics, structured errors, per-session
stats and graceful shutdown.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro import Engine, Interval, Param, SimulatedDisk, Stab
from repro.engine.queries import EndpointRange, Range
from repro.server import (
    ProtocolError,
    ReproClient,
    ReproServer,
    ServerError,
    decode_message,
    encode_message,
    record_from_dict,
    record_to_dict,
)
from repro.workloads import random_intervals


@pytest.fixture
def server():
    engine = Engine(SimulatedDisk(16))
    with ReproServer(engine) as srv:
        yield srv


@pytest.fixture
def client(server):
    with ReproClient(*server.address) as db:
        yield db


def make_base(client, n=400, seed=7):
    local = random_intervals(n, seed=seed, mean_length=15.0)
    client.create("base", records=[])
    return client.bulk_load("base", local)


class TestProtocolCodecs:
    def test_message_framing_round_trip(self):
        msg = {"id": 3, "cmd": "query", "index": "x"}
        assert decode_message(encode_message(msg)) == msg

    def test_decode_rejects_garbage(self):
        with pytest.raises(ProtocolError):
            decode_message(b"not json\n")
        with pytest.raises(ProtocolError):
            decode_message(b"[1, 2]\n")

    def test_record_round_trip_preserves_identity(self):
        iv = Interval(1.5, 9.0, payload={"k": "v"})
        back = record_from_dict(record_to_dict(iv))
        assert back == iv and back.uid == iv.uid and back.payload == iv.payload

    def test_record_fresh_uid_mints_new_identity(self):
        iv = Interval(1.0, 2.0)
        fresh = record_from_dict(record_to_dict(iv), fresh_uid=True)
        assert fresh.uid != iv.uid
        assert (fresh.low, fresh.high) == (iv.low, iv.high)


class TestServerCommands:
    def test_ping(self, client):
        response = client.ping()
        assert response["pong"] and response["version"] == 1

    def test_query_matches_oracle_with_accounting(self, client):
        base = make_base(client)
        q = Stab(321.0)
        res = client.query("base", q)
        assert {r.uid for r in res.records} == {
            r.uid for r in base if q.matches(r)
        }
        assert res.ios > 0 and res.bound is not None
        assert res.stats["total"] == res.ios

    def test_composed_query_over_the_wire(self, client):
        base = make_base(client)
        q = (Stab(300.0) | Stab(700.0)) & ~EndpointRange("low", 0, 250.0)
        res = client.query("base", q)
        assert {r.uid for r in res.records} == {
            r.uid for r in base if q.matches(r)
        }

    def test_insert_returns_authoritative_record(self, client):
        make_base(client, n=10)
        stored = client.insert("base", Interval(2000.0, 2001.0, payload="x"))
        hit = client.query("base", Stab(2000.5))
        assert [r.uid for r in hit.records] == [stored.uid]
        assert client.delete("base", stored)["removed"] == 1
        assert client.query("base", Stab(2000.5)).records == []

    def test_delete_by_query_selector(self, client):
        base = make_base(client)
        q = Range(100.0, 140.0)
        expected = {r.uid for r in base if q.matches(r)}
        response = client.delete("base", q=q)
        assert response["removed"] == len(expected)
        assert client.query("base", q).records == []

    def test_bulk_load_and_explain(self, client):
        client.create("ivs", records=[])
        stored = client.bulk_load("ivs", [Interval(i, i + 2) for i in range(40)])
        assert len(stored) == 40
        plan = client.explain("ivs", Stab(5.0))
        assert plan["kind"] == "index"
        assert plan["predicted"] > 0
        assert "Index(" in plan["describe"]

    def test_stats_reports_session_and_global(self, client):
        make_base(client, n=50)
        client.query("base", Stab(1.0))
        stats = client.stats()
        assert stats["session"]["requests"] >= 3
        assert stats["engine"]["blocks"] > 0
        assert str(stats["session"]["id"]) in stats["sessions"]

    def test_unknown_index_is_structured(self, client):
        with pytest.raises(ServerError) as info:
            client.query("nope", Stab(1.0))
        assert info.value.code == "unknown_index"

    def test_unknown_command_and_malformed_query(self, server):
        with ReproClient(*server.address) as db:
            with pytest.raises(ValueError):
                db.call("frobnicate")
        # a raw socket can still send garbage; the server answers, structured
        with socket.create_connection(server.address, timeout=10) as raw:
            raw.sendall(b'{"id": 1, "cmd": "frobnicate"}\n')
            response = decode_message(raw.makefile("rb").readline())
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"

    def test_duplicate_insert_is_conflict(self, client):
        make_base(client, n=5)
        stored = client.insert("base", Interval(1.0, 2.0))
        # deleting twice: second is a no-op, not an error
        assert client.delete("base", stored)["removed"] == 1
        assert client.delete("base", stored)["removed"] == 0


class TestPreparedHandles:
    def test_prepare_run_with_params(self, client):
        base = make_base(client)
        handle = client.prepare("base", Stab(Param("x")))
        assert handle.params == ["x"]
        for x in (100.0, 500.0, 900.0):
            res = handle.run(x=x)
            assert {r.uid for r in res.records} == {
                r.uid for r in base if Stab(x).matches(r)
            }
        assert res.from_cache is True

    def test_bad_binding_is_bad_request_not_stale(self, client):
        make_base(client, n=20)
        handle = client.prepare("base", Stab(Param("x")))
        with pytest.raises(ServerError) as info:
            handle.run(y=1.0)
        assert info.value.code == "bad_request"
        # and the lease is still alive afterwards
        assert handle.run(x=1.0).records is not None

    def test_unknown_handle_is_stale(self, client):
        make_base(client, n=20)
        with pytest.raises(ServerError) as info:
            client.run(999, x=1.0)
        assert info.value.code == "stale_handle"

    def test_handles_are_leased_per_connection(self, server, client):
        make_base(client, n=20)
        handle = client.prepare("base", Stab(Param("x")))
        with ReproClient(*server.address) as other:
            with pytest.raises(ServerError) as info:
                other.run(handle.handle, x=1.0)
            assert info.value.code == "stale_handle"

    def test_write_invalidation_replans_transparently(self, client):
        base = make_base(client)
        handle = client.prepare("base", Stab(Param("x")))
        assert handle.run(x=500.0).from_cache is True
        client.bulk_load("base", [Interval(495.0, 505.0, payload="fresh")])
        res = handle.run(x=500.0)
        assert res.from_cache is False  # generation bump forced a re-plan
        assert any(r.payload == "fresh" for r in res.records)

    def test_dropped_index_surfaces_stale_handle(self, client):
        make_base(client, n=20)
        handle = client.prepare("base", Stab(Param("x")))
        client.drop("base")
        with pytest.raises(ServerError) as info:
            handle.run(x=1.0)
        assert info.value.code == "stale_handle"
        # the connection survives the structured failure
        assert client.ping()["pong"]

    def test_recreated_index_also_invalidates(self, client):
        make_base(client, n=20)
        handle = client.prepare("base", Stab(Param("x")))
        client.drop("base")
        client.create("base", records=[Interval(0.0, 1.0)])
        with pytest.raises(ServerError) as info:
            handle.run(x=0.5)
        assert info.value.code == "stale_handle"


class TestConcurrentClients:
    def test_many_clients_oracle_equivalent(self, server):
        with ReproClient(*server.address) as setup:
            base = make_base(setup, n=800)
        errors = []

        def reader(tid):
            try:
                with ReproClient(*server.address) as db:
                    handle = db.prepare("base", Stab(Param("x")))
                    for i in range(15):
                        x = 50.0 * tid + i * 3
                        res = handle.run(x=x)
                        got = {r.uid for r in res.records}
                        want = {r.uid for r in base if Stab(x).matches(r)}
                        assert got == want, f"tid={tid} x={x}"
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def writer(tid):
            try:
                with ReproClient(*server.address) as db:
                    for i in range(8):
                        stored = db.insert(
                            "base", Interval(5000 + tid, 5001 + tid))
                        res = db.query("base", Stab(5000.5 + tid))
                        assert any(r.uid == stored.uid for r in res.records)
                        assert db.delete("base", stored)["removed"] == 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        ts = [threading.Thread(target=reader, args=(t,)) for t in range(4)]
        ts += [threading.Thread(target=writer, args=(t,)) for t in range(2)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert errors == []

    def test_per_request_bounds_hold_under_concurrency(self, server):
        from repro.engine.planner import BOUND_SLACK, BOUND_SLACK_PAGES

        with ReproClient(*server.address) as setup:
            make_base(setup, n=1000)
        violations = []

        def reader(tid):
            with ReproClient(*server.address) as db:
                for i in range(20):
                    res = db.query("base", Stab(40.0 * tid + i))
                    if res.bound is not None and (
                        res.ios > BOUND_SLACK * res.bound + BOUND_SLACK_PAGES
                    ):
                        violations.append((tid, i, res.ios, res.bound))

        ts = [threading.Thread(target=reader, args=(t,)) for t in range(4)]
        for t in ts:
            t.start()
        for t in ts:
            t.join()
        assert violations == []


class TestLifecycle:
    def test_graceful_shutdown_over_the_wire(self):
        engine = Engine(SimulatedDisk(16))
        server = ReproServer(engine).start()
        with ReproClient(*server.address) as db:
            assert db.shutdown()["stopping"] is True
        server._thread.join(timeout=5)
        assert not server._thread.is_alive()
        server.close()

    def test_close_engine_ownership(self):
        engine = Engine(SimulatedDisk(16))
        server = ReproServer(engine, close_engine=True).start()
        server.close()
        # closing again is a no-op; the engine survived (memory backend)
        server.close()

    def test_driver_smoke_in_process(self):
        """The concurrent workload driver against an in-process server."""
        from repro.workloads import concurrent as C

        engine = Engine(SimulatedDisk(16))
        with ReproServer(engine) as server:
            host, port = server.address
            payload = C.run_matrix(
                host, port, n=250, queries=5, thread_counts=(1, 2),
                write_ops=3, think_ms=0.5,
            )
        assert payload["summary"]["oracle_ok"], payload
        assert payload["summary"]["bound_ok"], payload
        names = {row["name"] for row in payload["scenarios"]}
        assert {"stab/read-only", "endpoint/read-only",
                "mixed/insert-query-delete",
                "shared/snapshot-consistency"} <= names
        assert C.gate_failures(payload) == []
