"""Unit tests for the simulated disk (the I/O cost model substrate)."""

import pytest

from repro.io import Block, IOStats, SimulatedDisk


class TestAllocation:
    def test_allocate_returns_block_with_capacity(self, disk):
        block = disk.allocate([1, 2, 3])
        assert isinstance(block, Block)
        assert block.capacity == disk.block_size
        assert block.records == [1, 2, 3]

    def test_allocate_counts_one_write(self, disk):
        before = disk.stats.writes
        disk.allocate([1])
        assert disk.stats.writes == before + 1
        assert disk.stats.allocations == 1

    def test_allocate_rejects_overfull_payload(self, disk):
        with pytest.raises(ValueError):
            disk.allocate(list(range(disk.block_size + 1)))

    def test_allocate_with_custom_capacity(self, disk):
        block = disk.allocate(list(range(20)), capacity=32)
        assert block.capacity == 32

    def test_block_ids_are_unique(self, disk):
        ids = {disk.allocate([]).block_id for _ in range(50)}
        assert len(ids) == 50

    def test_free_releases_block(self, disk):
        block = disk.allocate([1])
        disk.free(block.block_id)
        assert disk.blocks_in_use == 0
        with pytest.raises(KeyError):
            disk.read(block.block_id)

    def test_free_is_idempotent(self, disk):
        block = disk.allocate([1])
        disk.free(block.block_id)
        disk.free(block.block_id)
        assert disk.stats.frees == 1


class TestReadWrite:
    def test_read_counts_one_io(self, disk):
        block = disk.allocate([1, 2])
        before = disk.stats.reads
        disk.read(block.block_id)
        assert disk.stats.reads == before + 1

    def test_write_counts_one_io(self, disk):
        block = disk.allocate([1])
        block.records.append(2)
        before = disk.stats.writes
        disk.write(block)
        assert disk.stats.writes == before + 1

    def test_write_rejects_overfull_block(self, disk):
        block = disk.allocate([])
        block.records = list(range(disk.block_size + 1))
        with pytest.raises(ValueError):
            disk.write(block)

    def test_read_unknown_block_raises(self, disk):
        with pytest.raises(KeyError):
            disk.read(999)

    def test_write_unknown_block_raises(self, disk):
        block = Block(block_id=123456, capacity=4, records=[])
        with pytest.raises(KeyError):
            disk.write(block)

    def test_peek_does_not_count_io(self, disk):
        block = disk.allocate([1])
        before = disk.stats.total
        disk.peek(block.block_id)
        assert disk.stats.total == before

    def test_roundtrip_preserves_records(self, disk):
        block = disk.allocate(["a", "b"])
        block.records.append("c")
        disk.write(block)
        assert disk.read(block.block_id).records == ["a", "b", "c"]


class TestMeasurement:
    def test_measure_scopes_io_counts(self, disk):
        block = disk.allocate([1])
        with disk.measure() as m:
            disk.read(block.block_id)
            disk.read(block.block_id)
        assert m.ios == 2
        assert m.reads == 2
        assert m.writes == 0

    def test_measure_ignores_outside_ios(self, disk):
        block = disk.allocate([1])
        with disk.measure() as m:
            disk.read(block.block_id)
        disk.read(block.block_id)
        assert m.ios == 1

    def test_stats_snapshot_and_diff(self, disk):
        first = disk.stats.snapshot()
        disk.allocate([1])
        diff = disk.stats.diff(first)
        assert diff.writes == 1
        assert diff.allocations == 1

    def test_stats_reset(self, disk):
        disk.allocate([1])
        disk.stats.reset()
        assert disk.stats.total == 0

    def test_total_is_reads_plus_writes(self):
        stats = IOStats(reads=3, writes=4)
        assert stats.total == 7


class TestValidation:
    def test_block_size_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            SimulatedDisk(block_size=1)

    def test_blocks_in_use_tracks_allocations_and_frees(self, disk):
        blocks = [disk.allocate([]) for _ in range(5)]
        assert disk.blocks_in_use == 5
        disk.free(blocks[0].block_id)
        assert disk.blocks_in_use == 4
        assert set(disk.block_ids()) == {b.block_id for b in blocks[1:]}

    def test_block_overfull_constructor_check(self):
        with pytest.raises(ValueError):
            Block(block_id=0, capacity=2, records=[1, 2, 3])

    def test_block_is_full_property(self, disk):
        block = disk.allocate(list(range(disk.block_size)))
        assert block.is_full
        assert len(block) == disk.block_size
