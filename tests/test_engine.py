"""Tests for the ``repro.engine`` layer.

Covers the acceptance criteria of the engine redesign:

* property-based equivalence of ``Engine`` query results against the
  in-core naive baselines, on every storage backend, through both the
  streaming and the batch (``query_many``) APIs;
* laziness: a ``QueryResult`` performs no I/O before iteration starts and
  attributes its I/Os per query;
* the uniform ``Index`` protocol is satisfied by every index kind;
* pre-redesign top-level imports still work.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    ClassHierarchy,
    ClassObject,
    ClassRange,
    Engine,
    FileDisk,
    Index,
    Interval,
    QueryResult,
    Range,
    SimulatedDisk,
    Stab,
)
from repro.incore.naive import NaiveIntervalIndex

B = 8


def _backends(tmp_path):
    return {
        "memory": SimulatedDisk(block_size=B),
        "file": FileDisk(str(tmp_path / "pages.bin"), block_size=B),
    }


def _payloads(intervals):
    return sorted(iv.payload for iv in intervals)


# --------------------------------------------------------------------------- #
# property-based equivalence vs the naive baseline, all backends
# --------------------------------------------------------------------------- #
interval_lists = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=100, allow_nan=False),
        st.floats(min_value=0, max_value=20, allow_nan=False),
    ),
    min_size=0,
    max_size=60,
)
probes = st.floats(min_value=-5, max_value=110, allow_nan=False)


@settings(max_examples=25, deadline=None)
@given(data=interval_lists, q=probes, width=st.floats(min_value=0, max_value=30))
def test_interval_queries_match_naive_on_all_backends(tmp_path_factory, data, q, width):
    intervals = [Interval(lo, lo + w, payload=i) for i, (lo, w) in enumerate(data)]
    naive = NaiveIntervalIndex(intervals)
    want_stab = _payloads(naive.stabbing_query(q))
    want_range = _payloads(naive.intersection_query(q, q + width))

    tmp = tmp_path_factory.mktemp("engine")
    for kind, backend in _backends(tmp).items():
        with Engine(backend) as engine:
            engine.create_interval_index("ivs", intervals)
            got_stab = _payloads(engine.query("ivs", Stab(q)))
            got_range = _payloads(engine.query("ivs", Range(q, q + width)))
            assert got_stab == want_stab, f"stabbing mismatch on {kind}"
            assert got_range == want_range, f"intersection mismatch on {kind}"


@settings(max_examples=10, deadline=None)
@given(data=interval_lists, extra=interval_lists)
def test_dynamic_inserts_match_naive_on_all_backends(tmp_path_factory, data, extra):
    base = [Interval(lo, lo + w, payload=i) for i, (lo, w) in enumerate(data)]
    added = [Interval(lo, lo + w, payload=1000 + i) for i, (lo, w) in enumerate(extra)]
    naive = NaiveIntervalIndex(base)

    tmp = tmp_path_factory.mktemp("engine")
    engines = {k: Engine(b) for k, b in _backends(tmp).items()}
    for engine in engines.values():
        engine.create_interval_index("ivs", base)
    for iv in added:
        naive.insert(iv)
        for engine in engines.values():
            engine.insert("ivs", iv)
    for q in (0.0, 25.0, 50.0, 99.0):
        want = _payloads(naive.stabbing_query(q))
        for kind, engine in engines.items():
            assert _payloads(engine.query("ivs", Stab(q))) == want, kind
    for engine in engines.values():
        engine.close()


@pytest.mark.parametrize("backend_kind", ["memory", "file"])
@pytest.mark.parametrize("method", ["simple", "combined", "single", "extent", "full-extent"])
def test_class_queries_match_brute_force(tmp_path, backend_kind, method):
    rnd = random.Random(11)
    hierarchy = ClassHierarchy()
    hierarchy.add_class("Root")
    for name in "ABCD":
        hierarchy.add_class(name, "Root")
    hierarchy.add_class("A1", "A")
    classes = ["Root", "A", "B", "C", "D", "A1"]
    objects = [
        ClassObject(rnd.uniform(0, 100), rnd.choice(classes), payload=i) for i in range(150)
    ]
    backend = _backends(tmp_path)[backend_kind]
    with Engine(backend) as engine:
        engine.create_class_index("people", hierarchy, objects, method=method)
        for cls in ("Root", "A", "A1", "D"):
            lo = rnd.uniform(0, 80)
            hi = lo + 25
            wanted = set(hierarchy.descendants(cls))
            want = sorted(
                o.payload for o in objects if o.class_name in wanted and lo <= o.key <= hi
            )
            got = sorted(o.payload for o in engine.query("people", ClassRange(cls, lo, hi)))
            assert got == want, (backend_kind, method, cls)


@settings(max_examples=25, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=0, max_value=50), min_size=0, max_size=80),
    lo=st.integers(min_value=-5, max_value=55),
    width=st.integers(min_value=0, max_value=20),
    min_inc=st.booleans(),
    max_inc=st.booleans(),
)
def test_key_index_range_matches_descriptor_oracle(keys, lo, width, min_inc, max_inc):
    """B+-tree range semantics (incl. per-bound inclusivity) match the
    ``Range.matches_key`` oracle the descriptor itself defines."""
    engine = Engine(block_size=B)
    engine.create_key_index("kv", [(k, f"v{i}") for i, k in enumerate(keys)])
    q = Range(lo, lo + width, min_inclusive=min_inc, max_inclusive=max_inc)
    got = sorted(k for k, _ in engine.query("kv", q))
    want = sorted(k for k in keys if q.matches_key(k))
    assert got == want
    if keys:
        probe = Stab(keys[0])
        assert sorted(engine.query("kv", probe).all()) == sorted(
            f"v{i}" for i, k in enumerate(keys) if k == probe.x
        )


@settings(max_examples=15, deadline=None)
@given(data=interval_lists, q=probes)
def test_stab_descriptor_oracle_matches_index(data, q):
    """``Stab.matches_interval`` is the oracle for interval stabbing."""
    intervals = [Interval(lo, lo + w, payload=i) for i, (lo, w) in enumerate(data)]
    engine = Engine(block_size=B)
    engine.create_interval_index("ivs", intervals)
    descriptor = Stab(q)
    want = sorted(iv.payload for iv in intervals if descriptor.matches_interval(iv.low, iv.high))
    assert _payloads(engine.query("ivs", descriptor)) == want


# --------------------------------------------------------------------------- #
# laziness and per-query accounting
# --------------------------------------------------------------------------- #
def test_query_result_is_lazy():
    intervals = [Interval(float(i), float(i + 10), payload=i) for i in range(200)]
    engine = Engine(block_size=B)
    engine.create_interval_index("ivs", intervals)
    before = engine.io_stats().snapshot()

    result = engine.query("ivs", Stab(57.0))
    batch = engine.query_many(("ivs", Stab(float(x))) for x in range(0, 100, 10))

    # building results performed no I/O at all
    assert engine.io_stats().diff(before).total == 0
    assert result.ios == 0 and not result.started
    assert all(r.ios == 0 for r in batch)

    hits = result.all()
    assert hits and result.started and result.exhausted
    assert result.ios > 0
    assert result.bound is not None

    # re-iterating replays the cache without new I/O
    ios_after_first_drain = result.ios
    assert list(result) == hits
    assert result.ios == ios_after_first_drain


def test_query_result_reraises_mid_stream_errors_on_reiteration():
    def boom():
        yield 1
        raise RuntimeError("mid-stream failure")

    result = QueryResult(boom)
    with pytest.raises(RuntimeError):
        result.all()
    # the failure must not be swallowed into an "empty tail" on replay
    with pytest.raises(RuntimeError):
        list(result)
    assert not result.exhausted


def test_duplicate_index_name_rejected_before_allocation():
    engine = Engine(block_size=B)
    engine.create_interval_index("ivs", [Interval(0, 1)])
    blocks_before = engine.disk.blocks_in_use
    with pytest.raises(ValueError):
        engine.create_interval_index("ivs", [Interval(float(i), float(i + 1)) for i in range(100)])
    assert engine.disk.blocks_in_use == blocks_before


def test_streaming_first_hit_costs_less_than_full_drain():
    intervals = [Interval(float(i % 50), float(i % 50 + 30), payload=i) for i in range(2000)]
    engine = Engine(block_size=B)
    engine.create_interval_index("ivs", intervals)

    full = engine.query("ivs", Stab(40.0))
    n_hits = len(full.all())
    assert n_hits > 100

    first = engine.query("ivs", Stab(40.0))
    assert first.first() is not None
    assert 0 < first.ios < full.ios


def test_per_query_accounting_is_isolated_in_batches():
    intervals = [Interval(float(i), float(i + 5), payload=i) for i in range(500)]
    engine = Engine(block_size=B)
    engine.create_interval_index("ivs", intervals)
    r1, r2 = engine.query_many([("ivs", Stab(100.0)), ("ivs", Stab(400.0))])

    # interleave the two streams; each result must still count only its own I/Os
    it1, it2 = iter(r1), iter(r2)
    for _ in range(3):
        next(it1, None)
        next(it2, None)
    list(it1)
    list(it2)
    with engine.measure() as m:
        pass
    total = r1.ios + r2.ios
    separate = Engine(block_size=B)
    separate.create_interval_index("ivs", intervals)
    s1 = separate.query("ivs", Stab(100.0))
    s1.all()
    s2 = separate.query("ivs", Stab(400.0))
    s2.all()
    assert r1.ios == s1.ios
    assert r2.ios == s2.ios
    assert total == s1.ios + s2.ios
    assert m.ios == 0


# --------------------------------------------------------------------------- #
# the uniform Index protocol
# --------------------------------------------------------------------------- #
def test_all_index_kinds_satisfy_the_protocol():
    from repro import GeneralizedRelation, GeneralizedTuple, Constraint, var

    engine = Engine(block_size=B)
    hierarchy = ClassHierarchy()
    hierarchy.add_class("Root")

    x = var("x")
    relation = GeneralizedRelation(
        ["x"], [GeneralizedTuple([Constraint(x, ">=", 0), Constraint(x, "<=", 5)], name="t0")]
    )
    from repro.metablock.geometry import PlanarPoint

    indexes = [
        engine.create_interval_index("a", [Interval(0, 1)]),
        engine.create_class_index("b", hierarchy, [ClassObject(1.0, "Root")]),
        engine.create_constraint_index("c", relation, "x"),
        engine.create_point_index("d", [PlanarPoint(1, 2)]),
        engine.create_key_index("e", [(1, "one")]),
    ]
    for index in indexes:
        assert isinstance(index, Index), type(index).__name__
        assert index.block_count() >= 1
        assert index.io_stats() is engine.io_stats()


def test_engine_namespace_and_errors(tmp_path):
    engine = Engine(block_size=B)
    engine.create_interval_index("ivs", [Interval(0, 1)])
    assert "ivs" in engine and engine.names() == ["ivs"]
    assert engine["ivs"] is engine.index("ivs")
    with pytest.raises(ValueError):
        engine.create_interval_index("ivs")
    with pytest.raises(KeyError):
        engine.query("nope", Stab(0))
    with pytest.raises(TypeError):
        engine.query("ivs", ClassRange("Root", 0, 1)).all()
    engine.drop_index("ivs")
    assert "ivs" not in engine


# --------------------------------------------------------------------------- #
# back-compat: the pre-engine surface still works unchanged
# --------------------------------------------------------------------------- #
def test_pre_redesign_imports_and_constructors_still_work():
    from repro import (
        BPlusTree,
        BufferManager,
        ClassIndexer,
        ExternalIntervalManager,
        ExternalPST,
        IOStats,
        SimulatedDisk,
        StaticMetablockTree,
    )

    disk = SimulatedDisk(block_size=B)
    manager = ExternalIntervalManager(disk, [Interval(1, 5), Interval(3, 9)])
    assert sorted((iv.low, iv.high) for iv in manager.stabbing_query(4)) == [(1, 5), (3, 9)]
    assert isinstance(manager.stabbing_query(4), list)
    assert isinstance(manager.intersection_query(0, 10), list)

    tree = BPlusTree.bulk_load(disk, [(i, i) for i in range(30)])
    assert tree.range_search(5, 10) == [(k, k) for k in range(5, 11)]
    assert tree.range_search(5, 10, min_inclusive=False) == [(k, k) for k in range(6, 11)]
    assert tree.range_search(5, 10, max_inclusive=False) == [(k, k) for k in range(5, 10)]

    # ExternalPST.query now returns a QueryResult, but list-style callers
    # (equality, indexing, emptiness checks) keep working
    from repro import ThreeSidedQuery
    from repro.metablock.geometry import PlanarPoint

    pst = ExternalPST(disk, [PlanarPoint(1, 10, payload="a")])
    result = pst.query(ThreeSidedQuery(0, 5, 0))
    assert result == [PlanarPoint(1, 10)]       # payload not part of equality
    assert result[0].payload == "a"
    assert pst.query(ThreeSidedQuery(2, 5, 0)) == []
