"""Tests for the external interval manager (Proposition 2.2 + Section 3)."""

import random

import pytest

from repro.analysis.complexity import linear_space_bound, metablock_query_bound
from repro.core import ExternalIntervalManager
from repro.incore import NaiveIntervalIndex
from repro.interval import Interval
from repro.io import SimulatedDisk

from tests.conftest import make_intervals


class TestCorrectness:
    @pytest.mark.parametrize("dynamic", [True, False])
    def test_stabbing_matches_brute_force(self, dynamic):
        intervals = make_intervals(600, seed=1)
        disk = SimulatedDisk(8)
        manager = ExternalIntervalManager(disk, intervals, dynamic=dynamic)
        naive = NaiveIntervalIndex(intervals)
        rnd = random.Random(1)
        for _ in range(40):
            q = rnd.uniform(-20, 1100)
            expected = sorted((iv.low, iv.high) for iv in naive.stabbing_query(q))
            got = sorted((iv.low, iv.high) for iv in manager.stabbing_query(q))
            assert got == expected

    @pytest.mark.parametrize("dynamic", [True, False])
    def test_intersection_matches_brute_force(self, dynamic):
        intervals = make_intervals(600, seed=2)
        manager = ExternalIntervalManager(SimulatedDisk(8), intervals, dynamic=dynamic)
        naive = NaiveIntervalIndex(intervals)
        rnd = random.Random(2)
        for _ in range(40):
            lo = rnd.uniform(-20, 1100)
            hi = lo + rnd.uniform(0, 150)
            expected = sorted((iv.low, iv.high) for iv in naive.intersection_query(lo, hi))
            got = sorted((iv.low, iv.high) for iv in manager.intersection_query(lo, hi))
            assert got == expected

    def test_no_interval_reported_twice(self):
        intervals = make_intervals(400, seed=3)
        manager = ExternalIntervalManager(SimulatedDisk(8), intervals)
        out = manager.intersection_query(200, 600)
        assert len(out) == len({id(iv) for iv in out})

    def test_incremental_inserts(self):
        intervals = make_intervals(700, seed=4)
        manager = ExternalIntervalManager(SimulatedDisk(8), intervals[:300], dynamic=True)
        for iv in intervals[300:]:
            manager.insert(iv)
        assert len(manager) == 700
        rnd = random.Random(4)
        naive = NaiveIntervalIndex(intervals)
        for _ in range(25):
            q = rnd.uniform(-20, 1100)
            assert sorted((iv.low, iv.high) for iv in manager.stabbing_query(q)) == sorted(
                (iv.low, iv.high) for iv in naive.stabbing_query(q)
            )

    def test_point_intervals(self):
        intervals = [Interval(float(i), float(i), payload=i) for i in range(100)]
        manager = ExternalIntervalManager(SimulatedDisk(4), intervals)
        assert [iv.payload for iv in manager.stabbing_query(42.0)] == [42]
        assert manager.stabbing_query(42.5) == []
        assert sorted(iv.payload for iv in manager.intersection_query(10.0, 12.0)) == [10, 11, 12]

    def test_empty_manager(self):
        manager = ExternalIntervalManager(SimulatedDisk(8), [])
        assert manager.stabbing_query(1) == []
        assert manager.intersection_query(0, 10) == []

    def test_reversed_query_range(self):
        manager = ExternalIntervalManager(SimulatedDisk(8), make_intervals(50, seed=5))
        assert manager.intersection_query(10, 5) == []

    def test_static_manager_rejects_insert(self):
        manager = ExternalIntervalManager(SimulatedDisk(8), [], dynamic=False)
        with pytest.raises(NotImplementedError):
            manager.insert(Interval(0, 1))

    def test_delete_removes_exactly_the_record_asked_for(self):
        stored = Interval(0, 1)
        twin = Interval(0, 1)  # value-identical, different uid
        manager = ExternalIntervalManager(SimulatedDisk(8), [stored])
        assert manager.delete(twin) is False  # uid mismatch: nothing removed
        assert manager.stabbing_query(0.5) == [stored]
        assert manager.delete(stored) is True
        assert manager.stabbing_query(0.5) == []
        assert manager.delete(stored) is False  # already gone
        assert manager.live_count == 0

    def test_intervals_accessor(self):
        intervals = make_intervals(20, seed=6)
        manager = ExternalIntervalManager(SimulatedDisk(8), intervals)
        assert sorted((iv.low, iv.high) for iv in manager.intervals()) == sorted(
            (iv.low, iv.high) for iv in intervals
        )


class TestIOBehaviour:
    def test_space_is_linear(self):
        B = 16
        n = 5_000
        manager = ExternalIntervalManager(
            SimulatedDisk(B), make_intervals(n, seed=7), dynamic=False
        )
        assert manager.block_count() <= 15 * linear_space_bound(n, B)

    def test_stabbing_query_io_within_bound(self):
        B = 16
        n = 10_000
        disk = SimulatedDisk(B)
        intervals = make_intervals(n, seed=8, mean_length=20.0)
        manager = ExternalIntervalManager(disk, intervals, dynamic=False)
        rnd = random.Random(8)
        for _ in range(10):
            q = rnd.uniform(0, 1000)
            with disk.measure() as m:
                out = manager.stabbing_query(q)
            assert m.ios <= 15 * metablock_query_bound(n, B, len(out))

    def test_beats_naive_scan_for_selective_queries(self):
        """The headline comparison of experiment E4."""
        B = 16
        n = 5_000
        disk = SimulatedDisk(B)
        intervals = make_intervals(n, seed=9, mean_length=5.0)
        manager = ExternalIntervalManager(disk, intervals, dynamic=False)
        # naive external scan cost: one read per block of intervals
        naive_blocks = -(-n // B)
        with disk.measure() as m:
            manager.stabbing_query(500.0)
        assert m.ios < naive_blocks / 5
