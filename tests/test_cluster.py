"""The sharded serving subsystem: topology, router, frontend, lifecycle.

Thread-mode clusters (real loopback sockets, no subprocess boundary)
exercise the full scatter-gather wire path fast; one process-mode smoke
covers the production shape end to end.  Every routed answer is checked
against the brute-force oracle — a client must not be able to tell a
cluster from a single server, which is the tentpole invariant.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro import Engine, Interval, Param, SimulatedDisk, Stab
from repro.cluster import Cluster, ShardMap, mix_uid
from repro.durability.wal import WriteAheadLog
from repro.engine.queries import And, EndpointRange, Limit, Not, Or, OrderBy, Range
from repro.server import ReproClient, ReproServer, ServerError
from repro.workloads import random_intervals


def oracle_uids(records, q):
    return {r.uid for r in records if q.matches(r)}


def shapes(records):
    """Identity-free comparison form: a sorted list of (low, high)."""
    return sorted((r.low, r.high) for r in records)


@pytest.fixture
def hash_cluster():
    with Cluster.create(None, shards=3, strategy="hash", mode="thread") as cluster:
        yield cluster


@pytest.fixture
def hash_db(hash_cluster):
    with ReproClient(*hash_cluster.address) as db:
        yield db


# --------------------------------------------------------------------------- #
# ShardMap: placement + pruning, pure data
# --------------------------------------------------------------------------- #
class TestShardMap:
    def test_even_splits_cover_the_domain(self):
        m = ShardMap.even_splits(4, domain=(0.0, 100.0))
        assert m.splits == [25.0, 50.0, 75.0]
        assert m.shard_for_point(-5) == 0          # edge slabs reach infinity
        assert m.shard_for_point(999) == 3

    def test_split_point_record_belongs_to_the_right_shard(self):
        m = ShardMap(2, "range", splits=[50.0])
        assert m.shard_for_point(49.999) == 0
        assert m.shard_for_point(50.0) == 1        # bisect_right: never ambiguous
        assert m.shard_for_record(Interval(50.0, 60.0)) == 1

    def test_hash_placement_is_deterministic_across_maps(self):
        records = random_intervals(50, seed=3)
        a = ShardMap(4, "hash")
        b = ShardMap(4, "hash")
        assert [a.shard_for_record(r) for r in records] == [
            b.shard_for_record(r) for r in records
        ]
        # splitmix64 is seed-free: a fixed uid always lands the same way
        assert mix_uid(12345) == mix_uid(12345)
        assert mix_uid(1) != mix_uid(2)

    def test_catalog_round_trip_preserves_topology(self):
        m = ShardMap(3, "range", splits=[10.0, 20.0], max_length=7.5)
        back = ShardMap.from_dict(m.as_dict())
        assert back.shards == 3 and back.strategy == "range"
        assert back.splits == [10.0, 20.0] and back.max_length == 7.5
        hashed = ShardMap.from_dict(ShardMap(2, "hash").as_dict())
        assert hashed.strategy == "hash" and hashed.splits == []

    def test_note_records_grows_the_pruning_window(self):
        m = ShardMap.even_splits(2, domain=(0.0, 100.0))
        assert m.note_records([Interval(0, 30)]) is True
        assert m.max_length == 30.0
        assert m.note_records([Interval(5, 10)]) is False   # no growth, no persist
        assert m.max_length == 30.0

    def test_stab_window_prunes_to_the_overlapping_slabs(self):
        m = ShardMap.even_splits(4, domain=(0.0, 100.0), max_length=10.0)
        # low endpoint of any match for Stab(30) lies in [20, 30]: slabs 0+1
        assert m.shards_for_query(Stab(30.0)) == [0, 1]
        assert m.shards_for_query(Stab(99.0)) == [3]
        assert m.shards_for_query(Range(40.0, 60.0)) == [1, 2]
        assert m.shards_for_query(EndpointRange("low", 26.0, 49.0)) == [1]

    def test_algebra_windows_compose(self):
        m = ShardMap.even_splits(4, domain=(0.0, 100.0), max_length=5.0)
        assert m.shards_for_query(And(Stab(10.0), Stab(90.0))) == []  # empty ∩
        both = m.shards_for_query(Or(Stab(10.0), Stab(90.0)))        # hull
        assert both[0] == 0 and both[-1] == 3
        assert m.shards_for_query(Limit(OrderBy(Stab(99.0)), 3)) == [3]
        assert m.shards_for_query(Not(Stab(10.0))) == [0, 1, 2, 3]   # broadcast
        assert m.shards_for_query(Stab(Param("x"))) == [0, 1, 2, 3]  # unbound

    def test_hash_and_single_shard_always_broadcast(self):
        assert ShardMap(3, "hash").shards_for_query(Stab(1.0)) == [0, 1, 2]
        one = ShardMap(1, "range", splits=[])
        assert one.shards_for_query(Stab(1.0)) == [0]

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ShardMap(0, "hash")
        with pytest.raises(ValueError):
            ShardMap(2, "zones")
        with pytest.raises(ValueError):
            ShardMap(2, "range")                      # needs splits
        with pytest.raises(ValueError):
            ShardMap(3, "range", splits=[1.0])        # wrong count
        with pytest.raises(ValueError):
            ShardMap(3, "range", splits=[2.0, 1.0])   # unsorted
        with pytest.raises(ValueError):
            ShardMap(2, "hash", splits=[1.0])


# --------------------------------------------------------------------------- #
# the router through the wire (thread-mode clusters)
# --------------------------------------------------------------------------- #
class TestClusterServing:
    def test_ping_reports_the_cluster_shape(self, hash_db):
        response = hash_db.ping()
        assert response["pong"]
        assert response["cluster"] == {"shards": 3, "strategy": "hash"}

    def test_single_shard_cluster_matches_a_plain_server(self):
        records = random_intervals(200, seed=11, mean_length=12.0)
        queries = [Stab(25.0), Range(10.0, 40.0), EndpointRange("high", 30.0, 80.0),
                   Limit(OrderBy(Stab(50.0)), 5)]
        engine = Engine(SimulatedDisk(16))
        with ReproServer(engine) as srv, ReproClient(*srv.address) as plain:
            plain.create("base", records=[])
            plain.bulk_load("base", records)
            plain_answers = [shapes(plain.query("base", q).records) for q in queries]
        with Cluster.create(None, shards=1, strategy="hash", mode="thread") as one:
            with ReproClient(*one.address) as db:
                db.create("base", records=[])
                db.bulk_load("base", records)
                for q, expected in zip(queries, plain_answers):
                    res = db.query("base", q)
                    assert shapes(res.records) == expected
                    assert res.raw["shards_contacted"] == 1

    def test_scattered_reads_match_the_oracle(self, hash_db):
        local = random_intervals(300, seed=4, mean_length=15.0)
        hash_db.create("base", records=[])
        stored = hash_db.bulk_load("base", local)
        assert len({r.uid for r in stored}) == len(stored)  # cluster-unique uids
        for q in (Stab(20.0), Stab(77.5), Range(30.0, 35.0),
                  EndpointRange("low", 10.0, 60.0), And(Stab(50.0), Stab(52.0))):
            res = hash_db.query("base", q)
            assert {r.uid for r in res.records} == oracle_uids(stored, q)
            assert res.raw["shards_contacted"] == 3      # hash reads broadcast

    def test_orderby_limit_merge_is_globally_ordered(self, hash_db):
        hash_db.create("base", records=[])
        stored = hash_db.bulk_load(
            "base", [Interval(float(i), float(i + 3)) for i in range(40)]
        )
        res = hash_db.query("base", Limit(OrderBy(Range(0.0, 100.0)), 6))
        lows = [r.low for r in res.records]
        assert lows == sorted(lows) and len(lows) == 6
        expected = sorted(r.low for r in stored)[:6]
        assert lows == expected                           # not per-shard prefixes

    def test_insert_and_delete_route_by_owner(self, hash_db):
        hash_db.create("base", records=[])
        stored = hash_db.insert("base", Interval(5.0, 9.0, payload="x"))
        assert oracle_uids([stored], Stab(6.0)) == {stored.uid}
        res = hash_db.query("base", Stab(6.0))
        assert {r.uid for r in res.records} == {stored.uid}
        removed = hash_db.delete("base", stored)
        assert removed["removed"] == 1
        assert hash_db.query("base", Stab(6.0)).count == 0

    def test_capped_delete_by_query_never_overdeletes(self, hash_db):
        hash_db.create("base", records=[])
        hash_db.bulk_load("base", [Interval(0.0, 10.0) for _ in range(12)])
        first = hash_db.delete("base", q=Stab(5.0), limit=5)
        assert first["removed"] == 5                      # across 3 shards
        rest = hash_db.delete("base", q=Stab(5.0), limit=100)
        assert rest["removed"] == 7
        assert hash_db.query("base", Stab(5.0)).count == 0

    def test_broadcast_union_dedupes_by_uid(self, hash_cluster, hash_db):
        hash_db.create("base", records=[])
        stored = hash_db.insert("base", Interval(1.0, 2.0))
        # plant the same identity on a *different* shard behind the router's
        # back (keep_uids is the shard-side trust the router relies on)
        owner = hash_cluster.shard_map.shard_for_record(stored)
        other = next(s for s in range(3) if s != owner)
        handle = hash_cluster.supervisor.handles[other]
        with ReproClient(handle.host, handle.port) as backdoor:
            backdoor.call(
                "insert", index="base",
                record={"kind": "interval", "low": 1.0, "high": 2.0,
                        "uid": stored.uid},
                keep_uids=True,
            )
        res = hash_db.query("base", Stab(1.5))
        assert [r.uid for r in res.records] == [stored.uid]   # once, not twice

    def test_explain_reports_the_scatter_plan(self, hash_db):
        hash_db.create("base", records=[Interval(0.0, 5.0)])
        plan = hash_db.explain("base", Stab(1.0))
        assert plan["shards"] == 3
        assert plan["describe"].startswith("cluster[3/3 shards]")

    def test_stats_aggregate_engines_and_namespace_sessions(self, hash_db):
        hash_db.create("base", records=[])
        hash_db.bulk_load("base", random_intervals(60, seed=2))
        hash_db.query("base", Stab(10.0))
        stats = hash_db.stats()
        engine = stats["engine"]
        assert engine["block_size"] == 16 and "base" in engine["indexes"]
        assert engine["blocks"] > 0 and engine["uid_horizon"] >= 0
        assert all(sid.startswith("s") and ":" in sid for sid in stats["sessions"])
        cluster = stats["cluster"]
        assert cluster["topology"]["shards"] == 3
        assert cluster["routing"]["reads"] >= 1
        assert cluster["routing"]["writes"] >= 1   # bulk_load (create is namespace)
        assert len(cluster["shards"]) == 3
        assert stats["session"]["requests"] >= 1

    def test_unknown_index_is_structured(self, hash_db):
        with pytest.raises(ServerError) as err:
            hash_db.query("ghost", Stab(1.0))
        assert err.value.code == "unknown_index"


class TestPreparedLeases:
    def test_prepare_bind_run_round_trip(self, hash_db):
        hash_db.create("base", records=[])
        stored = hash_db.bulk_load("base", random_intervals(100, seed=9))
        handle = hash_db.prepare("base", Stab(Param("x")))
        assert handle.params == ["x"]
        for x in (10.0, 55.0, 90.0):
            res = handle.run(x=x)
            assert {r.uid for r in res.records} == oracle_uids(stored, Stab(x))

    def test_bad_params_are_bad_request(self, hash_db):
        hash_db.create("base", records=[])
        handle = hash_db.prepare("base", Stab(Param("x")))
        with pytest.raises(ServerError) as err:
            handle.run(y=1.0)                    # wrong name: strict binding
        assert err.value.code == "bad_request"

    def test_prepare_against_a_missing_index(self, hash_db):
        with pytest.raises(ServerError) as err:
            hash_db.prepare("ghost", Stab(Param("x")))
        assert err.value.code == "unknown_index"

    def test_run_after_drop_is_stale(self, hash_db):
        hash_db.create("base", records=[])
        handle = hash_db.prepare("base", Stab(Param("x")))
        hash_db.drop("base")
        with pytest.raises(ServerError) as err:
            handle.run(x=1.0)
        assert err.value.code == "stale_handle"

    def test_unknown_handle_is_stale(self, hash_db):
        with pytest.raises(ServerError) as err:
            hash_db.run(999, x=1.0)
        assert err.value.code == "stale_handle"


# --------------------------------------------------------------------------- #
# range partitioning: boundaries, pruning, empty shards
# --------------------------------------------------------------------------- #
class TestRangeCluster:
    def test_split_point_records_answer_exactly_once(self):
        with Cluster.create(None, shards=4, strategy="range",
                            domain=(0.0, 100.0), mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[])
                # one record exactly on every split point
                splits = cluster.shard_map.splits
                stored = db.bulk_load(
                    "base", [Interval(s, s + 4.0) for s in splits]
                )
                for s in splits:
                    res = db.query("base", Stab(s + 0.5))
                    matches = oracle_uids(stored, Stab(s + 0.5))
                    assert {r.uid for r in res.records} == matches

    def test_pruned_stabs_contact_few_shards_and_stay_exact(self):
        with Cluster.create(None, shards=4, strategy="range",
                            domain=(0.0, 100.0), mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[])
                # lengths below one slab width keep the candidate window small
                local = [Interval(low, low + (i % 10)) for i, low in
                         enumerate(x * 0.7 for x in range(140))]
                stored = db.bulk_load("base", local)
                for x in (5.0, 33.3, 61.0, 97.0):
                    res = db.query("base", Stab(x))
                    assert {r.uid for r in res.records} == oracle_uids(stored, Stab(x))
                    assert res.raw["shards_contacted"] <= 2

    def test_contradictory_window_contacts_no_shard(self):
        with Cluster.create(None, shards=4, strategy="range",
                            domain=(0.0, 100.0), mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[Interval(1.0, 2.0)])
                res = db.query("base", And(Stab(10.0), Stab(90.0)))
                assert res.count == 0 and res.raw["shards_contacted"] == 0
                assert res.ios == 0 and res.bound == 0

    def test_empty_shards_are_harmless(self):
        with Cluster.create(None, shards=4, strategy="range",
                            domain=(0.0, 100.0), mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[])
                # everything lives in slab 0; shards 1-3 hold the index, empty
                stored = db.bulk_load(
                    "base", [Interval(float(i), i + 2.0) for i in range(10)]
                )
                res = db.query("base", Range(0.0, 100.0))
                assert {r.uid for r in res.records} == {r.uid for r in stored}
                assert db.stats()["engine"]["indexes"] == ["base"]

    def test_endpoint_range_low_side_needs_no_reach(self):
        with Cluster.create(None, shards=4, strategy="range",
                            domain=(0.0, 100.0), mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[])
                stored = db.bulk_load("base", [Interval(float(i), i + 50.0)
                                               for i in range(0, 100, 5)])
                q = EndpointRange("low", 30.0, 45.0)
                res = db.query("base", q)
                assert {r.uid for r in res.records} == oracle_uids(stored, q)
                # the low-side window is [30, 45] regardless of max_length
                assert res.raw["shards_contacted"] <= 2


# --------------------------------------------------------------------------- #
# failure + lifecycle
# --------------------------------------------------------------------------- #
class TestClusterLifecycle:
    def test_dead_shard_surfaces_shard_unavailable(self):
        with Cluster.create(None, shards=2, strategy="hash",
                            mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[])
                db.bulk_load("base", random_intervals(40, seed=1))
                # crash injector: stop the shard *and* sever the pooled
                # sockets (a closed listener alone keeps accepted
                # connections serving)
                cluster.supervisor.handles[1].server.close()
                cluster.router._links[1].close()
                with pytest.raises(ServerError) as err:
                    db.query("base", Stab(10.0))               # broadcast hits it
                assert err.value.code == "shard_unavailable"
                assert "shard 1" in str(err.value)

    def test_reopen_restores_topology_data_and_identity(self, tmp_path):
        directory = str(tmp_path / "cluster")
        with Cluster.create(directory, shards=2, strategy="range",
                            domain=(0.0, 100.0), mode="thread") as cluster:
            with ReproClient(*cluster.address) as db:
                db.create("base", records=[])
                stored = db.bulk_load("base", [Interval(10.0, 15.0),
                                               Interval(60.0, 62.0)])
                # grow the pruning window past the persisted default
                long = db.insert("base", Interval(5.0, 45.0))
        reopened = Cluster.open(directory, mode="thread")
        assert reopened.shard_map.strategy == "range"
        assert reopened.shard_map.splits == [50.0]
        assert reopened.shard_map.max_length == 40.0           # survived
        with reopened:
            with ReproClient(*reopened.address) as db:
                res = db.query("base", Stab(12.0))
                assert {r.uid for r in res.records} == {stored[0].uid, long.uid}
                fresh = db.insert("base", Interval(1.0, 2.0))
                old = {r.uid for r in stored} | {long.uid}
                assert fresh.uid not in old                    # never re-minted

    def test_open_rejects_unknown_topology_format(self, tmp_path):
        directory = tmp_path / "cluster"
        directory.mkdir()
        (directory / "cluster.json").write_text(
            '{"format": 99, "shards": 2, "strategy": "hash"}'
        )
        with pytest.raises(ValueError):
            Cluster.open(str(directory))

    def test_process_mode_smoke(self, tmp_path):
        from repro.workloads import concurrent as C

        proc, host, port = C.spawn_cluster(
            shards=2, strategy="hash", directory=str(tmp_path / "c"))
        try:
            with ReproClient(host, port) as db:
                assert db.ping()["cluster"]["shards"] == 2
                db.create("base", records=[])
                stored = db.bulk_load("base", random_intervals(50, seed=6))
                res = db.query("base", Stab(20.0))
                assert {r.uid for r in res.records} == oracle_uids(stored, Stab(20.0))
                assert db.shutdown().get("stopping")
            assert C.wait_for_clean_exit(proc, timeout=60.0)
        finally:
            if proc.poll() is None:
                proc.kill()


# --------------------------------------------------------------------------- #
# the satellites: client backoff, shard-side keep_uids, simulated log device
# --------------------------------------------------------------------------- #
class TestClientConnectRetry:
    def test_zero_retries_fails_fast(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()                                  # nobody listens here
        start = time.perf_counter()
        with pytest.raises(OSError):
            ReproClient("127.0.0.1", port, connect_retries=0)
        assert time.perf_counter() - start < 1.0

    def test_backoff_rides_out_a_late_server(self):
        holder = socket.socket()
        holder.bind(("127.0.0.1", 0))
        port = holder.getsockname()[1]
        holder.close()

        engine = Engine(SimulatedDisk(16))
        server_box = {}

        def late_start():
            time.sleep(0.2)
            server_box["srv"] = ReproServer(
                engine, host="127.0.0.1", port=port
            ).start()

        thread = threading.Thread(target=late_start, daemon=True)
        thread.start()
        try:
            with ReproClient("127.0.0.1", port, connect_retries=8,
                             retry_base=0.05) as db:
                assert db.ping()["pong"]
        finally:
            thread.join()
            server_box["srv"].close()


class TestShardSideKeepUids:
    def test_plain_server_honours_wire_uids_only_when_asked(self):
        engine = Engine(SimulatedDisk(16))
        with ReproServer(engine) as srv, ReproClient(*srv.address) as db:
            db.create("base", records=[])
            wire = {"kind": "interval", "low": 1.0, "high": 2.0, "uid": 424242}
            kept = db.call("insert", index="base", record=dict(wire),
                           keep_uids=True)
            assert kept["record"]["uid"] == 424242
            minted = db.call("insert", index="base", record=dict(wire))
            assert minted["record"]["uid"] != 424242   # default: server mints


class TestSimulatedCommitLatency:
    def test_simulated_device_disables_group_absorption(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.wal"), fsync=False,
                            commit_latency=0.001)
        offsets = [wal.append(i, ("insert", "base", {"i": i})) for i in range(4)]
        assert all(wal.sync_to(off) for off in offsets)     # every barrier real
        assert wal.syncs == 4 and wal.group_absorbed == 0
        assert [rec.epoch for rec in wal.records()] == [0, 1, 2, 3]
        wal.close()

    def test_default_wal_still_group_commits(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path / "w.wal"), fsync=False)
        last = [wal.append(i, ("insert", "base", {"i": i})) for i in range(4)][-1]
        assert wal.sync_to(last) is True
        assert wal.sync_to(last - 1) is False               # absorbed
        assert wal.group_absorbed == 1
        wal.close()
