"""Tests for every class-indexing scheme against a brute-force oracle.

Covers the baselines of Section 2.2, the simple index of Theorem 2.6 and the
combined index of Theorem 4.7, over several hierarchy shapes.
"""

import math
import random

import pytest

from repro.analysis.complexity import simple_class_space_bound
from repro.classes import (
    CombinedClassIndex,
    ExtentPerClassIndex,
    FullExtentPerClassIndex,
    SimpleClassIndex,
    SingleCollectionIndex,
)
from repro.classes.hierarchy import ClassObject, people_hierarchy
from repro.core import ClassIndexer
from repro.io import SimulatedDisk
from repro.workloads import (
    balanced_hierarchy,
    chain_hierarchy,
    random_class_objects,
    random_hierarchy,
    star_hierarchy,
)

ALL_SCHEMES = [
    SingleCollectionIndex,
    FullExtentPerClassIndex,
    ExtentPerClassIndex,
    SimpleClassIndex,
    CombinedClassIndex,
]

HIERARCHIES = {
    "people": people_hierarchy(),
    "random": random_hierarchy(25, seed=1),
    "chain": chain_hierarchy(12),
    "star": star_hierarchy(20),
    "balanced": balanced_hierarchy(2, 3),
    "forest": random_hierarchy(18, seed=2, roots=3),
}


def brute_force(hierarchy, objects, class_name, low, high):
    wanted = set(hierarchy.descendants(class_name))
    return sorted(
        (o.key, o.payload) for o in objects if o.class_name in wanted and low <= o.key <= high
    )


class TestCorrectnessAcrossSchemes:
    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("shape", sorted(HIERARCHIES))
    def test_bulk_build_queries(self, scheme, shape):
        hierarchy = HIERARCHIES[shape]
        objects = random_class_objects(hierarchy, 400, seed=hash(shape) % 1000)
        index = scheme(SimulatedDisk(8), hierarchy, objects)
        rnd = random.Random(7)
        for _ in range(12):
            cls = rnd.choice(hierarchy.classes())
            lo = rnd.uniform(0, 1000)
            hi = lo + rnd.uniform(0, 400)
            got = sorted((o.key, o.payload) for o in index.query(cls, lo, hi))
            assert got == brute_force(hierarchy, objects, cls, lo, hi)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_incremental_inserts(self, scheme):
        hierarchy = HIERARCHIES["random"]
        objects = random_class_objects(hierarchy, 500, seed=11)
        index = scheme(SimulatedDisk(8), hierarchy, objects[:200])
        for obj in objects[200:]:
            index.insert(obj)
        rnd = random.Random(11)
        for _ in range(15):
            cls = rnd.choice(hierarchy.classes())
            lo = rnd.uniform(0, 1000)
            hi = lo + rnd.uniform(0, 400)
            got = sorted((o.key, o.payload) for o in index.query(cls, lo, hi))
            assert got == brute_force(hierarchy, objects, cls, lo, hi)

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_empty_index(self, scheme):
        hierarchy = HIERARCHIES["people"]
        index = scheme(SimulatedDisk(8), hierarchy, [])
        assert index.query("Person", 0, 100) == []

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_query_leaf_class_returns_only_its_extent(self, scheme):
        hierarchy = people_hierarchy()
        objects = [
            ClassObject(10.0, "Person", payload=0),
            ClassObject(20.0, "Professor", payload=1),
            ClassObject(30.0, "AssistantProfessor", payload=2),
            ClassObject(40.0, "Student", payload=3),
        ]
        index = scheme(SimulatedDisk(8), hierarchy, objects)
        assert [o.payload for o in index.query("Student", 0, 100)] == [3]
        assert sorted(o.payload for o in index.query("Professor", 0, 100)) == [1, 2]
        assert sorted(o.payload for o in index.query("Person", 0, 100)) == [0, 1, 2, 3]

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_range_boundaries_inclusive(self, scheme):
        hierarchy = people_hierarchy()
        objects = [ClassObject(float(k), "Student", payload=k) for k in range(10)]
        index = scheme(SimulatedDisk(8), hierarchy, objects)
        got = sorted(o.payload for o in index.query("Person", 3, 6))
        assert got == [3, 4, 5, 6]

    def test_unknown_class_raises_in_combined_index(self):
        hierarchy = people_hierarchy()
        index = CombinedClassIndex(SimulatedDisk(8), hierarchy, [])
        with pytest.raises(KeyError):
            index.query("Alien", 0, 1)
        with pytest.raises(KeyError):
            index.insert(ClassObject(1.0, "Alien"))


class TestSimpleIndexStructure:
    """Theorem 2.6 structural claims."""

    def test_copies_per_object_is_logarithmic(self):
        hierarchy = random_hierarchy(64, seed=3)
        index = SimpleClassIndex(SimulatedDisk(8), hierarchy, [])
        assert index.copies_per_object() <= math.ceil(math.log2(64)) + 1

    def test_space_bound(self):
        hierarchy = random_hierarchy(32, seed=4)
        objects = random_class_objects(hierarchy, 2_000, seed=5)
        disk = SimulatedDisk(16)
        index = SimpleClassIndex(disk, hierarchy, objects)
        assert index.block_count() <= 6 * simple_class_space_bound(2_000, 16, 32) + 40

    def test_total_stored_objects_counts_copies(self):
        hierarchy = chain_hierarchy(8)
        objects = random_class_objects(hierarchy, 100, seed=6)
        index = SimpleClassIndex(SimulatedDisk(8), hierarchy, objects)
        assert len(index) >= 100  # every object appears at least once
        assert len(index) <= 100 * (math.ceil(math.log2(8)) + 1)

    def test_delete_removes_from_every_copy(self):
        hierarchy = people_hierarchy()
        obj = ClassObject(5.0, "AssistantProfessor", payload="x")
        index = SimpleClassIndex(SimulatedDisk(8), hierarchy, [obj])
        assert index.delete(obj)
        assert index.query("Person", 0, 10) == []

    def test_single_class_hierarchy(self):
        h = chain_hierarchy(1)
        objects = [ClassObject(float(i), "D0", payload=i) for i in range(20)]
        index = SimpleClassIndex(SimulatedDisk(4), h, objects)
        assert len(index.query("D0", 5, 10)) == 6


class TestCombinedIndexStructure:
    """Theorem 4.7 structural claims."""

    def test_copies_bounded_by_log_c(self):
        for c, seed in ((16, 1), (64, 2), (128, 3)):
            hierarchy = random_hierarchy(c, seed=seed)
            index = CombinedClassIndex(SimulatedDisk(8), hierarchy, [])
            assert index.copies_per_object() <= math.ceil(math.log2(c)) + 1

    def test_chain_hierarchy_uses_single_path_piece(self):
        hierarchy = chain_hierarchy(16)
        index = CombinedClassIndex(SimulatedDisk(8), hierarchy, [])
        summaries = index.piece_summary()
        assert len(summaries) == 1
        assert "path piece" in summaries[0]
        assert index.copies_per_object() == 1

    def test_star_hierarchy_rakes_every_leaf(self):
        hierarchy = star_hierarchy(10)
        index = CombinedClassIndex(SimulatedDisk(8), hierarchy, [])
        summaries = index.piece_summary()
        rakes = [s for s in summaries if s.startswith("rake")]
        assert len(rakes) >= 8  # every thin-attached leaf is raked

    def test_queries_after_structural_inserts(self):
        hierarchy = balanced_hierarchy(2, 4)  # 21 classes
        objects = random_class_objects(hierarchy, 800, seed=9)
        index = CombinedClassIndex(SimulatedDisk(4), hierarchy, objects[:100])
        for obj in objects[100:]:
            index.insert(obj)
        rnd = random.Random(9)
        for _ in range(10):
            cls = rnd.choice(hierarchy.classes())
            lo = rnd.uniform(0, 1000)
            hi = lo + rnd.uniform(0, 300)
            got = sorted((o.key, o.payload) for o in index.query(cls, lo, hi))
            assert got == brute_force(hierarchy, objects, cls, lo, hi)


class TestClassIndexerFacade:
    def test_methods_listed(self):
        assert set(ClassIndexer.methods()) == {
            "simple",
            "combined",
            "single",
            "full-extent",
            "extent",
        }

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            ClassIndexer(SimulatedDisk(8), people_hierarchy(), [], method="nope")

    @pytest.mark.parametrize("method", ["simple", "combined", "single", "full-extent", "extent"])
    def test_facade_answers_match_backend(self, method):
        hierarchy = HIERARCHIES["random"]
        objects = random_class_objects(hierarchy, 300, seed=13)
        facade = ClassIndexer(SimulatedDisk(8), hierarchy, objects, method=method)
        got = sorted(o.payload for o in facade.query("C2", 100, 600))
        assert got == sorted(p for _, p in brute_force(hierarchy, objects, "C2", 100, 600))
        assert facade.block_count() > 0
        assert len(facade) >= 1
