"""Analysis helpers: cost-model predictions and the tessellation lower bound."""

from repro.analysis.complexity import (
    btree_query_bound,
    log_b,
    metablock_insert_bound,
    metablock_query_bound,
    simple_class_query_bound,
    three_sided_query_bound,
    bound_ratio,
)
from repro.analysis.tessellation import GridTessellation, row_query_cost_ratio

__all__ = [
    "GridTessellation",
    "bound_ratio",
    "btree_query_bound",
    "log_b",
    "metablock_insert_bound",
    "metablock_query_bound",
    "row_query_cost_ratio",
    "simple_class_query_bound",
    "three_sided_query_bound",
]
