"""Analysis helpers: cost-model predictions, the tessellation lower bound,
and the concurrency toolchain (static lint + runtime lockdep witness)."""

from repro.analysis import lockdep
from repro.analysis.complexity import (
    btree_query_bound,
    log_b,
    metablock_insert_bound,
    metablock_query_bound,
    simple_class_query_bound,
    three_sided_query_bound,
    bound_ratio,
)
from repro.analysis.lint import Linter, lint_paths, render_report, write_json_report
from repro.analysis.lintrules import Finding, Rule, register, rule_catalog
from repro.analysis.lockdep import (
    BlockingUnderLockError,
    LockdepWitness,
    LockOrderError,
    watching,
)
from repro.analysis.tessellation import GridTessellation, row_query_cost_ratio

__all__ = [
    "BlockingUnderLockError",
    "Finding",
    "GridTessellation",
    "Linter",
    "LockOrderError",
    "LockdepWitness",
    "Rule",
    "bound_ratio",
    "btree_query_bound",
    "lint_paths",
    "lockdep",
    "log_b",
    "metablock_insert_bound",
    "metablock_query_bound",
    "register",
    "render_report",
    "rule_catalog",
    "row_query_cost_ratio",
    "simple_class_query_bound",
    "three_sided_query_bound",
    "watching",
    "write_json_report",
]
