"""The tessellation lower-bound experiment (Lemma 2.7 / Theorem 2.8, Fig. 7).

Lemma 2.7 shows that no tessellation of a ``p x p`` grid of points into
non-overlapping rectangular disk blocks of ``B`` points can answer all range
queries optimally: summing block heights over row queries and widths over
column queries forces ``B <= k^2`` for any claimed constant ``k``.  The
intuition the paper gives for grid files / k-d-B-trees / hB-trees is that a
"square-ish" blocking makes a row query of ``t`` points touch
``Theta(t/sqrt(B))`` blocks instead of the optimal ``t/B``.

:class:`GridTessellation` materialises such a blocking and measures row /
column query costs, reproducing that separation (experiment E7).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass
class TessellationStats:
    """Measured block reads for a family of grid range queries."""

    p: int
    block_size: int
    blocks_total: int
    row_query_blocks: float
    optimal_blocks: float

    @property
    def ratio(self) -> float:
        """Measured blocks per row query divided by the optimal ``t/B``."""
        if self.optimal_blocks == 0:
            return 0.0
        return self.row_query_blocks / self.optimal_blocks


class GridTessellation:
    """A rectangular tessellation of a ``p x p`` point grid into blocks of ``B``.

    The default layout uses ``w x h`` rectangles with ``w = h = sqrt(B)``
    (the "square-ish" blocks that space-organising structures produce on a
    uniform grid); alternative aspect ratios can be supplied to explore the
    trade-off the proof of Lemma 2.7 formalises: making row queries cheap
    (flat blocks) necessarily makes column queries expensive and vice versa.
    """

    def __init__(self, p: int, block_size: int, block_width: int = 0) -> None:
        if p <= 0 or block_size <= 0:
            raise ValueError("p and block_size must be positive")
        self.p = p
        self.block_size = block_size
        if block_width <= 0:
            block_width = max(1, int(round(math.sqrt(block_size))))
        self.block_width = min(block_width, p)
        self.block_height = max(1, block_size // self.block_width)

    # ------------------------------------------------------------------ #
    # layout
    # ------------------------------------------------------------------ #
    def block_of(self, x: int, y: int) -> Tuple[int, int]:
        """The block identifier covering grid point ``(x, y)``."""
        return (x // self.block_width, y // self.block_height)

    def blocks_total(self) -> int:
        across = -(-self.p // self.block_width)
        down = -(-self.p // self.block_height)
        return across * down

    # ------------------------------------------------------------------ #
    # query costs
    # ------------------------------------------------------------------ #
    def row_query_blocks(self, row: int) -> int:
        """Blocks touched by the query returning the ``p`` points of one row."""
        return len({self.block_of(x, row) for x in range(self.p)})

    def column_query_blocks(self, column: int) -> int:
        """Blocks touched by the query returning the ``p`` points of one column."""
        return len({self.block_of(column, y) for y in range(self.p)})

    def range_query_blocks(self, x1: int, x2: int, y1: int, y2: int) -> int:
        """Blocks touched by a general rectangular range query."""
        blocks = set()
        for x in range(max(0, x1), min(self.p, x2 + 1)):
            for y in range(max(0, y1), min(self.p, y2 + 1)):
                blocks.add(self.block_of(x, y))
        return len(blocks)

    def measure(self) -> TessellationStats:
        """Average row-query cost against the optimal ``t/B`` packing."""
        rows = range(self.p)
        average = sum(self.row_query_blocks(r) for r in rows) / self.p
        optimal = max(1.0, self.p / self.block_size)
        return TessellationStats(
            p=self.p,
            block_size=self.block_size,
            blocks_total=self.blocks_total(),
            row_query_blocks=average,
            optimal_blocks=optimal,
        )


def row_query_cost_ratio(p: int, block_size: int) -> float:
    """Measured-over-optimal ratio for row queries on the square tessellation.

    Lemma 2.7 predicts this ratio grows like ``sqrt(B)``; experiment E7
    sweeps ``B`` and checks that shape.
    """
    return GridTessellation(p, block_size).measure().ratio


def best_achievable_ratio(p: int, block_size: int) -> Dict[int, float]:
    """Row-query ratio for every rectangular aspect ratio ``w x (B/w)``.

    Illustrates the trade-off at the heart of Lemma 2.7's averaging
    argument: flat blocks (width ``B``) are optimal for rows but pessimal
    for columns, and the symmetric compromise pays ``sqrt(B)`` on both.
    """
    out: Dict[int, float] = {}
    for width in range(1, block_size + 1):
        if block_size % width:
            continue
        tess = GridTessellation(p, block_size, block_width=width)
        rows = sum(tess.row_query_blocks(r) for r in range(p)) / p
        cols = sum(tess.column_query_blocks(c) for c in range(p)) / p
        optimal = max(1.0, p / block_size)
        out[width] = max(rows, cols) / optimal
    return out
