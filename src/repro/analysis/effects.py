"""Interprocedural effect summaries: phase 1/2 of the whole-program checker.

The intraprocedural walker in :mod:`repro.analysis.lint` sees one function
body at a time, which is enough for lock discipline but blind to the
protocols that *span* functions: the commit ordering (append → fsync
barrier → publish), the I/O-accounting contract (every raw block access is
charged to :class:`~repro.io.counters.IOStats` *somewhere* on the path),
and plan-cache invalidation (every structural swap bumps a generation,
possibly in a helper).  This module supplies the missing half:

* **Phase 1** — :meth:`Program.add_module` walks every function definition
  and records a :class:`FunctionSummary` of its *direct* effects: raw
  file/`os` I/O sites, ``IOStats`` charges, WAL appends and ``sync_to``
  barriers, epoch ``begin``/``publish`` calls, generation bumps,
  ``destroy()`` calls, ``self.<attr> = ...`` installs, and every call site.
* **Phase 2** — :meth:`Program.resolve` links call sites to definitions
  (best-effort, see below) and computes the **transitive closure** of the
  boolean effects, so a rule can ask "does this function *reach* a charge
  / a barrier / a bump?" (:meth:`Program.reaches`) and "is any caller of
  this function covered?" (:meth:`Program.callers`).

Call resolution is deliberately conservative, the same philosophy that
keeps the lock linter free of false positives: ``self.m()`` resolves
inside the enclosing class, a bare ``m()`` inside the enclosing module,
and ``obj.m()`` only when ``m`` is defined exactly once in the whole
program *and* is not a ubiquitous container/stdlib method name
(``append``, ``read``, ``get``, ...).  Unresolvable calls simply
contribute no edge — rules treat "no edge" as "no effect", and the rules
built on top are phrased so that a missing edge can only *suppress* a
finding, never invent one.

The module also collects the **wire artifacts** the cross-artifact rule
compares: ``COMMANDS`` / ``ERROR_CODES`` tuples, ``_cmd_*`` handler
classes, ``*Client`` method surfaces, the serialization registry inside
``_node_registry`` and the string literals ``classify_error`` returns.
Everything here is pure data extraction — policy lives in
:mod:`repro.analysis.lintrules`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

__all__ = [
    "CallRef",
    "EffectSite",
    "FunctionSummary",
    "ModuleArtifacts",
    "Program",
    "dotted",
]

#: effect flags a summary can carry directly and a closure can propagate
EFFECTS = ("charge", "wal_sync", "epoch_publish", "gen_bump")

#: method names too common to resolve by bare name across the program —
#: ``self._ops.append`` must never link to ``WriteAheadLog.append``
_COMMON_METHODS = {
    "append", "add", "remove", "discard", "pop", "get", "update", "extend",
    "sort", "index", "count", "clear", "copy", "keys", "values", "items",
    "join", "split", "strip", "read", "write", "open", "close", "flush",
    "seek", "truncate", "encode", "decode", "format", "startswith",
    "endswith", "lower", "upper", "acquire", "release", "wait", "notify",
    "notify_all", "put", "send", "recv", "start", "run", "cancel",
    "submit", "result", "exists", "mkdir", "match", "search", "group",
    "sub", "findall", "dumps", "loads", "dump", "load", "insert", "delete",
    "query", "next", "send_all", "setdefault",
    # Tracer.span / tracing capture: instrumentation wrappers called from
    # hundreds of sites; linking them by bare name would smear the
    # tracer's effects (none) over the whole call graph
    "span", "capture", "annotate",
}

#: receiver names (sans leading underscores) that denote a raw file handle;
#: exact match on purpose — ``wfile``/``rfile`` are socket streams, whose
#: bytes are network traffic, not block I/O in the paper's model
_FILE_RECEIVERS = {"f", "fh", "fp", "file"}

#: final call attributes that are raw file I/O when the receiver is a handle
_RAW_FILE_VERBS = {"seek", "read", "write", "truncate", "readinto"}


def dotted(node: ast.expr) -> str:
    """Best-effort dotted repr of a receiver/callee expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{dotted(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{dotted(node.func)}(...)"
    if isinstance(node, ast.Subscript):
        return f"{dotted(node.value)}[...]"
    return "<expr>"


def _receiver_leaf(chain: str) -> str:
    """The last receiver component of a dotted call chain (or '')."""
    parts = chain.split(".")
    return parts[-2] if len(parts) >= 2 else ""


def _is_file_receiver(name: str) -> bool:
    return name.lstrip("_").lower() in _FILE_RECEIVERS


@dataclass(frozen=True)
class EffectSite:
    """One direct effect occurrence, pinned to a source location."""

    line: int
    col: int
    detail: str = ""


@dataclass(frozen=True)
class CallRef:
    """One call site: the dotted callee chain plus its location."""

    chain: str
    line: int
    col: int


@dataclass
class FunctionSummary:
    """Phase-1 output: one function's direct effects."""

    key: str                  # "<path>::Class.fn" / "<path>::fn" (nested: dotted)
    name: str
    cls: Optional[str]
    path: str
    line: int
    raw_io: List[EffectSite] = field(default_factory=list)
    charges: List[EffectSite] = field(default_factory=list)
    wal_appends: List[EffectSite] = field(default_factory=list)
    wal_syncs: List[EffectSite] = field(default_factory=list)
    epoch_begins: List[EffectSite] = field(default_factory=list)
    epoch_publishes: List[EffectSite] = field(default_factory=list)
    gen_bumps: List[EffectSite] = field(default_factory=list)
    destroys: List[EffectSite] = field(default_factory=list)
    self_assigns: List[EffectSite] = field(default_factory=list)  # detail=attr
    calls: List[CallRef] = field(default_factory=list)

    def direct_effects(self) -> Set[str]:
        """The boolean effect flags this function exhibits directly."""
        flags: Set[str] = set()
        if self.charges:
            flags.add("charge")
        if self.wal_syncs:
            flags.add("wal_sync")
        if self.epoch_publishes:
            flags.add("epoch_publish")
        if self.gen_bumps:
            flags.add("gen_bump")
        return flags


@dataclass
class ModuleArtifacts:
    """Phase-1 output per module: the wire-contract artifacts."""

    path: str
    #: ``COMMANDS = ("ping", ...)`` at module level -> (names, site)
    commands: Optional[Tuple[Set[str], EffectSite]] = None
    #: ``ERROR_CODES = (...)`` at module level -> (codes, site)
    error_codes: Optional[Tuple[Set[str], EffectSite]] = None
    #: string literals ``classify_error`` returns -> (codes, def site)
    classify_returns: Optional[Tuple[Set[str], EffectSite]] = None
    #: class name -> ({command suffixes of its _cmd_* methods}, class site)
    handler_classes: Dict[str, Tuple[Set[str], EffectSite]] = field(
        default_factory=dict
    )
    #: class name (endswith "Client") -> ({public method names}, class site)
    client_classes: Dict[str, Tuple[Set[str], EffectSite]] = field(
        default_factory=dict
    )
    #: node-type names listed inside ``_node_registry`` -> (names, site)
    registry: Optional[Tuple[Set[str], EffectSite]] = None
    #: classes in this module subclassing ``AlgebraicQuery`` -> def line
    node_classes: Dict[str, int] = field(default_factory=dict)
    #: every name bound by an import statement anywhere in the module
    imported_names: Set[str] = field(default_factory=set)
    #: whether the module mentions the name ``COMMANDS`` at all (clientish
    #: classes outside such modules are not held to the wire contract)
    mentions_commands: bool = False


class _EffectCollector(ast.NodeVisitor):
    """One module's phase-1 walk: fills summaries + artifacts."""

    def __init__(self, program: "Program", path: str) -> None:
        self.program = program
        self.path = path
        self.artifacts = ModuleArtifacts(path)
        self._class_stack: List[str] = []
        self._fn_stack: List[FunctionSummary] = []

    # -- scopes ----------------------------------------------------------- #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        base_names = {dotted(b).rsplit(".", 1)[-1] for b in node.bases}
        if "AlgebraicQuery" in base_names and not self._fn_stack:
            self.artifacts.node_classes[node.name] = node.lineno
        cmds = {
            stmt.name[len("_cmd_"):]
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt.name.startswith("_cmd_")
        }
        if cmds:
            self.artifacts.handler_classes[node.name] = (
                cmds, EffectSite(node.lineno, node.col_offset)
            )
        if node.name.endswith("Client") and not self._fn_stack:
            methods = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                and not stmt.name.startswith("_")
            }
            self.artifacts.client_classes[node.name] = (
                methods, EffectSite(node.lineno, node.col_offset)
            )
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        cls = self._class_stack[-1] if self._class_stack else None
        if self._fn_stack:
            qual = f"{self._fn_stack[-1].key.split('::', 1)[1]}.{node.name}"
        elif cls is not None:
            qual = f"{cls}.{node.name}"
        else:
            qual = node.name
        summary = FunctionSummary(
            key=f"{self.path}::{qual}",
            name=node.name,
            cls=cls,
            path=self.path,
            line=node.lineno,
        )
        if self._fn_stack:
            # a nested def *may* be called by its parent (thread workers,
            # local helpers): a conservative edge, used only for coverage
            self._fn_stack[-1].calls.append(
                CallRef(summary.key, node.lineno, node.col_offset)
            )
        self.program.functions[summary.key] = summary
        if node.name == "classify_error" and not self._fn_stack:
            self._collect_classify_returns(node)
        if node.name == "_node_registry" and not self._fn_stack:
            self._collect_registry(node)
        self._fn_stack.append(summary)
        self.generic_visit(node)
        self._fn_stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- wire artifacts --------------------------------------------------- #
    @staticmethod
    def _string_tuple(value: ast.expr) -> Optional[Set[str]]:
        if not isinstance(value, (ast.Tuple, ast.List)):
            return None
        out: Set[str] = set()
        for elt in value.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            out.add(elt.value)
        return out

    def visit_Assign(self, node: ast.Assign) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        for target in node.targets:
            if (
                fn is None
                and isinstance(target, ast.Name)
                and target.id in ("COMMANDS", "ERROR_CODES")
            ):
                names = self._string_tuple(node.value)
                if names is not None:
                    site = EffectSite(node.lineno, node.col_offset)
                    if target.id == "COMMANDS":
                        self.artifacts.commands = (names, site)
                    else:
                        self.artifacts.error_codes = (names, site)
            if (
                fn is not None
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                fn.self_assigns.append(
                    EffectSite(node.lineno, node.col_offset, target.attr)
                )
                if target.attr == "generation":
                    fn.gen_bumps.append(EffectSite(node.lineno, node.col_offset))
        self.generic_visit(node)

    def _collect_classify_returns(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        codes: Set[str] = set()
        for stmt in ast.walk(node):
            if (
                isinstance(stmt, ast.Return)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                codes.add(stmt.value.value)
        self.artifacts.classify_returns = (
            codes, EffectSite(node.lineno, node.col_offset)
        )

    def _collect_registry(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        names: Set[str] = set()
        # only tuples *assigned to a variable* count (``types = (...)``) —
        # walking every Tuple would pick up annotation subscripts too
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, (ast.Tuple, ast.List)
            ):
                for elt in stmt.value.elts:
                    if isinstance(elt, ast.Name):
                        names.add(elt.id)
        if names:
            self.artifacts.registry = (
                names, EffectSite(node.lineno, node.col_offset)
            )

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.artifacts.imported_names.add(
                (alias.asname or alias.name).split(".", 1)[0]
            )

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.artifacts.imported_names.add(alias.asname or alias.name)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id == "COMMANDS":
            self.artifacts.mentions_commands = True

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr == "COMMANDS":
            self.artifacts.mentions_commands = True
        self.generic_visit(node)

    # -- effect sites ----------------------------------------------------- #
    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if (
            fn is not None
            and isinstance(node.target, ast.Attribute)
            and node.target.attr == "generation"
        ):
            fn.gen_bumps.append(EffectSite(node.lineno, node.col_offset))
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = self._fn_stack[-1] if self._fn_stack else None
        if fn is not None:
            chain = dotted(node.func)
            final = chain.rsplit(".", 1)[-1]
            recv = _receiver_leaf(chain)
            site = EffectSite(node.lineno, node.col_offset, chain)
            fn.calls.append(CallRef(chain, node.lineno, node.col_offset))
            if final == "count" and "stats" in recv.lower():
                fn.charges.append(site)
            elif final == "measure":
                # ``with disk.measure():`` brackets the scope in snapshots —
                # accounting coverage by construction
                fn.charges.append(site)
            if chain == "os.fsync":
                fn.raw_io.append(site)
            elif final in _RAW_FILE_VERBS and _is_file_receiver(recv):
                fn.raw_io.append(site)
            if final == "append" and recv.lstrip("_").lower() == "wal":
                fn.wal_appends.append(site)
            if final == "sync_to":
                fn.wal_syncs.append(site)
            if final in ("begin", "publish") and "epoch" in recv.lower():
                if final == "begin":
                    fn.epoch_begins.append(site)
                else:
                    fn.epoch_publishes.append(site)
            if final == "invalidate":
                fn.gen_bumps.append(site)
            if final == "destroy":
                fn.destroys.append(site)
        self.generic_visit(node)


class Program:
    """The whole-program model: summaries, artifacts, call graph, closures."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionSummary] = {}
        self.modules: List[ModuleArtifacts] = []
        self._edges: Dict[str, Set[str]] = {}
        self._callers: Dict[str, Set[str]] = {}
        self._closure: Dict[str, Set[str]] = {}
        self._resolved = False

    # -- phase 1 ---------------------------------------------------------- #
    def add_module(self, tree: ast.Module, path: str) -> None:
        collector = _EffectCollector(self, path)
        collector.visit(tree)
        self.modules.append(collector.artifacts)
        self._resolved = False

    # -- phase 2 ---------------------------------------------------------- #
    def _resolve_call(self, fn: FunctionSummary, chain: str) -> Optional[str]:
        parts = [p for p in chain.split(".") if p and "(" not in p and "[" not in p]
        if not parts:
            return None
        method = parts[-1]
        if "::" in chain:  # already a summary key (nested-def edge)
            return chain if chain in self.functions else None
        if len(parts) == 2 and parts[0] == "self" and fn.cls is not None:
            # exactly ``self.m()`` — ``self._file.truncate()`` is a call on
            # the *attribute*, not on this class
            key = f"{fn.path}::{fn.cls}.{method}"
            if key in self.functions:
                return key
        if len(parts) == 1:
            key = f"{fn.path}::{method}"
            if key in self.functions:
                return key
            nested = f"{fn.path}::{fn.key.split('::', 1)[1]}.{method}"
            if nested in self.functions:
                return nested
        if method in _COMMON_METHODS:
            return None
        matches = self._by_name.get(method, [])
        if len(matches) == 1:
            return matches[0]
        return None

    def resolve(self) -> None:
        """Build the call graph and the transitive effect closure (idempotent)."""
        if self._resolved:
            return
        self._by_name: Dict[str, List[str]] = {}
        for key, fn in self.functions.items():
            self._by_name.setdefault(fn.name, []).append(key)
        self._edges = {key: set() for key in self.functions}
        self._callers = {key: set() for key in self.functions}
        for key, fn in self.functions.items():
            for call in fn.calls:
                callee = self._resolve_call(fn, call.chain)
                if callee is not None and callee != key:
                    self._edges[key].add(callee)
                    self._callers[callee].add(key)
        # propagate boolean effects to a fixpoint (the graph has cycles)
        closure = {key: set(fn.direct_effects()) for key, fn in self.functions.items()}
        changed = True
        while changed:
            changed = False
            for key, callees in self._edges.items():
                mine = closure[key]
                before = len(mine)
                for callee in callees:
                    mine |= closure[callee]
                if len(mine) != before:
                    changed = True
        self._closure = closure
        self._resolved = True

    # -- queries ---------------------------------------------------------- #
    def reaches(self, key: str, effect: str) -> bool:
        """Whether ``key`` exhibits ``effect`` directly or transitively."""
        self.resolve()
        return effect in self._closure.get(key, set())

    def callers(self, key: str) -> Set[str]:
        """Resolved direct callers of ``key`` (empty when none are known)."""
        self.resolve()
        return self._callers.get(key, set())

    def callees(self, key: str) -> Set[str]:
        self.resolve()
        return self._edges.get(key, set())

    def stats(self) -> Dict[str, int]:
        """Summary sizes for the JSON report."""
        self.resolve()
        return {
            "functions": len(self.functions),
            "call_edges": sum(len(v) for v in self._edges.values()),
            "modules": len(self.modules),
        }
