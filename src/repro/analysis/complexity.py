"""Closed-form I/O cost predictions for the paper's bounds.

EXPERIMENTS.md compares every measured I/O count against the corresponding
bound evaluated by these helpers; the reproduction claims the *shape*
(constant ``measured / bound`` ratios as ``n``, ``B``, ``c`` and ``t``
grow), not specific constants.
"""

from __future__ import annotations

import math
from typing import Sequence


def log_b(n: float, b: float) -> float:
    """``log_B n``, clamped below by 1 so ratios stay finite for tiny inputs."""
    if n <= 1 or b <= 1:
        return 1.0
    return max(1.0, math.log(n, b))


def log2(n: float) -> float:
    if n <= 1:
        return 1.0
    return max(1.0, math.log2(n))


def btree_query_bound(n: int, b: int, t: int = 0) -> float:
    """B+-tree range search: ``log_B n + t/B`` (Section 1.1)."""
    return log_b(n, b) + t / b


def metablock_query_bound(n: int, b: int, t: int = 0) -> float:
    """Metablock tree diagonal corner query: ``log_B n + t/B`` (Theorem 3.2)."""
    return log_b(n, b) + t / b


def metablock_insert_bound(n: int, b: int) -> float:
    """Amortized metablock insert: ``log_B n + (log_B n)^2 / B`` (Theorem 3.7)."""
    lb = log_b(n, b)
    return lb + (lb * lb) / b


def three_sided_query_bound(n: int, b: int, t: int = 0) -> float:
    """3-sided metablock variant: ``log_B n + log2 B + t/B`` (Lemma 4.4)."""
    return log_b(n, b) + log2(b) + t / b


def external_pst_query_bound(n: int, b: int, t: int = 0) -> float:
    """Blocked priority search tree: ``log2 n + t/B`` (Lemma 4.1)."""
    return log2(n) + t / b


def simple_class_query_bound(n: int, b: int, c: int, t: int = 0) -> float:
    """Theorem 2.6 query bound: ``log2 c · log_B n + t/B``."""
    return log2(c) * log_b(n, b) + t / b


def combined_class_query_bound(n: int, b: int, t: int = 0) -> float:
    """Theorem 4.7 query bound: ``log_B n + log2 B + t/B``."""
    return log_b(n, b) + log2(b) + t / b


def simple_class_space_bound(n: int, b: int, c: int) -> float:
    """Theorem 2.6 space bound in blocks: ``(n/B) · log2 c``."""
    return (n / b) * log2(c)


def linear_space_bound(n: int, b: int) -> float:
    """``n / B`` blocks (the optimal space bound)."""
    return max(1.0, n / b)


def rebuild_due(dead: int, live: int, block_size: int, fraction: float = 0.5) -> bool:
    """The shared global-rebuilding trigger: rebuild once ``dead`` records
    (tombstones) exceed ``max(B, fraction * live)``.

    This is the classic dynamization constant: a rebuild costs
    ``O((n/B) log_B n)`` work amortized over the ``Θ(fraction · n)``
    deletes since the last one (``O(log_B n)`` I/Os each), and space stays
    within ``1 + fraction`` of optimal.  The ``B`` floor keeps tiny
    structures from rebuilding on every delete.  One definition shared by
    every tombstoning structure (interval manager, class indexer,
    :class:`~repro.engine.rebuilding.RebuildingIndex`) so the policy can
    never drift between them.
    """
    return dead > max(block_size, fraction * max(live, 1))


def bound_ratio(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """The largest measured/predicted ratio across a sweep.

    A reproduction of an ``O(f)`` claim succeeds when this ratio stays
    bounded (does not trend upward) as the sweep parameter grows.
    """
    ratios = [m / p for m, p in zip(measured, predicted) if p > 0]
    return max(ratios) if ratios else 0.0


def ratio_trend(measured: Sequence[float], predicted: Sequence[float]) -> float:
    """Last-to-first ratio of ``measured/predicted`` across a sweep.

    Values close to (or below) 1 indicate the measured cost grows no faster
    than the predicted bound; values much larger than 1 indicate the bound is
    being outgrown.
    """
    ratios = [m / p for m, p in zip(measured, predicted) if p > 0]
    if len(ratios) < 2 or ratios[0] == 0:
        return 1.0
    return ratios[-1] / ratios[0]
