"""The concurrency linter's rule catalog: one class per invariant.

The AST walker in :mod:`repro.analysis.lint` understands *mechanism* —
which lock tokens are held at every point, which calls happen, which
attributes are mutated.  The **rules** here decide *policy*: what the
commit kernel promised (PR 6) and what every later PR must keep true.

Adding an invariant is one subclass of :class:`Rule` registered with
:func:`register`; the CLI, the fixture corpus, the suppression syntax and
the README catalog all pick it up by its ``id``.

Rule ids (the names ``# lint: allow(...)`` takes):

``lock-order``
    Locks are ranked mutex(0) ≺ latch(1) ≺ wal(2) ≺ leaf(3); acquiring a
    lower rank while holding a higher one is an inversion, and same-rank
    locks must be acquired in one global order (A→B somewhere and B→A
    elsewhere is a cycle, i.e. a deadlock waiting for its interleaving).
``blocking-under-mutex``
    No blocking call — ``fsync``/``sync``/``sync_to``/``sleep``/socket
    or subprocess work — while holding a non-barrier lock.  The commit
    kernel fsyncs *outside* the mutex; the WAL's dedicated sync lock is a
    declared barrier lock (group commit happens under it, by design).
``unlocked-shared-mutation``
    No bare ``+=``/``-=`` on shared counters (:class:`~repro.io.counters.
    IOStats` fields, WAL/planner counters, anything a class declares in a
    ``_shared`` tuple) outside a lock context — a read-modify-write loses
    updates under concurrency.  Inside functions used as ``Thread``
    targets the rule also covers mutation of closure cells
    (``counter[0] += 1``).
``engine-lock-in-read-turn``
    Read turns pin an MVCC epoch and share one index latch; they must
    never take an engine-wide lock (``_write_mutex`` / ``write_turn()`` /
    the legacy session RWLock) — that is what keeps readers unblockable
    by writers on other indexes.

The four rules below are **interprocedural**: they run over the
whole-program effect summaries of :mod:`repro.analysis.effects`
(phase 1: per-function effects; phase 2: call-graph closure), so they
fire on *transitive* effects — a generation bump inside a helper counts,
an fsync reached through two calls still violates the barrier rules.

``commit-protocol``
    The durability ordering the commit kernel promised: WAL appends only
    inside ``_commit`` (or the WAL itself); every append must reach the
    ``sync_to`` barrier before the commit can be acknowledged; an epoch
    ``publish`` in the same function as the barrier must come *after* it;
    every ``begin``-allocated epoch must reach a ``publish`` (ordered
    publication deadlocks forever on a leaked epoch).
``uncounted-io``
    Every raw file/`os` I/O (``seek``/``read``/``write``/``truncate`` on
    a file handle, ``os.fsync``) must be covered by an ``IOStats`` charge
    — in the same function, transitively through a callee, or in a
    resolved caller — or the paper's I/O bounds silently stop being
    checkable.
``stale-plan-cache``
    A structural swap (a function that ``destroy()``\\ s an old structure
    and installs a replacement on ``self``) must bump a plan-cache
    generation (``self.generation += 1`` / ``planner.invalidate()``),
    directly or transitively — otherwise cached strategies keep pointing
    at freed blocks.
``wire-exhaustiveness``
    The wire contract's artifacts must agree: every declared ``COMMANDS``
    entry has a ``_cmd_*`` handler in every handler class and a method on
    every protocol client class; ``_node_registry`` covers every
    ``AlgebraicQuery`` subclass in its module and names only resolvable
    types; ``classify_error``'s returned codes match ``ERROR_CODES``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple, Type

from repro.analysis.effects import FunctionSummary, Program
from repro.analysis.lockdep import RANK_LATCH, RANK_LEAF, RANK_MUTEX, RANK_WAL

# --------------------------------------------------------------------------- #
# lock-token classification (what the walker reports to the rules)
# --------------------------------------------------------------------------- #
#: attribute names that denote the engine-wide write mutex
MUTEX_ATTRS = {"_write_mutex"}
#: attribute names that denote an engine-wide readers-writer lock
ENGINE_RWLOCK_ATTRS = {"_rwlock"}
#: attribute names that denote the WAL's internal locks; ``_sync_lock`` is
#: a *barrier* lock — the group-commit fsync legitimately runs under it
WAL_LOCK_CLASSES = {"WriteAheadLog"}
BARRIER_LOCK_ATTRS = {"_sync_lock"}
#: the cluster router/supervisor latches: topology + namespace guard and
#: the shard-handle list guard — both rank *above* the per-link RPC lock
CLUSTER_LATCH_ATTRS = {"_topology_lock", "_spawn_lock"}
#: the per-shard-connection RPC lock is a declared **barrier**: it is the
#: serialization point of a connection pool and legitimately brackets a
#: socket round-trip, exactly like the WAL's group-commit sync lock
CLUSTER_BARRIER_ATTRS = {"_rpc_lock"}
#: with-item method calls that are context managers but **not** locks:
#: ``Tracer.span(...)`` (PR 10) brackets a region for wall-clock and I/O
#: attribution only — it must never be treated as an acquisition, or every
#: instrumented site would fabricate lock-order edges and a span block
#: would silently shield shared-counter mutations from the linter
NONLOCK_CM = {"span"}
#: call names that block (syscalls, barriers, schedulers); matched against
#: the final attribute of a call chain
BLOCKING_CALLS = {
    "fsync",
    "sync",
    "sync_to",
    "sleep",
    "serve_forever",
    "accept",
    "recv",
    "sendall",
    "connect",
    "wait_for_clean_exit",
}
#: base names whose entire attribute surface blocks (``socket.create_...``)
BLOCKING_BASES = {"socket", "subprocess", "requests"}

#: counter fields that are shared across threads by contract; a bare
#: augmented assignment on any of these outside a lock loses updates
SHARED_COUNTER_FIELDS = {
    # IOStats
    "reads", "writes", "allocations", "frees", "cache_hits", "fsyncs",
    # WriteAheadLog
    "commits", "syncs", "group_absorbed",
    # QueryPlanner's plan cache
    "cache_hits", "cache_misses",
}


@dataclass(frozen=True)
class LockToken:
    """One syntactically-held lock: a key, its declared rank, barrier-ness."""

    key: str
    rank: int
    #: blocking calls are legitimate under barrier locks (WAL sync lock)
    barrier: bool = False


def classify_lock(owner: str, attr: str) -> LockToken:
    """The token for ``with <recv>.<attr>`` given the enclosing class name."""
    if attr in MUTEX_ATTRS or attr in ENGINE_RWLOCK_ATTRS:
        return LockToken(f"{owner}.{attr}", RANK_MUTEX)
    if attr in CLUSTER_LATCH_ATTRS:
        return LockToken(f"{owner}.{attr}", RANK_LATCH)
    if attr in CLUSTER_BARRIER_ATTRS:
        return LockToken(f"{owner}.{attr}", RANK_LEAF, barrier=True)
    if owner in WAL_LOCK_CLASSES:
        return LockToken(
            f"{owner}.{attr}", RANK_WAL, barrier=attr in BARRIER_LOCK_ATTRS
        )
    return LockToken(f"{owner}.{attr}", RANK_LEAF)


def latch_token(receiver: str) -> LockToken:
    """The token for an RWLock acquisition on ``receiver``."""
    if receiver.endswith("_rwlock") or receiver.endswith(".rwlock"):
        # the engine-wide session RWLock ranks as a mutex, not a latch
        return LockToken(receiver, RANK_MUTEX)
    return LockToken(f"latch:{receiver}", RANK_LATCH)


@dataclass(frozen=True)
class Finding:
    """One linter diagnostic, pinned to a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


class Context:
    """What the walker exposes to rules at each callback.

    ``held`` is the stack of lock tokens syntactically held at the current
    node; ``read_turn_depth`` counts enclosing ``with ...read_turn(...)``
    blocks; ``thread_targets`` are module functions passed to
    ``threading.Thread(target=...)``; ``shared_fields`` are the builtin
    counter names plus any ``_shared = (...)`` declarations in the module.
    """

    def __init__(
        self,
        path: str,
        emit: Callable[[int, int, str, str], None],
    ) -> None:
        self.path = path
        self._emit = emit
        self.held: List[LockToken] = []
        self.read_turn_depth = 0
        self.current_class: str = "<module>"
        self.current_function: str = "<module>"
        self.thread_targets: Set[str] = set()
        self.local_names: Set[str] = set()
        self.shared_fields: Set[str] = set(SHARED_COUNTER_FIELDS)

    def emit(self, node: ast.AST, rule: str, message: str) -> None:
        self._emit(
            getattr(node, "lineno", 0), getattr(node, "col_offset", 0),
            rule, message,
        )

    def holding_non_barrier(self) -> Optional[LockToken]:
        for token in self.held:
            if not token.barrier:
                return token
        return None


class Rule:
    """Base class: override the callbacks the invariant needs."""

    id: str = ""
    description: str = ""

    def on_acquire(self, ctx: Context, token: LockToken, node: ast.AST) -> None:
        """A lock token is being acquired with ``ctx.held`` still unchanged."""

    def on_call(self, ctx: Context, node: ast.Call, chain: str) -> None:
        """Any call expression; ``chain`` is the dotted callee (best effort)."""

    def on_augassign(self, ctx: Context, node: ast.AugAssign) -> None:
        """Any ``+=`` / ``-=`` statement."""

    def finalize(self, emit: Callable[[Finding], None]) -> None:
        """Called once after every file was walked (cross-file checks)."""

    def finalize_program(
        self, program: Program, emit: Callable[[Finding], None]
    ) -> None:
        """Called once with the whole-program effect model (phase-2 rules)."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator: add a rule to the catalog under its ``id``."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    _REGISTRY[cls.id] = cls
    return cls


def rule_catalog() -> Dict[str, str]:
    """``{rule_id: description}`` for ``repro lint --rules`` and the README."""
    return {rid: _REGISTRY[rid].description for rid in sorted(_REGISTRY)}


def all_rules() -> List[Rule]:
    """Fresh rule instances (rules keep per-run state, e.g. the edge graph)."""
    return [_REGISTRY[rid]() for rid in sorted(_REGISTRY)]


# --------------------------------------------------------------------------- #
# the rules
# --------------------------------------------------------------------------- #
@register
class LockOrderRule(Rule):
    """mutex ≺ latch ≺ wal ≺ leaf; same-rank locks in one global order."""

    id = "lock-order"
    description = (
        "locks must be acquired in rank order (mutex < latch < wal < leaf); "
        "rank inversions and same-rank A/B-B/A cycles are deadlocks in waiting"
    )

    def __init__(self) -> None:
        #: (held_key, acquired_key) -> acquisition site
        self.edges: Dict[Tuple[str, str], Finding] = {}

    def on_acquire(self, ctx: Context, token: LockToken, node: ast.AST) -> None:
        if not ctx.held:
            return
        top = ctx.held[-1]
        if token.rank < top.rank:
            ctx.emit(
                node, self.id,
                f"acquiring {token.key!r} (rank {token.rank}) while holding "
                f"{top.key!r} (rank {top.rank}); declared order is "
                f"mutex < latch < wal < leaf",
            )
        for held in ctx.held:
            if held.key == token.key:
                continue
            edge = (held.key, token.key)
            if edge not in self.edges:
                self.edges[edge] = Finding(
                    ctx.path,
                    getattr(node, "lineno", 0),
                    getattr(node, "col_offset", 0),
                    self.id,
                    f"acquired {token.key!r} while holding {held.key!r}",
                )

    def finalize(self, emit: Callable[[Finding], None]) -> None:
        for (a, b), site in sorted(self.edges.items()):
            if a < b and (b, a) in self.edges:
                other = self.edges[(b, a)]
                emit(Finding(
                    site.path, site.line, site.col, self.id,
                    f"lock-order cycle: {a!r} -> {b!r} here, but "
                    f"{b!r} -> {a!r} at {other.path}:{other.line}",
                ))


@register
class BlockingUnderMutexRule(Rule):
    """No fsync/sync_to/socket/sleep while holding a non-barrier lock."""

    id = "blocking-under-mutex"
    description = (
        "no blocking calls (fsync, sync, sync_to, sleep, socket/subprocess "
        "work) while holding the commit mutex, a latch, or any non-barrier "
        "lock; the kernel fsyncs outside the mutex, then publishes"
    )

    def on_call(self, ctx: Context, node: ast.Call, chain: str) -> None:
        holder = ctx.holding_non_barrier()
        if holder is None:
            return
        leaf = chain.rsplit(".", 1)[-1]
        base = chain.split(".", 1)[0]
        if leaf in BLOCKING_CALLS or base in BLOCKING_BASES:
            ctx.emit(
                node, self.id,
                f"blocking call {chain}() while holding {holder.key!r}; "
                f"move the barrier outside the lock or declare a barrier "
                f"lock / add a justified suppression",
            )


@register
class UnlockedSharedMutationRule(Rule):
    """No bare ``+=``/``-=`` on shared counters outside a lock context."""

    id = "unlocked-shared-mutation"
    description = (
        "no bare += / -= on shared counters (IOStats fields, WAL/planner "
        "counters, _shared-declared attributes) or on closure cells inside "
        "Thread targets, outside a lock context; use IOStats.count() or "
        "hold the owning lock"
    )

    def on_augassign(self, ctx: Context, node: ast.AugAssign) -> None:
        if not isinstance(node.op, (ast.Add, ast.Sub)):
            return
        if ctx.held:
            return
        target = node.target
        if isinstance(target, ast.Attribute):
            if target.attr in ctx.shared_fields:
                ctx.emit(
                    node, self.id,
                    f"bare augmented assignment on shared counter "
                    f"'.{target.attr}' outside any lock; this "
                    f"read-modify-write loses updates under concurrency",
                )
            return
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
            and ctx.current_function in ctx.thread_targets
            and target.value.id not in ctx.local_names
        ):
            ctx.emit(
                node, self.id,
                f"augmented assignment on closure cell "
                f"{target.value.id!r} inside thread target "
                f"{ctx.current_function!r} without a lock",
            )


@register
class EngineLockInReadTurnRule(Rule):
    """Read turns must never take an engine-wide lock."""

    id = "engine-lock-in-read-turn"
    description = (
        "no engine-wide lock acquisition (_write_mutex, write_turn(), the "
        "engine RWLock) inside a read_turn scope; snapshot reads share one "
        "index latch and nothing else"
    )

    def on_acquire(self, ctx: Context, token: LockToken, node: ast.AST) -> None:
        if ctx.read_turn_depth > 0 and token.rank == RANK_MUTEX:
            ctx.emit(
                node, self.id,
                f"engine-wide lock {token.key!r} acquired inside a "
                f"read_turn scope; readers must share only the target "
                f"index's latch",
            )

    def on_call(self, ctx: Context, node: ast.Call, chain: str) -> None:
        if ctx.read_turn_depth > 0 and chain.rsplit(".", 1)[-1] == "write_turn":
            ctx.emit(
                node, self.id,
                "write_turn() entered inside a read_turn scope; upgrade by "
                "releasing the read turn and committing instead",
            )


# --------------------------------------------------------------------------- #
# the interprocedural rules (phase-2: whole-program effect summaries)
# --------------------------------------------------------------------------- #
#: function names allowed to append to the WAL (the commit kernel) —
#: everything else must route mutations through ``Engine._commit``
COMMIT_FUNCTIONS = {"_commit"}

#: teardown functions: destroying without installing a successor is not a
#: swap, and there is no planner left to invalidate
TEARDOWN_FUNCTIONS = {"destroy", "close", "clear", "__exit__", "__del__"}


@register
class CommitProtocolRule(Rule):
    """WAL append → fsync barrier → ordered publish, and nowhere else."""

    id = "commit-protocol"
    description = (
        "the commit ordering is append -> sync_to barrier -> publish -> ack: "
        "WAL appends only inside _commit (or the WAL itself), every append "
        "must transitively reach sync_to, publish must follow the barrier, "
        "and every begun epoch must reach a publish (even on failure)"
    )

    def finalize_program(
        self, program: Program, emit: Callable[[Finding], None]
    ) -> None:
        program.resolve()
        for fn in program.functions.values():
            for site in fn.wal_appends:
                if fn.name not in COMMIT_FUNCTIONS and fn.cls != "WriteAheadLog":
                    emit(Finding(
                        fn.path, site.line, site.col, self.id,
                        f"WAL append in {fn.name!r}, outside the commit "
                        f"kernel; route mutations through Engine._commit so "
                        f"the barrier/publish ordering applies",
                    ))
                if not program.reaches(fn.key, "wal_sync"):
                    emit(Finding(
                        fn.path, site.line, site.col, self.id,
                        f"WAL append in {fn.name!r} never reaches the "
                        f"sync_to durability barrier; an acknowledged commit "
                        f"must survive a crash",
                    ))
            if fn.wal_syncs and fn.epoch_publishes:
                barrier = min(s.line for s in fn.wal_syncs)
                for pub in fn.epoch_publishes:
                    if pub.line < barrier:
                        emit(Finding(
                            fn.path, pub.line, pub.col, self.id,
                            f"epoch published at line {pub.line} before the "
                            f"sync_to barrier at line {barrier}; readers "
                            f"would see a commit a crash can still lose",
                        ))
            for site in fn.epoch_begins:
                if not program.reaches(fn.key, "epoch_publish"):
                    emit(Finding(
                        fn.path, site.line, site.col, self.id,
                        f"epoch begun in {fn.name!r} never reaches a "
                        f"publish; ordered publication waits forever on a "
                        f"leaked epoch (publish in a finally, even on "
                        f"failure)",
                    ))


@register
class UncountedIORule(Rule):
    """Raw file/os I/O must be covered by an IOStats charge on some path."""

    id = "uncounted-io"
    description = (
        "raw file I/O (seek/read/write/truncate on a handle, os.fsync) must "
        "be covered by an IOStats charge — in the same function, through a "
        "callee, or in a resolved caller — so the paper's I/O bounds stay "
        "checkable"
    )

    def _covered(self, program: Program, fn: FunctionSummary) -> bool:
        if program.reaches(fn.key, "charge"):
            return True
        return any(
            program.reaches(caller, "charge") for caller in program.callers(fn.key)
        )

    def finalize_program(
        self, program: Program, emit: Callable[[Finding], None]
    ) -> None:
        program.resolve()
        for fn in program.functions.values():
            if not fn.raw_io or self._covered(program, fn):
                continue
            for site in fn.raw_io:
                emit(Finding(
                    fn.path, site.line, site.col, self.id,
                    f"raw I/O {site.detail}() in {fn.name!r} is not covered "
                    f"by any IOStats charge (no charge in this function, its "
                    f"callees, or a resolved caller)",
                ))


@register
class StalePlanCacheRule(Rule):
    """Structural swaps must bump a plan-cache generation, transitively."""

    id = "stale-plan-cache"
    description = (
        "a structural swap (destroy an old structure + install a replacement "
        "on self) must bump a plan-cache generation (self.generation += 1 or "
        "planner.invalidate()), directly or via a callee — cached plans must "
        "not outlive the structure they reference"
    )

    def finalize_program(
        self, program: Program, emit: Callable[[Finding], None]
    ) -> None:
        program.resolve()
        for fn in program.functions.values():
            if (
                fn.name in TEARDOWN_FUNCTIONS
                or fn.name.startswith("drop")
                or fn.name.startswith("destroy")
            ):
                continue
            if not fn.destroys or not fn.self_assigns:
                continue
            if program.reaches(fn.key, "gen_bump"):
                continue
            site = min(fn.self_assigns, key=lambda s: s.line)
            emit(Finding(
                fn.path, site.line, site.col, self.id,
                f"structural swap in {fn.name!r} (destroys a structure and "
                f"installs 'self.{site.detail}') without a generation bump; "
                f"cached plans will keep referencing the destroyed structure",
            ))


@register
class WireExhaustivenessRule(Rule):
    """COMMANDS, _cmd_* handlers, client methods and codecs must agree."""

    id = "wire-exhaustiveness"
    description = (
        "the wire artifacts must stay in lockstep: every COMMANDS entry has "
        "a _cmd_* handler in every handler class and a method on every "
        "protocol client; the serialization registry covers every "
        "AlgebraicQuery subclass and names only resolvable types; "
        "classify_error's codes match ERROR_CODES"
    )

    def finalize_program(
        self, program: Program, emit: Callable[[Finding], None]
    ) -> None:
        commands: Optional[Set[str]] = None
        for module in program.modules:
            if module.commands is not None:
                commands = module.commands[0]
                break
        for module in program.modules:
            if commands is not None:
                for cls, (handlers, site) in module.handler_classes.items():
                    for missing in sorted(commands - handlers):
                        emit(Finding(
                            module.path, site.line, site.col, self.id,
                            f"handler class {cls!r} has no _cmd_{missing} "
                            f"for declared command {missing!r}",
                        ))
                    for extra in sorted(handlers - commands):
                        emit(Finding(
                            module.path, site.line, site.col, self.id,
                            f"handler {cls}._cmd_{extra} serves a command "
                            f"{extra!r} that COMMANDS does not declare "
                            f"(clients can never reach it)",
                        ))
                if module.mentions_commands:
                    for cls, (methods, site) in module.client_classes.items():
                        for missing in sorted(commands - methods):
                            emit(Finding(
                                module.path, site.line, site.col, self.id,
                                f"client class {cls!r} has no method for "
                                f"declared command {missing!r}",
                            ))
            if module.registry is not None:
                names, site = module.registry
                for cls, line in sorted(module.node_classes.items()):
                    if cls not in names:
                        emit(Finding(
                            module.path, line, 0, self.id,
                            f"query node {cls!r} is missing from the "
                            f"serialization registry; it cannot cross the "
                            f"wire",
                        ))
                defined = set(module.node_classes) | module.imported_names
                defined |= {
                    fn.cls for fn in program.functions.values()
                    if fn.path == module.path and fn.cls is not None
                }
                for name in sorted(names - defined):
                    emit(Finding(
                        module.path, site.line, site.col, self.id,
                        f"registry names {name!r}, which is neither defined "
                        f"nor imported in this module (deserialization "
                        f"would NameError)",
                    ))
            if module.error_codes is not None and module.classify_returns is not None:
                codes, codes_site = module.error_codes
                returns, returns_site = module.classify_returns
                for missing in sorted(codes - returns):
                    emit(Finding(
                        module.path, codes_site.line, codes_site.col, self.id,
                        f"ERROR_CODES declares {missing!r} but "
                        f"classify_error never returns it",
                    ))
                for extra in sorted(returns - codes):
                    emit(Finding(
                        module.path, returns_site.line, returns_site.col,
                        self.id,
                        f"classify_error returns {extra!r}, which "
                        f"ERROR_CODES does not declare",
                    ))


# re-exported so a downstream rule module can extend the leaf set
__all__ = [
    "BLOCKING_BASES",
    "BLOCKING_CALLS",
    "CLUSTER_BARRIER_ATTRS",
    "CLUSTER_LATCH_ATTRS",
    "Context",
    "Finding",
    "LockToken",
    "NONLOCK_CM",
    "RANK_LATCH",
    "RANK_LEAF",
    "RANK_MUTEX",
    "RANK_WAL",
    "Rule",
    "SHARED_COUNTER_FIELDS",
    "all_rules",
    "classify_lock",
    "latch_token",
    "register",
    "rule_catalog",
]
