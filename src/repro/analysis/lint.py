"""Static concurrency linter: an AST pass over the engine's lock surface.

The walker extracts a *lock-acquisition graph* from the syntactic forms the
codebase actually uses —

* ``with self._lock:`` / ``with wal._sync_lock:`` (plain mutex/leaf locks),
* ``lock.acquire()`` … ``lock.release()`` pairs inside one function,
* RWLock latches: ``latch.acquire_read()`` / ``acquire_write()`` /
  ``with latch.read():`` / ``.write()`` / ``.upgrade()``,
* the engine turns: ``with engine.write_turn():`` (an engine-wide lock) and
  ``with engine.read_turn(name) as (idx, stats):`` (a snapshot scope),

and replays every acquisition, call and augmented assignment through the
rule catalog in :mod:`repro.analysis.lintrules`.  Lock analysis is
**within-function and syntactic**: a lock acquired in one function and a
blocking call in another are connected only by the runtime witness
(:mod:`repro.analysis.lockdep`), never by this pass — that division is what
keeps the linter free of false positives on cross-object composition
(e.g. the buffer pool calling ``disk.write`` under its own leaf lock).

The *protocol* rules, by contrast, are **interprocedural**: every linted
file also feeds the effect-summary model of
:mod:`repro.analysis.effects`, and :meth:`Linter.finish` runs the
phase-2 rules (commit-protocol, uncounted-io, stale-plan-cache,
wire-exhaustiveness) over the resolved call graph, so an invariant
satisfied inside a helper function still counts and one violated across
a call chain is still caught.

Suppressions: ``# lint: allow(rule-name)`` on the offending line or on a
comment-only line directly above it.  Suppressed findings are counted in
the report so a review can audit them.

Token naming deliberately qualifies lock attributes by their owner
(``IOStats._lock`` vs ``BufferManager._lock``) so two classes that both
name their private lock ``_lock`` never produce a bogus cycle edge.
"""

from __future__ import annotations

import ast
import json
import re
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.effects import Program
from repro.analysis.lintrules import (
    Context,
    Finding,
    LockToken,
    NONLOCK_CM,
    RANK_MUTEX,
    Rule,
    all_rules,
    classify_lock,
    latch_token,
    rule_catalog,
)

_ALLOW_RE = re.compile(r"#\s*lint:\s*allow\(\s*([a-z0-9_,\s-]+?)\s*\)")

#: substrings that mark an attribute / name as a lock object
_LOCKY = ("lock", "mutex", "latch", "cond")
#: with-item method calls that acquire an RWLock latch
_LATCH_CM = {"read", "write", "upgrade"}
_LATCH_ACQUIRE = {"acquire_read": "read", "acquire_write": "write"}
_LATCH_RELEASE = {"release_read", "release_write"}


def _is_locky(name: str) -> bool:
    low = name.lower()
    return any(part in low for part in _LOCKY)


def _dotted(node: ast.expr) -> str:
    """Best-effort dotted repr of a receiver/callee expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return f"{_dotted(node.value)}.{node.attr}"
    if isinstance(node, ast.Call):
        return f"{_dotted(node.func)}(...)"
    if isinstance(node, ast.Subscript):
        return f"{_dotted(node.value)}[...]"
    return "<expr>"


def _scan_suppressions(source: str) -> Tuple[Dict[int, Set[str]], Set[int]]:
    """``{lineno: {rule, ...}}`` plus the set of comment-only line numbers."""
    allows: Dict[int, Set[str]] = {}
    comment_only: Set[int] = set()
    for lineno, line in enumerate(source.splitlines(), start=1):
        stripped = line.strip()
        if stripped.startswith("#"):
            comment_only.add(lineno)
        match = _ALLOW_RE.search(line)
        if match:
            rules = {part.strip() for part in match.group(1).split(",")}
            allows[lineno] = {r for r in rules if r}
    return allows, comment_only


def _scan_thread_targets(tree: ast.Module) -> Set[str]:
    """Function names passed as ``Thread(target=...)`` anywhere in the module."""
    targets: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _dotted(node.func)
        if callee.rsplit(".", 1)[-1] != "Thread":
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                if isinstance(kw.value, ast.Name):
                    targets.add(kw.value.id)
                elif isinstance(kw.value, ast.Attribute):
                    targets.add(kw.value.attr)
    return targets


def _scan_shared_decls(tree: ast.Module) -> Set[str]:
    """Fields listed in class-level ``_shared = ("a", "b")`` declarations."""
    fields: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for stmt in node.body:
            if not isinstance(stmt, ast.Assign):
                continue
            names = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if "_shared" not in names:
                continue
            if isinstance(stmt.value, (ast.Tuple, ast.List)):
                for elt in stmt.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        fields.add(elt.value)
    return fields


class _Walker(ast.NodeVisitor):
    """One file's traversal: scope tracking + held-lock bookkeeping."""

    def __init__(self, ctx: Context, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.rules = rules

    # ------------------------------------------------------------------ #
    # scopes
    # ------------------------------------------------------------------ #
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        prev = self.ctx.current_class
        self.ctx.current_class = node.name
        self.generic_visit(node)
        self.ctx.current_class = prev

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        ctx = self.ctx
        prev_fn, prev_held, prev_locals, prev_rt = (
            ctx.current_function, ctx.held, ctx.local_names, ctx.read_turn_depth,
        )
        ctx.current_function = node.name
        ctx.held = []
        ctx.read_turn_depth = 0
        ctx.local_names = self._bound_names(node)
        for stmt in node.body:
            self.visit(stmt)
        ctx.current_function = prev_fn
        ctx.held = prev_held
        ctx.local_names = prev_locals
        ctx.read_turn_depth = prev_rt

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    @staticmethod
    def _bound_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> Set[str]:
        """Names *assigned* in the body (excluding parameters): a list built
        locally is private; a parameter or closure cell is shared."""
        bound: Set[str] = set()
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for name in ast.walk(target):
                        if isinstance(name, ast.Name):
                            bound.add(name.id)
            elif isinstance(stmt, (ast.AnnAssign, ast.For, ast.AsyncFor)):
                target = stmt.target
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        bound.add(name.id)
        return bound

    # ------------------------------------------------------------------ #
    # lock classification
    # ------------------------------------------------------------------ #
    def _owner_of(self, receiver: ast.expr) -> str:
        if isinstance(receiver, ast.Name) and receiver.id == "self":
            return self.ctx.current_class
        return _dotted(receiver)

    def _with_item_token(self, item: ast.expr) -> Optional[LockToken]:
        """The lock token a ``with`` item acquires, if it is a lock at all."""
        if isinstance(item, ast.Attribute) and _is_locky(item.attr):
            return classify_lock(self._owner_of(item.value), item.attr)
        if isinstance(item, ast.Name) and _is_locky(item.id):
            return LockToken(item.id, rank=3)
        if isinstance(item, ast.Call) and isinstance(item.func, ast.Attribute):
            method = item.func.attr
            if method in NONLOCK_CM:
                # Tracer.span(...) is instrumentation, not a lock — no
                # token, however locky the receiver happens to be named
                return None
            recv = _dotted(item.func.value)
            if method == "write_turn":
                return LockToken(f"{recv}.write_turn", RANK_MUTEX)
            if method in _LATCH_CM and _is_locky(recv):
                return latch_token(recv)
        return None

    # ------------------------------------------------------------------ #
    # acquisition / release events
    # ------------------------------------------------------------------ #
    def _acquire(self, token: LockToken, node: ast.AST) -> None:
        for rule in self.rules:
            rule.on_acquire(self.ctx, token, node)
        self.ctx.held.append(token)

    def _release(self, key: str) -> None:
        held = self.ctx.held
        for i in range(len(held) - 1, -1, -1):
            if held[i].key == key:
                del held[i]
                return

    def visit_With(self, node: ast.With) -> None:
        self._visit_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._visit_with(node)

    def _visit_with(self, node: ast.With | ast.AsyncWith) -> None:
        ctx = self.ctx
        pushed: List[LockToken] = []
        read_turns = 0
        for item in node.items:
            expr = item.context_expr
            call_attr = (
                expr.func.attr
                if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute)
                else None
            )
            if call_attr == "read_turn":
                ctx.read_turn_depth += 1
                read_turns += 1
                token = LockToken(f"latch:{_dotted(expr.func.value)}.read_turn", 1)
                self._acquire(token, expr)
                pushed.append(token)
                continue
            token_or_none = self._with_item_token(expr)
            if token_or_none is not None:
                self._acquire(token_or_none, expr)
                pushed.append(token_or_none)
            else:
                # not a lock: still walk the expression (calls inside it)
                self.visit(expr)
        for stmt in node.body:
            self.visit(stmt)
        for token in pushed:
            self._release(token.key)
        ctx.read_turn_depth -= read_turns

    # ------------------------------------------------------------------ #
    # calls and mutations
    # ------------------------------------------------------------------ #
    def visit_Call(self, node: ast.Call) -> None:
        chain = _dotted(node.func)
        if isinstance(node.func, ast.Attribute):
            method = node.func.attr
            recv = node.func.value
            recv_repr = _dotted(recv)
            if method == "acquire" and _is_locky(recv_repr):
                token = (
                    classify_lock(self._owner_of(recv.value), recv.attr)
                    if isinstance(recv, ast.Attribute)
                    else LockToken(recv_repr, rank=3)
                )
                self._acquire(token, node)
                self.generic_visit(node)
                return
            if method == "release" and _is_locky(recv_repr):
                token = (
                    classify_lock(self._owner_of(recv.value), recv.attr)
                    if isinstance(recv, ast.Attribute)
                    else LockToken(recv_repr, rank=3)
                )
                self._release(token.key)
                self.generic_visit(node)
                return
            if method in _LATCH_ACQUIRE and _is_locky(recv_repr):
                self._acquire(latch_token(recv_repr), node)
                self.generic_visit(node)
                return
            if method in _LATCH_RELEASE and _is_locky(recv_repr):
                self._release(latch_token(recv_repr).key)
                self.generic_visit(node)
                return
        for rule in self.rules:
            rule.on_call(self.ctx, node, chain)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        for rule in self.rules:
            rule.on_augassign(self.ctx, node)
        self.generic_visit(node)


class Linter:
    """Run the rule catalog over sources; collect findings + the lock graph."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.findings: List[Finding] = []
        self.suppressed: List[Finding] = []
        self.files_checked = 0
        #: the whole-program effect model (phase 1 filled per file; phase 2
        #: resolved once in :meth:`finish`)
        self.program = Program()
        self._allows: Dict[str, Dict[int, Set[str]]] = {}
        self._comment_only: Dict[str, Set[int]] = {}
        self._finalized = False

    # ------------------------------------------------------------------ #
    def lint_source(self, source: str, path: str) -> None:
        tree = ast.parse(source, filename=path)
        allows, comment_only = _scan_suppressions(source)
        self._allows[path] = allows
        self._comment_only[path] = comment_only
        ctx = Context(
            path,
            lambda line, col, rule, msg: self._emit(
                Finding(path, line, col, rule, msg)
            ),
        )
        ctx.thread_targets = _scan_thread_targets(tree)
        ctx.shared_fields |= _scan_shared_decls(tree)
        _Walker(ctx, self.rules).visit(tree)
        self.program.add_module(tree, path)
        self.files_checked += 1

    def lint_paths(self, paths: Iterable[Path]) -> None:
        for file in sorted(self._expand(paths)):
            self.lint_source(file.read_text(encoding="utf-8"), str(file))

    @staticmethod
    def _expand(paths: Iterable[Path]) -> Set[Path]:
        files: Set[Path] = set()
        for path in paths:
            if path.is_dir():
                files |= {
                    p for p in path.rglob("*.py") if "__pycache__" not in p.parts
                }
            elif path.suffix == ".py":
                files.add(path)
        return files

    # ------------------------------------------------------------------ #
    def _suppressed(self, finding: Finding) -> bool:
        allows = self._allows.get(finding.path, {})
        line_rules = allows.get(finding.line, set())
        if finding.rule in line_rules:
            return True
        prev = finding.line - 1
        if prev in self._comment_only.get(finding.path, set()):
            if finding.rule in allows.get(prev, set()):
                return True
        return False

    def _emit(self, finding: Finding) -> None:
        if self._suppressed(finding):
            self.suppressed.append(finding)
        else:
            self.findings.append(finding)

    def finish(self) -> List[Finding]:
        """Run the phase-2 program rules + cross-file finalizers; idempotent."""
        if not self._finalized:
            self._finalized = True
            self.program.resolve()
            for rule in self.rules:
                rule.finalize_program(self.program, self._emit)
                rule.finalize(self._emit)
        self.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return self.findings

    # ------------------------------------------------------------------ #
    def lock_edges(self) -> List[Tuple[str, str]]:
        """The static acquisition graph (from the lock-order rule's state)."""
        for rule in self.rules:
            edges = getattr(rule, "edges", None)
            if isinstance(edges, dict):
                return sorted(edges)
        return []

    def report(self) -> Dict[str, object]:
        self.finish()
        return {
            "files_checked": self.files_checked,
            "findings": [f.as_dict() for f in self.findings],
            "suppressed": [f.as_dict() for f in self.suppressed],
            "lock_graph": [list(edge) for edge in self.lock_edges()],
            "effects": self.program.stats(),
            "rules": rule_catalog(),
        }


def lint_paths(paths: Sequence[Path]) -> Linter:
    """Convenience: lint ``paths`` and return the finished :class:`Linter`."""
    linter = Linter()
    linter.lint_paths(paths)
    linter.finish()
    return linter


def render_report(linter: Linter) -> str:
    """Human-readable summary (what ``repro lint`` prints)."""
    lines = [finding.render() for finding in linter.finish()]
    lines.append(
        f"checked {linter.files_checked} file(s): "
        f"{len(linter.findings)} finding(s), "
        f"{len(linter.suppressed)} suppressed, "
        f"{len(linter.lock_edges())} lock-order edge(s)"
    )
    return "\n".join(lines)


def write_json_report(linter: Linter, out: Path) -> None:
    out.write_text(json.dumps(linter.report(), indent=2) + "\n", encoding="utf-8")


# --------------------------------------------------------------------------- #
# the seeded fixture corpus (the linter's own regression suite)
# --------------------------------------------------------------------------- #
_SEEDED_RE = re.compile(r"#\s*seeded:\s*([a-z0-9-]+)")


def check_fixture_corpus(root: Path) -> Dict[str, object]:
    """Lint every fixture file and match findings against ``# seeded:`` marks.

    Each deliberately-bad line in the corpus carries a trailing
    ``# seeded: <rule>`` comment; the linter must flag *exactly* those
    lines with those rules.  Every file is linted with a fresh rule set so
    one fixture's lock graph cannot leak edges into another's.  Returns
    ``{"expected", "flagged", "missed", "unexpected", "ok"}`` where the
    middle three are lists of ``(path, line, rule)`` triples.
    """
    expected: Set[Tuple[str, int, str]] = set()
    flagged: Set[Tuple[str, int, str]] = set()
    for file in sorted(root.rglob("*.py")):
        if "__pycache__" in file.parts:
            continue
        source = file.read_text(encoding="utf-8")
        for lineno, line in enumerate(source.splitlines(), start=1):
            for match in _SEEDED_RE.finditer(line):
                expected.add((str(file), lineno, match.group(1)))
        linter = Linter()
        linter.lint_source(source, str(file))
        for finding in linter.finish():
            flagged.add((finding.path, finding.line, finding.rule))
    missed = sorted(expected - flagged)
    unexpected = sorted(flagged - expected)
    return {
        "expected": sorted(expected),
        "flagged": sorted(flagged),
        "missed": missed,
        "unexpected": unexpected,
        "ok": not missed and not unexpected,
    }
