"""Runtime lock-order witness (lockdep): dynamic teeth for the lock rules.

The static pass in :mod:`repro.analysis.lint` proves what it can see in the
syntax; this module watches what actually happens.  When a
:class:`LockdepWitness` is enabled (:func:`enable`), every instrumented
lock — the engine's per-index :class:`~repro.engine.session.RWLock`
latches, the engine-wide session lock, and the commit kernel's write
mutex — reports its acquisitions and releases per thread, and the witness
maintains the global **acquisition DAG**: an edge ``A -> B`` means some
thread acquired ``B`` while holding ``A``.

Two violation classes fail *immediately* (first occurrence, with both
acquisition sites in the error):

* **cycles / rank inversions** — acquiring a lock whose declared rank is
  lower than one already held (the commit kernel's partial order is
  mutex ≺ latch ≺ WAL), or closing a cycle among same-rank locks (latch A
  then B on one thread, B then A on another): the classic deadlock
  witness.  Deadlocks need an unlucky interleaving to bite; the DAG
  catches the *possibility* on any interleaving that exercises both
  orders.
* **held-across-blocking** — a durability barrier
  (:meth:`~repro.durability.wal.WriteAheadLog.sync_to`, a sidecar fsync)
  reached while this thread holds a lock marked ``no_block`` (the
  latches).  The kernel's whole point is that readers wait for structural
  changes, never for the platter; this is the invariant that keeps it
  true.  The engine-wide *write mutex* is deliberately not ``no_block``:
  multi-commit turns (``delete_matching``) hold it across acknowledged
  commits by design, so fsync-under-mutex is enforced by the static pass
  at the kernel's own syntax instead.

The witness costs one attribute load per acquisition when disabled (the
module global :data:`ACTIVE` is ``None``) and is therefore safe to leave
compiled into the hot paths.  Enable it in tests::

    from repro.analysis import lockdep

    with lockdep.watching() as witness:
        ... run a concurrent workload ...
    assert witness.edge_count() > 0      # it saw real nesting

:func:`allow_blocking` is the runtime analogue of the static
``# lint: allow(...)`` suppression — a scope in which barrier calls are
legitimate (a quiesced checkpoint), recorded in the witness report.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Set, Tuple, Type

#: the commit kernel's declared partial order (lower acquires first)
RANK_MUTEX = 0   #: engine write mutex / engine-wide session lock
RANK_LATCH = 1   #: per-index structural latches
RANK_WAL = 2     #: WAL append / sync barrier locks
RANK_LEAF = 3    #: innermost leaf locks (counters, buffer pool, file handle)

RANK_NAMES = {
    RANK_MUTEX: "mutex",
    RANK_LATCH: "latch",
    RANK_WAL: "wal",
    RANK_LEAF: "leaf",
}


class LockOrderError(RuntimeError):
    """The witness saw an acquisition that closes a cycle or inverts rank."""


class BlockingUnderLockError(RuntimeError):
    """A blocking barrier ran while this thread held a ``no_block`` lock."""


class _Held:
    """One held lock on one thread's stack (reentrant holds count up)."""

    __slots__ = ("key", "rank", "no_block", "count")

    def __init__(self, key: str, rank: int, no_block: bool) -> None:
        self.key = key
        self.rank = rank
        self.no_block = no_block
        self.count = 1


class LockdepWitness:
    """Records the per-thread acquisition DAG; raises on the first violation.

    Thread-safe: the graph and counters live behind one internal leaf lock;
    per-thread held stacks are thread-local.  ``strict=False`` collects
    violations into :attr:`violations` instead of raising (used by the
    report path of ``repro lint``).
    """

    def __init__(self, *, strict: bool = True) -> None:
        self.strict = strict
        self._local = threading.local()
        self._graph_lock = threading.Lock()
        #: edge -> first acquisition site description
        self._edges: Dict[Tuple[str, str], str] = {}
        self._locks_seen: Set[str] = set()
        self.acquisitions = 0
        self.blocking_calls = 0
        self.allowed_blocking_calls = 0
        self.violations: List[str] = []

    # ------------------------------------------------------------------ #
    # thread-local held stack
    # ------------------------------------------------------------------ #
    def _stack(self) -> List[_Held]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _allow_depth(self) -> int:
        return int(getattr(self._local, "allow_depth", 0))

    # ------------------------------------------------------------------ #
    # instrumentation entry points (called by the locks themselves)
    # ------------------------------------------------------------------ #
    def acquired(
        self,
        key: str,
        rank: int,
        *,
        no_block: bool = False,
        reentrant: bool = False,
    ) -> None:
        """A lock was just acquired by the current thread.

        Called *after* the underlying primitive granted the lock, so the
        recorded edges describe real nesting, not contention.  Reentrant
        re-acquisition of an already-held key only bumps its hold count —
        no self-edge, no rank check against itself.
        """
        stack = self._stack()
        for held in stack:
            if held.key == key:
                if reentrant:
                    held.count += 1
                    return
                self._violate(
                    LockOrderError,
                    f"non-reentrant lock {key!r} re-acquired while already "
                    f"held by this thread",
                )
                return
        holder = _Held(key, rank, no_block)
        with self._graph_lock:
            self.acquisitions += 1
            self._locks_seen.add(key)
        if stack:
            top = stack[-1]
            if rank < top.rank:
                self._violate(
                    LockOrderError,
                    f"rank inversion: acquired {key!r} "
                    f"({RANK_NAMES.get(rank, rank)}) while holding "
                    f"{top.key!r} ({RANK_NAMES.get(top.rank, top.rank)}); "
                    f"the declared order is mutex ≺ latch ≺ wal",
                )
            for held in stack:
                self._add_edge(held.key, key)
        stack.append(holder)

    def released(self, key: str) -> None:
        """A lock was released by the current thread (LIFO not required)."""
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i].key == key:
                stack[i].count -= 1
                if stack[i].count == 0:
                    del stack[i]
                return
        # a release the witness never saw acquired (enabled mid-hold):
        # ignore rather than poison the run
        return

    def blocking(self, what: str) -> None:
        """A blocking barrier (fsync, sync_to) is about to run on this thread."""
        if self._allow_depth():
            with self._graph_lock:
                self.allowed_blocking_calls += 1
            return
        with self._graph_lock:
            self.blocking_calls += 1
        for held in self._stack():
            if held.no_block:
                self._violate(
                    BlockingUnderLockError,
                    f"blocking call {what!r} while holding {held.key!r}; "
                    f"barriers must run outside latches (fsync outside the "
                    f"mutex, then ordered publish)",
                )

    @contextmanager
    def allow_blocking(self, reason: str) -> Iterator[None]:
        """Scope in which barriers are legitimate (a quiesced checkpoint)."""
        self._local.allow_depth = self._allow_depth() + 1
        try:
            yield
        finally:
            self._local.allow_depth = self._allow_depth() - 1

    # ------------------------------------------------------------------ #
    # the acquisition DAG
    # ------------------------------------------------------------------ #
    def _add_edge(self, a: str, b: str) -> None:
        with self._graph_lock:
            if (a, b) in self._edges:
                return
            thread = threading.current_thread().name
            if self._path_exists(b, a):
                self._edges[(a, b)] = thread
                cycle = self._describe_cycle(a, b)
                self._violate_locked(
                    LockOrderError,
                    f"lock-order cycle: acquired {b!r} while holding {a!r}, "
                    f"but the reverse order was already witnessed ({cycle})",
                )
                return
            self._edges[(a, b)] = thread

    def _path_exists(self, start: str, goal: str) -> bool:
        # caller holds self._graph_lock
        frontier = [start]
        seen = {start}
        while frontier:
            node = frontier.pop()
            if node == goal:
                return True
            for (a, b) in self._edges:
                if a == node and b not in seen:
                    seen.add(b)
                    frontier.append(b)
        return False

    def _describe_cycle(self, a: str, b: str) -> str:
        reverse = [
            f"{x!r} -> {y!r} on thread {t}"
            for (x, y), t in self._edges.items()
            if (x, y) != (a, b)
        ]
        return "; ".join(reverse[:4]) if reverse else "reverse edge"

    def _violate(self, kind: Type[RuntimeError], message: str) -> None:
        with self._graph_lock:
            self.violations.append(message)
        if self.strict:
            raise kind(message)

    def _violate_locked(self, kind: Type[RuntimeError], message: str) -> None:
        # caller holds self._graph_lock
        self.violations.append(message)
        if self.strict:
            raise kind(message)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def edge_count(self) -> int:
        with self._graph_lock:
            return len(self._edges)

    def edges(self) -> List[Tuple[str, str]]:
        """The witnessed acquisition edges, sorted for stable output."""
        with self._graph_lock:
            return sorted(self._edges)

    def report(self) -> Dict[str, object]:
        """Witness state as plain data (what ``repro lint`` can attach)."""
        with self._graph_lock:
            return {
                "locks": sorted(self._locks_seen),
                "edges": [list(edge) for edge in sorted(self._edges)],
                "acquisitions": self.acquisitions,
                "blocking_calls": self.blocking_calls,
                "allowed_blocking_calls": self.allowed_blocking_calls,
                "violations": list(self.violations),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LockdepWitness(locks={len(self._locks_seen)}, "
            f"edges={self.edge_count()}, violations={len(self.violations)})"
        )


class WitnessedMutex:
    """A reentrant mutex that reports acquisitions to the active witness.

    A drop-in replacement for ``threading.RLock()`` at the engine's write
    mutex: ``with engine._write_mutex:`` keeps its exact syntax (so the
    static pass still classifies the attribute by name) while the runtime
    witness sees every acquisition.  Reentrant holds bump a count instead
    of adding self-edges, matching :meth:`LockdepWitness.acquired`'s
    ``reentrant=True`` contract.
    """

    __slots__ = ("_lock", "name", "rank", "no_block")

    def __init__(
        self,
        name: str,
        *,
        rank: int = RANK_MUTEX,
        no_block: bool = False,
    ) -> None:
        self._lock = threading.RLock()
        self.name = name
        self.rank = rank
        self.no_block = no_block

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)
        if got:
            witness = ACTIVE
            if witness is not None:
                witness.acquired(
                    self.name, self.rank, no_block=self.no_block, reentrant=True
                )
        return got

    def release(self) -> None:
        self._lock.release()
        witness = ACTIVE
        if witness is not None:
            witness.released(self.name)

    def __enter__(self) -> "WitnessedMutex":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WitnessedMutex({self.name!r}, rank={self.rank})"


#: the enabled witness, or ``None`` (the common, zero-instrumentation case).
#: Hot paths read this exactly once per acquisition.
ACTIVE: Optional[LockdepWitness] = None


def enable(witness: Optional[LockdepWitness] = None) -> LockdepWitness:
    """Install a witness as the process-wide :data:`ACTIVE` instance."""
    global ACTIVE
    if ACTIVE is not None:
        raise RuntimeError("a lockdep witness is already enabled")
    ACTIVE = witness if witness is not None else LockdepWitness()
    return ACTIVE


def disable() -> Optional[LockdepWitness]:
    """Remove the active witness; returns it for post-mortem inspection."""
    global ACTIVE
    witness, ACTIVE = ACTIVE, None
    return witness


@contextmanager
def watching(witness: Optional[LockdepWitness] = None) -> Iterator[LockdepWitness]:
    """``with lockdep.watching() as w:`` — enable for the scope, then detach."""
    w = enable(witness)
    try:
        yield w
    finally:
        disable()


@contextmanager
def allowed(reason: str) -> Iterator[None]:
    """Blocking-barrier suppression that is safe when no witness is active.

    The engine brackets its *legitimate* barrier-under-lock sites (the
    quiesced checkpoint) with this, mirroring the static pass's
    ``# lint: allow(blocking-under-mutex)`` suppressions.
    """
    witness = ACTIVE
    if witness is None:
        yield
        return
    with witness.allow_blocking(reason):
        yield


def notify_blocking(what: str) -> None:
    """Report an imminent blocking barrier to the active witness, if any."""
    witness = ACTIVE
    if witness is not None:
        witness.blocking(what)
