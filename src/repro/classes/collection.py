"""Indexing a collection of objects (the paper's building block).

"We use the term *index a collection* when we build a B+-tree on a
collection of objects" (Section 2.2).  Every class-indexing scheme in the
paper is an arrangement of such indexed collections; this thin wrapper keeps
the object-record handling in one place.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List

from repro.btree import BPlusTree
from repro.classes.hierarchy import ClassObject


class CollectionIndex:
    """A B+-tree over the ``key`` attribute of a collection of objects."""

    def __init__(self, disk, objects: Iterable[ClassObject] = (), name: str = "collection") -> None:
        self.disk = disk
        self.name = name
        self.tree = BPlusTree.bulk_load(disk, ((obj.key, obj) for obj in objects), name=name)

    # -- updates --------------------------------------------------------- #
    def insert(self, obj: ClassObject) -> None:
        """Insert one object (``O(log_B n)`` I/Os)."""
        self.tree.insert(obj.key, obj)

    def delete(self, obj: ClassObject) -> bool:
        """Delete one object (matched by uid); ``True`` when it was present.

        Matching by the record's stable ``uid`` rather than by value means
        deleting one of several value-identical objects removes exactly the
        record asked for, never an equal twin.
        """
        return self.tree.delete(obj.key, match=lambda v, uid=obj.uid: v.uid == uid)

    def destroy(self) -> None:
        """Free every block of the underlying tree (rebuilds use this)."""
        self.tree.destroy()

    # -- queries --------------------------------------------------------- #
    def range_query(self, low: Any, high: Any) -> List[ClassObject]:
        """All objects with ``low <= key <= high`` (``O(log_B n + t/B)`` I/Os)."""
        return list(self.iter_range(low, high))

    def iter_range(self, low: Any, high: Any) -> Iterator[ClassObject]:
        """Stream the objects with ``low <= key <= high``, leaf by leaf."""
        for _, obj in self.tree.iter_range(low, high):
            yield obj

    # -- accounting ------------------------------------------------------ #
    def block_count(self) -> int:
        return self.tree.block_count()

    def __len__(self) -> int:
        return len(self.tree)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CollectionIndex(name={self.name!r}, n={len(self.tree)})"
