"""The class hierarchy model and the ``label-class`` procedure.

Example 2.3 of the paper: a ``Person`` class with children ``Professor`` and
``Student``, and ``Assistant-Professor`` below ``Professor``.  Every object
belongs to exactly one class; the *extent* of a class is the set of its own
objects and the *full extent* additionally includes the objects of every
descendant class.

Proposition 2.5 reduces class indexing to two-dimensional range searching by
attaching to every class a rational interval (computed by ``label-class``,
Fig. 4) such that a class's interval contains exactly the intervals of its
descendants.  The class *value* (the left end of its interval) becomes the
static dimension of the 2-D search.

Intervals are represented as :class:`fractions.Fraction` so arbitrarily deep
hierarchies cannot collide due to floating-point rounding.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

#: monotone source of record uids; every constructed object gets a fresh one
_OBJECT_UIDS = itertools.count()


@dataclass(frozen=True)
class ClassObject:
    """An object stored in the database.

    Attributes
    ----------
    key:
        The indexed attribute value (the "salary" of Example 2.4).
    class_name:
        The class the object belongs to (its extent).
    payload:
        Arbitrary application data carried along (not indexed).
    uid:
        Process-unique, serialization-stable record identity (used by the
        query planner's union deduplication; not part of equality).
    """

    key: Any
    class_name: str
    payload: Any = field(default=None, compare=False)
    uid: int = field(
        default_factory=lambda: next(_OBJECT_UIDS), compare=False, repr=False
    )


class ClassHierarchy:
    """A static forest of classes (the class/subclass relationship).

    The hierarchy must be fully built before any index is constructed over
    it — the paper's structures all assume a static class/subclass
    relationship (Section 1.3) — but objects may be inserted afterwards.
    """

    def __init__(self) -> None:
        self._parent: Dict[str, Optional[str]] = {}
        self._children: Dict[str, List[str]] = {}
        self._labels: Optional[Dict[str, Tuple[Fraction, Fraction]]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_class(self, name: str, parent: Optional[str] = None) -> None:
        """Add a class, optionally as a child of an existing class."""
        if name in self._parent:
            raise ValueError(f"class {name!r} already exists")
        if parent is not None and parent not in self._parent:
            raise KeyError(f"unknown parent class {parent!r}")
        self._parent[name] = parent
        self._children[name] = []
        if parent is not None:
            self._children[parent].append(name)
        self._labels = None  # labels must be recomputed

    @classmethod
    def from_edges(cls, edges: Iterable[Tuple[str, Optional[str]]]) -> "ClassHierarchy":
        """Build from ``(class, parent)`` pairs; parents must come first."""
        hierarchy = cls()
        for name, parent in edges:
            hierarchy.add_class(name, parent)
        return hierarchy

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        return name in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def classes(self) -> List[str]:
        return list(self._parent.keys())

    def roots(self) -> List[str]:
        return [c for c, p in self._parent.items() if p is None]

    def parent(self, name: str) -> Optional[str]:
        return self._parent[name]

    def children(self, name: str) -> List[str]:
        return list(self._children[name])

    def is_leaf(self, name: str) -> bool:
        return not self._children[name]

    def ancestors(self, name: str) -> List[str]:
        """Ancestors from the parent up to the root (exclusive of ``name``)."""
        out = []
        current = self._parent[name]
        while current is not None:
            out.append(current)
            current = self._parent[current]
        return out

    def descendants(self, name: str) -> List[str]:
        """The class itself and every class below it (the *full extent* classes)."""
        out = []
        stack = [name]
        while stack:
            current = stack.pop()
            out.append(current)
            stack.extend(self._children[current])
        return out

    def subtree_size(self, name: str) -> int:
        return len(self.descendants(name))

    def depth(self, name: str) -> int:
        """Distance from the root (roots have depth 0)."""
        return len(self.ancestors(name))

    def max_depth(self) -> int:
        return max((self.depth(c) for c in self.classes()), default=0)

    def iter_topological(self) -> Iterator[str]:
        """Parents before children."""
        for root in self.roots():
            stack = [root]
            while stack:
                current = stack.pop()
                yield current
                stack.extend(reversed(self._children[current]))

    def validate(self) -> None:
        """Check the forest structure (no cycles, single parent)."""
        seen = set()
        for root in self.roots():
            stack = [root]
            while stack:
                current = stack.pop()
                if current in seen:
                    raise ValueError(f"cycle or shared node detected at {current!r}")
                seen.add(current)
                stack.extend(self._children[current])
        if len(seen) != len(self._parent):
            unreachable = set(self._parent) - seen
            raise ValueError(f"classes not reachable from any root: {sorted(unreachable)}")

    # ------------------------------------------------------------------ #
    # label-class (Proposition 2.5, Fig. 4)
    # ------------------------------------------------------------------ #
    def labels(self) -> Dict[str, Tuple[Fraction, Fraction]]:
        """The half-open interval ``[low, high)`` assigned to every class.

        The root(s) of the forest divide ``[0, 1)`` evenly; a class with
        range ``[lo, hi)`` keeps value ``lo`` for its own extent and divides
        the remainder of its range evenly among its ``k`` children, handing
        child ``i`` the sub-range
        ``[lo + (i+1)(hi-lo)/(k+1), lo + (i+2)(hi-lo)/(k+1))``.
        A class's range then contains exactly the ranges of its descendants.
        """
        if self._labels is None:
            labels: Dict[str, Tuple[Fraction, Fraction]] = {}
            roots = self.roots()
            k = len(roots)
            for i, root in enumerate(roots):
                low = Fraction(i, k) if k else Fraction(0)
                high = Fraction(i + 1, k) if k else Fraction(1)
                self._label_class(root, low, high, labels)
            self._labels = labels
        return dict(self._labels)

    def _label_class(
        self,
        name: str,
        low: Fraction,
        high: Fraction,
        labels: Dict[str, Tuple[Fraction, Fraction]],
    ) -> None:
        labels[name] = (low, high)
        children = self._children[name]
        if not children:
            return
        k = len(children)
        width = (high - low) / (k + 1)
        for i, child in enumerate(children):
            child_low = low + width * (i + 1)
            child_high = low + width * (i + 2)
            self._label_class(child, child_low, child_high, labels)

    def class_value(self, name: str) -> Fraction:
        """The class attribute value assigned by ``label-class`` (the range's left end)."""
        return self.labels()[name][0]

    def class_range(self, name: str) -> Tuple[Fraction, Fraction]:
        """The half-open range covering the class and all its descendants."""
        return self.labels()[name]

    def classes_by_value(self) -> List[str]:
        """Classes sorted by their ``label-class`` value (the 1-D embedding)."""
        labels = self.labels()
        return sorted(self.classes(), key=lambda c: labels[c][0])


def people_hierarchy() -> ClassHierarchy:
    """The four-class hierarchy of Example 2.3 (used in tests and examples)."""
    hierarchy = ClassHierarchy()
    hierarchy.add_class("Person")
    hierarchy.add_class("Professor", "Person")
    hierarchy.add_class("Student", "Person")
    hierarchy.add_class("AssistantProfessor", "Professor")
    return hierarchy
