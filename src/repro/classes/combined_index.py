"""The combined class index of Theorem 4.7.

``rake-and-contract`` (Lemma 4.6) turns the class hierarchy into *pieces*:

* every **raked** class gets an explicit B+-tree over its full extent, so a
  query on it is a plain one-dimensional range search
  (``O(log_B n + t/B)`` I/Os);
* every **contracted** thick path gets one 3-sided structure
  (:class:`~repro.metablock.ThreeSidedMetablockTree`, Lemma 4.4) storing, for
  each path node, the objects of the extents accumulated at that node with
  the node's path position as the y coordinate.  A query on a path class is
  the 3-sided query ``attribute in [a1, a2], position >= class position``
  (``O(log_B n + log2 B + t/B)`` I/Os).

Because every extent is copied into at most ``log2 c`` pieces (Lemma 4.6),
space is ``O((n/B) log2 c)`` blocks and an insert touches at most
``log2 c`` structures, giving the amortized insert bound
``O(log2 c (log_B n + (log_B n)^2/B))`` of Theorem 4.7.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.classes.collection import CollectionIndex
from repro.classes.decomposition import (
    HierarchyDecomposition,
    PathPiece,
    RakePiece,
    label_edges,
    rake_and_contract,
)
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.metablock.geometry import PlanarPoint
from repro.metablock.three_sided import ThreeSidedMetablockTree


class CombinedClassIndex:
    """Class index with query I/O independent of the hierarchy size (Theorem 4.7)."""

    def __init__(self, disk, hierarchy: ClassHierarchy, objects: Iterable[ClassObject] = ()) -> None:
        self.disk = disk
        self.hierarchy = hierarchy
        self.labeling = label_edges(hierarchy)
        self.decomposition: HierarchyDecomposition = rake_and_contract(hierarchy, self.labeling)

        # map class -> every (piece_id, position) its extent participates in
        self._extent_locations = self.decomposition.extent_locations
        self._query_plan = self.decomposition.query_plan

        # group the initial objects per piece, then bulk build each structure
        initial: Dict[int, List[Tuple[Any, Optional[int], ClassObject]]] = {
            piece.piece_id: [] for piece in self.decomposition.pieces
        }
        for obj in objects:
            for piece_id, position in self._extent_locations[obj.class_name]:
                initial[piece_id].append((obj.key, position, obj))

        self._structures: Dict[int, object] = {}
        for piece in self.decomposition.pieces:
            entries = initial[piece.piece_id]
            if isinstance(piece, RakePiece):
                collection = CollectionIndex(
                    disk,
                    (obj for _, _, obj in entries),
                    name=f"combined:rake:{piece.owner}",
                )
                self._structures[piece.piece_id] = collection
            else:
                assert isinstance(piece, PathPiece)
                points = [
                    PlanarPoint(key, position, payload=obj) for key, position, obj in entries
                ]
                self._structures[piece.piece_id] = ThreeSidedMetablockTree(disk, points)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, obj: ClassObject) -> None:
        """Insert an object into every piece holding its class's extent."""
        if obj.class_name not in self._extent_locations:
            raise KeyError(f"unknown class {obj.class_name!r}")
        for piece_id, position in self._extent_locations[obj.class_name]:
            structure = self._structures[piece_id]
            if isinstance(structure, CollectionIndex):
                structure.insert(obj)
            else:
                structure.insert(PlanarPoint(obj.key, position, payload=obj))

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, class_name: str, low: Any, high: Any) -> List[ClassObject]:
        """Attribute range query against the full extent of ``class_name``."""
        return list(self.iter_query(class_name, low, high))

    def iter_query(self, class_name: str, low: Any, high: Any):
        """Stream the answer; rake pieces stream leaf by leaf, path pieces
        produce their (``O(B^3)``-point bounded) 3-sided answer on demand."""
        if class_name not in self._query_plan:
            raise KeyError(f"unknown class {class_name!r}")
        piece_id, position = self._query_plan[class_name]
        structure = self._structures[piece_id]
        if isinstance(structure, CollectionIndex):
            yield from structure.iter_range(low, high)
        else:
            for p in structure.query_3sided(low, high, position):
                yield p.payload

    # ------------------------------------------------------------------ #
    # introspection / accounting
    # ------------------------------------------------------------------ #
    def destroy(self) -> None:
        """Free every block of every piece structure (rebuilds use this)."""
        for structure in self._structures.values():
            structure.destroy()

    def block_count(self) -> int:
        total = 0
        for structure in self._structures.values():
            total += structure.block_count()
        return total

    def copies_per_object(self) -> int:
        """Worst-case number of structures storing one object (``<= log2 c + 1``)."""
        return self.decomposition.max_copies()

    def piece_summary(self) -> List[str]:
        """Human-readable description of the decomposition (for examples/docs)."""
        out = []
        for piece in self.decomposition.pieces:
            if isinstance(piece, RakePiece):
                out.append(
                    f"rake piece {piece.piece_id}: B+-tree for {piece.owner!r} "
                    f"covering {sorted(piece.classes)}"
                )
            else:
                out.append(
                    f"path piece {piece.piece_id}: 3-sided structure over path "
                    f"{piece.nodes}"
                )
        return out

    def __len__(self) -> int:
        total = 0
        for structure in self._structures.values():
            total += len(structure)
        return total
