"""The naive class-indexing schemes discussed in Section 2.2.

The paper motivates its contributions by rejecting two obvious schemes:

* **One index for everything** (:class:`SingleCollectionIndex`): a single
  B+-tree over all objects, filtered by class at query time.  It "cannot
  compact a t-sized output into t/B pages because the algorithm has no
  control over how the objects of interest are interspersed with other
  objects" — queries read pages full of foreign-class objects.
* **One index per class full extent** (:class:`FullExtentPerClassIndex`):
  optimal queries, but ``O((n/B)·c)`` space in the worst case and
  ``O(c·log_B n)`` update time because an object is replicated in every
  ancestor's index.
* **One index per class extent** (:class:`ExtentPerClassIndex`): linear
  space and cheap updates, but a query must visit one B+-tree per
  descendant class.

All three serve as baselines for experiments E5/E6 and as correctness
oracles for the paper's structures.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List

from repro.classes.collection import CollectionIndex
from repro.classes.hierarchy import ClassHierarchy, ClassObject


class SingleCollectionIndex:
    """One B+-tree over every object; class filtering happens after the scan."""

    def __init__(self, disk, hierarchy: ClassHierarchy, objects: Iterable[ClassObject] = ()) -> None:
        self.hierarchy = hierarchy
        self.collection = CollectionIndex(disk, objects, name="all-objects")

    def insert(self, obj: ClassObject) -> None:
        self.collection.insert(obj)

    def delete(self, obj: ClassObject) -> bool:
        return self.collection.delete(obj)

    def query(self, class_name: str, low: Any, high: Any) -> List[ClassObject]:
        """Full-extent range query: scan the attribute range, filter by class."""
        return list(self.iter_query(class_name, low, high))

    def iter_query(self, class_name: str, low: Any, high: Any) -> Iterator[ClassObject]:
        wanted = set(self.hierarchy.descendants(class_name))
        return (obj for obj in self.collection.iter_range(low, high) if obj.class_name in wanted)

    def destroy(self) -> None:
        self.collection.destroy()

    def block_count(self) -> int:
        return self.collection.block_count()

    def __len__(self) -> int:
        return len(self.collection)


class FullExtentPerClassIndex:
    """One B+-tree per class, holding that class's *full extent*.

    An inserted object is replicated into the index of each ancestor class,
    so updates cost ``O(depth · log_B n)`` I/Os and space grows with the sum
    of full-extent sizes (Lemma 4.2 analyses the constant-depth case where
    this is actually optimal).
    """

    def __init__(self, disk, hierarchy: ClassHierarchy, objects: Iterable[ClassObject] = ()) -> None:
        self.disk = disk
        self.hierarchy = hierarchy
        grouped: Dict[str, List[ClassObject]] = {c: [] for c in hierarchy.classes()}
        for obj in objects:
            for cls in [obj.class_name] + hierarchy.ancestors(obj.class_name):
                grouped[cls].append(obj)
        self.indexes: Dict[str, CollectionIndex] = {
            cls: CollectionIndex(disk, objs, name=f"full-extent:{cls}")
            for cls, objs in grouped.items()
        }

    def insert(self, obj: ClassObject) -> None:
        for cls in [obj.class_name] + self.hierarchy.ancestors(obj.class_name):
            self.indexes[cls].insert(obj)

    def delete(self, obj: ClassObject) -> bool:
        found = False
        for cls in [obj.class_name] + self.hierarchy.ancestors(obj.class_name):
            found = self.indexes[cls].delete(obj) or found
        return found

    def query(self, class_name: str, low: Any, high: Any) -> List[ClassObject]:
        return self.indexes[class_name].range_query(low, high)

    def iter_query(self, class_name: str, low: Any, high: Any) -> Iterator[ClassObject]:
        return self.indexes[class_name].iter_range(low, high)

    def destroy(self) -> None:
        for idx in self.indexes.values():
            idx.destroy()

    def block_count(self) -> int:
        return sum(idx.block_count() for idx in self.indexes.values())

    def __len__(self) -> int:
        return sum(len(idx) for idx in self.indexes.values())


class ExtentPerClassIndex:
    """One B+-tree per class, holding only that class's own extent."""

    def __init__(self, disk, hierarchy: ClassHierarchy, objects: Iterable[ClassObject] = ()) -> None:
        self.disk = disk
        self.hierarchy = hierarchy
        grouped: Dict[str, List[ClassObject]] = {c: [] for c in hierarchy.classes()}
        for obj in objects:
            grouped[obj.class_name].append(obj)
        self.indexes: Dict[str, CollectionIndex] = {
            cls: CollectionIndex(disk, objs, name=f"extent:{cls}")
            for cls, objs in grouped.items()
        }

    def insert(self, obj: ClassObject) -> None:
        self.indexes[obj.class_name].insert(obj)

    def delete(self, obj: ClassObject) -> bool:
        return self.indexes[obj.class_name].delete(obj)

    def query(self, class_name: str, low: Any, high: Any) -> List[ClassObject]:
        """Query the extent index of every descendant class and merge."""
        return list(self.iter_query(class_name, low, high))

    def iter_query(self, class_name: str, low: Any, high: Any) -> Iterator[ClassObject]:
        for cls in self.hierarchy.descendants(class_name):
            yield from self.indexes[cls].iter_range(low, high)

    def destroy(self) -> None:
        for idx in self.indexes.values():
            idx.destroy()

    def block_count(self) -> int:
        return sum(idx.block_count() for idx in self.indexes.values())

    def __len__(self) -> int:
        return sum(len(idx) for idx in self.indexes.values())
