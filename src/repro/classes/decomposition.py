"""Hierarchy decomposition: ``label-edges`` and ``rake-and-contract``.

Section 4 combines two easy special cases of class indexing — constant-depth
hierarchies (Lemma 4.2, solved by replicating into full-extent B+-trees) and
*degenerate* path-shaped hierarchies (Lemma 4.3, solved by one 3-sided
structure) — into a solution for arbitrary hierarchies:

* ``label-edges`` (Fig. 22) marks, for every class, the edge to the child
  with the largest subtree as **thick** and every other child edge as
  **thin**; any leaf-to-root path then uses at most ``log2 c`` thin edges
  (Lemma 4.5).  This is the decomposition used for dynamic trees by
  Sleator and Tarjan [34].
* ``rake-and-contract`` (Fig. 23) repeatedly deletes (i) leaves hanging off
  thin edges — *rakes*, each producing an explicitly indexed collection —
  and (ii) maximal thick paths hanging off thin edges — *contracts*, each
  producing a 3-sided structure over the path — copying the deleted
  collections into the parent each time.  Lemma 4.6 shows every extent is
  copied at most ``log2 c`` times and every class ends up with either a
  B+-tree over its full extent or a 3-sided structure covering it.

The output of :func:`rake_and_contract` is a :class:`HierarchyDecomposition`
— a list of *pieces* plus, per class, its query plan and the list of pieces
its extent participates in — which :class:`~repro.classes.combined_index.
CombinedClassIndex` turns into actual disk structures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.classes.hierarchy import ClassHierarchy


@dataclass
class EdgeLabeling:
    """Thick/thin labels for every (child -> parent) edge."""

    thick_child: Dict[str, Optional[str]]
    """For every class, the child reached through its thick edge (``None`` for leaves)."""

    def is_thick(self, child: str, hierarchy: ClassHierarchy) -> bool:
        """Whether the edge from ``child`` to its parent is thick."""
        parent = hierarchy.parent(child)
        if parent is None:
            return False
        return self.thick_child[parent] == child

    def thin_edge_count_to_root(self, name: str, hierarchy: ClassHierarchy) -> int:
        """Number of thin edges on the path from ``name`` to its root (Lemma 4.5)."""
        count = 0
        current = name
        parent = hierarchy.parent(current)
        while parent is not None:
            if self.thick_child[parent] != current:
                count += 1
            current = parent
            parent = hierarchy.parent(current)
        return count


def label_edges(hierarchy: ClassHierarchy) -> EdgeLabeling:
    """Mark the edge to the largest-subtree child of every class as thick (Fig. 22)."""
    thick_child: Dict[str, Optional[str]] = {}
    for cls in hierarchy.classes():
        children = hierarchy.children(cls)
        if not children:
            thick_child[cls] = None
            continue
        thick_child[cls] = max(children, key=hierarchy.subtree_size)
    return EdgeLabeling(thick_child=thick_child)


@dataclass
class RakePiece:
    """A raked class: an explicit B+-tree index over its accumulated collection."""

    piece_id: int
    owner: str
    classes: Set[str]


@dataclass
class PathPiece:
    """A contracted thick path: one 3-sided structure over the whole path.

    ``nodes`` lists the path top-down; ``classes_per_node[i]`` is the set of
    classes whose extents were accumulated at ``nodes[i]`` when the path was
    contracted.  A query on ``nodes[i]`` is the 3-sided query
    ``attribute in [a1, a2]  and  position >= i``.
    """

    piece_id: int
    nodes: List[str]
    classes_per_node: List[Set[str]]


@dataclass
class HierarchyDecomposition:
    """The output of ``rake-and-contract`` (structure-free query/update plans)."""

    pieces: List[object] = field(default_factory=list)
    #: per class: (piece_id, position or None) of the piece answering its queries
    query_plan: Dict[str, Tuple[int, Optional[int]]] = field(default_factory=dict)
    #: per class: every (piece_id, position or None) holding a copy of its extent
    extent_locations: Dict[str, List[Tuple[int, Optional[int]]]] = field(default_factory=dict)

    def copies_of_extent(self, name: str) -> int:
        return len(self.extent_locations[name])

    def max_copies(self) -> int:
        return max((len(v) for v in self.extent_locations.values()), default=0)


def rake_and_contract(
    hierarchy: ClassHierarchy, labeling: Optional[EdgeLabeling] = None
) -> HierarchyDecomposition:
    """Run the rake-and-contract decomposition of Fig. 23.

    The function works on a shrinking copy of the hierarchy; it never
    mutates ``hierarchy`` itself.
    """
    labeling = labeling or label_edges(hierarchy)
    decomposition = HierarchyDecomposition()
    for cls in hierarchy.classes():
        decomposition.extent_locations[cls] = []

    # mutable copy of the forest
    parent: Dict[str, Optional[str]] = {c: hierarchy.parent(c) for c in hierarchy.classes()}
    children: Dict[str, Set[str]] = {c: set(hierarchy.children(c)) for c in hierarchy.classes()}
    collection: Dict[str, Set[str]] = {c: {c} for c in hierarchy.classes()}
    alive: Set[str] = set(hierarchy.classes())

    def is_thick_edge(child: str) -> bool:
        p = parent[child]
        return p is not None and labeling.thick_child[p] == child

    def delete_node(name: str) -> None:
        p = parent[name]
        if p is not None and p in alive:
            children[p].discard(name)
            collection[p] |= collection[name]
        alive.discard(name)

    next_piece_id = 0
    while alive:
        progressed = False

        # --- rake: leaves attached by thin edges (or isolated roots) -------- #
        for name in sorted(alive):
            if children[name]:
                continue
            if parent[name] is not None and parent[name] in alive and is_thick_edge(name):
                continue
            piece = RakePiece(piece_id=next_piece_id, owner=name, classes=set(collection[name]))
            next_piece_id += 1
            decomposition.pieces.append(piece)
            decomposition.query_plan[name] = (piece.piece_id, None)
            for cls in piece.classes:
                decomposition.extent_locations[cls].append((piece.piece_id, None))
            delete_node(name)
            progressed = True

        # --- contract: maximal thick paths hanging from thin edges ---------- #
        for name in sorted(alive):
            if name not in alive:
                continue
            # the top of a hanging thick path: its parent edge is thin (or it
            # is a root), it has exactly one live child and that edge is
            # thick, and the chain below continues through thick edges only
            if parent[name] is not None and parent[name] in alive and is_thick_edge(name):
                continue
            path = _extract_thick_path(name, children, labeling)
            if path is None:
                continue
            classes_per_node = [set(collection[node]) for node in path]
            piece = PathPiece(
                piece_id=next_piece_id, nodes=list(path), classes_per_node=classes_per_node
            )
            next_piece_id += 1
            decomposition.pieces.append(piece)
            for position, node in enumerate(path):
                decomposition.query_plan[node] = (piece.piece_id, position)
                for cls in classes_per_node[position]:
                    decomposition.extent_locations[cls].append((piece.piece_id, position))
            # copy the union of the path's collections to the parent of the top
            top_parent = parent[path[0]]
            merged: Set[str] = set()
            for node_classes in classes_per_node:
                merged |= node_classes
            if top_parent is not None and top_parent in alive:
                children[top_parent].discard(path[0])
                collection[top_parent] |= merged
            for node in path:
                alive.discard(node)
            progressed = True

        if not progressed:  # pragma: no cover - defensive
            raise RuntimeError("rake-and-contract failed to make progress")

    return decomposition


def _extract_thick_path(
    top: str, children: Dict[str, Set[str]], labeling: EdgeLabeling
) -> Optional[List[str]]:
    """Follow thick edges downward from ``top`` while the chain stays a path.

    Returns the node list when the chain ends in a (current) leaf, which is
    what makes the piece contractible; otherwise ``None`` (the node must wait
    for later rakes to expose the path).
    """
    path = [top]
    current = top
    while True:
        kids = children[current]
        if not kids:
            return path
        if len(kids) != 1:
            return None
        (only,) = tuple(kids)
        if labeling.thick_child[current] != only:
            return None
        path.append(only)
        current = only
