"""Indexing classes in an object-oriented data model (Sections 2.2 and 4).

Objects live in a *static forest* class hierarchy; "indexing classes" means
answering one-dimensional range queries over an attribute against the **full
extent** of any class (the class and all its descendants), while objects are
inserted into and deleted from classes dynamically.

* :mod:`~repro.classes.hierarchy` — the class hierarchy model, the
  ``label-class`` interval labelling (Proposition 2.5, Figs. 4–5) and the
  object record type.
* :mod:`~repro.classes.collection` — "indexing a collection" (a B+-tree over
  one attribute of a set of objects), the building block of every scheme.
* :mod:`~repro.classes.baselines` — the two naive schemes discussed in
  Section 2.2 (one global index + filter; one index per class full extent)
  plus the extent-per-class scheme.
* :mod:`~repro.classes.simple_index` — the range-tree-of-B+-trees of
  Theorem 2.6.
* :mod:`~repro.classes.decomposition` — ``label-edges`` (thick/thin edges,
  Lemma 4.5) and ``rake-and-contract`` (Lemma 4.6, Figs. 22–24).
* :mod:`~repro.classes.combined_index` — the improved class index of
  Theorem 4.7 built on the 3-sided metablock tree.
"""

from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.classes.collection import CollectionIndex
from repro.classes.baselines import (
    ExtentPerClassIndex,
    FullExtentPerClassIndex,
    SingleCollectionIndex,
)
from repro.classes.simple_index import SimpleClassIndex
from repro.classes.decomposition import (
    EdgeLabeling,
    HierarchyDecomposition,
    label_edges,
    rake_and_contract,
)
from repro.classes.combined_index import CombinedClassIndex

__all__ = [
    "ClassHierarchy",
    "ClassObject",
    "CollectionIndex",
    "CombinedClassIndex",
    "EdgeLabeling",
    "ExtentPerClassIndex",
    "FullExtentPerClassIndex",
    "HierarchyDecomposition",
    "SimpleClassIndex",
    "SingleCollectionIndex",
    "label_edges",
    "rake_and_contract",
]
