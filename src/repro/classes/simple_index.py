"""The simple class index of Theorem 2.6 (a range tree of B+-trees).

``label-class`` embeds the classes on a line such that every full extent is
a contiguous range of class values (Proposition 2.5).  ``index-classes``
(Fig. 6) then builds, conceptually, a balanced binary search tree over the
``c`` classes in that order and indexes one collection per tree node: the
union of the extents of the classes below that node.

* A full-extent query on class ``C`` covers a contiguous range of classes,
  which decomposes into at most ``2·ceil(log2 c)`` canonical nodes of the
  binary tree; querying each node's B+-tree gives query I/O
  ``O(log2 c · log_B n + t/B)``.
* An object of class ``X`` lives in the collections of the ``O(log2 c)``
  nodes on the root-to-leaf path of ``X``, which gives the
  ``O((n/B)·log2 c)`` space and ``O(log2 c · log_B n)`` update bounds.

The binary tree over class positions is represented implicitly by recursive
halving of the position range (a segment-tree skeleton), which is exactly
the shape the proof of Theorem 2.6 uses.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Tuple

from repro.classes.collection import CollectionIndex
from repro.classes.hierarchy import ClassHierarchy, ClassObject


class SimpleClassIndex:
    """Range-tree-of-B+-trees class index (Theorem 2.6)."""

    def __init__(self, disk, hierarchy: ClassHierarchy, objects: Iterable[ClassObject] = ()) -> None:
        self.disk = disk
        self.hierarchy = hierarchy
        ordered = hierarchy.classes_by_value()
        self._position: Dict[str, int] = {cls: i for i, cls in enumerate(ordered)}
        self._count = len(ordered)

        # position range (inclusive) of the descendants of each class:
        # contiguous because label-class nests descendant ranges
        self._class_span: Dict[str, Tuple[int, int]] = {}
        for cls in hierarchy.classes():
            positions = [self._position[d] for d in hierarchy.descendants(cls)]
            self._class_span[cls] = (min(positions), max(positions))

        # the canonical segment-tree nodes, each identified by its half-open
        # position range (lo, hi); every node owns one collection index
        self._nodes: List[Tuple[int, int]] = []
        self._build_nodes(0, self._count)
        self._collections: Dict[Tuple[int, int], CollectionIndex] = {}

        grouped: Dict[Tuple[int, int], List[ClassObject]] = {node: [] for node in self._nodes}
        for obj in objects:
            for node in self._path_nodes(self._position[obj.class_name]):
                grouped[node].append(obj)
        for node in self._nodes:
            self._collections[node] = CollectionIndex(
                disk, grouped[node], name=f"simple:{node[0]}-{node[1]}"
            )

    # ------------------------------------------------------------------ #
    # implicit binary tree over class positions
    # ------------------------------------------------------------------ #
    def _build_nodes(self, lo: int, hi: int) -> None:
        if lo >= hi:
            return
        self._nodes.append((lo, hi))
        if hi - lo > 1:
            mid = (lo + hi) // 2
            self._build_nodes(lo, mid)
            self._build_nodes(mid, hi)

    def _path_nodes(self, position: int) -> List[Tuple[int, int]]:
        """The root-to-leaf canonical nodes containing ``position``."""
        out: List[Tuple[int, int]] = []
        lo, hi = 0, self._count
        while lo < hi:
            out.append((lo, hi))
            if hi - lo == 1:
                break
            mid = (lo + hi) // 2
            if position < mid:
                hi = mid
            else:
                lo = mid
        return out

    def _canonical_cover(self, lo: int, hi: int) -> List[Tuple[int, int]]:
        """Minimal set of canonical nodes covering positions ``[lo, hi)``."""
        out: List[Tuple[int, int]] = []

        def visit(node_lo: int, node_hi: int) -> None:
            if node_lo >= hi or node_hi <= lo or node_lo >= node_hi:
                return
            if lo <= node_lo and node_hi <= hi:
                out.append((node_lo, node_hi))
                return
            mid = (node_lo + node_hi) // 2
            visit(node_lo, mid)
            visit(mid, node_hi)

        visit(0, self._count)
        return out

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, obj: ClassObject) -> None:
        """Insert into the ``O(log2 c)`` collections on the class's path."""
        for node in self._path_nodes(self._position[obj.class_name]):
            self._collections[node].insert(obj)

    def delete(self, obj: ClassObject) -> bool:
        found = False
        for node in self._path_nodes(self._position[obj.class_name]):
            found = self._collections[node].delete(obj) or found
        return found

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query(self, class_name: str, low: Any, high: Any) -> List[ClassObject]:
        """Attribute range query against the full extent of ``class_name``."""
        return list(self.iter_query(class_name, low, high))

    def iter_query(self, class_name: str, low: Any, high: Any) -> Iterator[ClassObject]:
        """Stream the answer, canonical node by canonical node."""
        span_lo, span_hi = self._class_span[class_name]
        for node in self._canonical_cover(span_lo, span_hi + 1):
            yield from self._collections[node].iter_range(low, high)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def destroy(self) -> None:
        """Free every block of every node collection (rebuilds use this)."""
        for collection in self._collections.values():
            collection.destroy()

    def block_count(self) -> int:
        return sum(c.block_count() for c in self._collections.values())

    def collections(self) -> Dict[Tuple[int, int], CollectionIndex]:
        return dict(self._collections)

    def copies_per_object(self) -> int:
        """Number of collections an object is stored in (``O(log2 c)``)."""
        if self._count == 0:
            return 0
        return max(len(self._path_nodes(i)) for i in range(self._count))

    def __len__(self) -> int:
        return sum(len(c) for c in self._collections.values())
