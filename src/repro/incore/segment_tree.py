"""Bentley's segment tree (in-core baseline).

The segment tree [3] answers stabbing queries in ``O(log2 n + t)`` time but
uses ``O(n log2 n)`` space because each interval is stored at up to
``O(log2 n)`` canonical nodes — exactly the redundancy the paper's external
structures avoid.  It is included as a baseline and as the canonical
example of a logarithmic-copy structure (compare Theorem 2.6's
``log2 c``-copy behaviour).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterable, List, Optional

from repro.interval import Interval


class _Node:
    __slots__ = ("lo_idx", "hi_idx", "intervals", "left", "right")

    def __init__(self, lo_idx: int, hi_idx: int) -> None:
        # the node covers elementary slabs [lo_idx, hi_idx) in endpoint rank space
        self.lo_idx = lo_idx
        self.hi_idx = hi_idx
        self.intervals: List[Interval] = []
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class SegmentTree:
    """A segment tree over a fixed endpoint universe.

    The endpoint universe is taken from the intervals supplied at
    construction time.  Insertions of intervals whose endpoints already
    exist in the universe are ``O(log2 n)``; inserting an interval with a
    new endpoint triggers a full rebuild (documented limitation of the
    classic segment tree, irrelevant to the experiments which build
    statically).
    """

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: List[Interval] = list(intervals)
        self._endpoints: List[Any] = []
        self._root: Optional[_Node] = None
        self._rebuild()

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _rebuild(self) -> None:
        endpoints = sorted(
            set(
                [iv.low for iv in self._intervals]
                + [iv.high for iv in self._intervals]
            )
        )
        self._endpoints = endpoints
        if not endpoints:
            self._root = None
            return
        # elementary slabs are [e_i, e_{i+1}); one extra slab for the last point
        self._root = self._build(0, len(endpoints))
        for iv in self._intervals:
            self._place(self._root, iv)

    def _build(self, lo: int, hi: int) -> Optional[_Node]:
        if lo >= hi:
            return None
        node = _Node(lo, hi)
        if hi - lo > 1:
            mid = (lo + hi) // 2
            node.left = self._build(lo, mid)
            node.right = self._build(mid, hi)
        return node

    def _span(self, interval: Interval) -> Optional[tuple]:
        """Translate an interval to a slab-index range [i, j] (inclusive)."""
        lo_idx = bisect.bisect_left(self._endpoints, interval.low)
        hi_idx = bisect.bisect_right(self._endpoints, interval.high) - 1
        if lo_idx >= len(self._endpoints) or hi_idx < 0 or lo_idx > hi_idx:
            return None
        if self._endpoints[lo_idx] != interval.low or self._endpoints[hi_idx] != interval.high:
            return None
        return lo_idx, hi_idx

    def _place(self, node: Optional[_Node], interval: Interval) -> None:
        """Store an interval at its canonical nodes."""
        if node is None:
            return
        span = self._span(interval)
        if span is None:
            return
        self._place_rank(node, interval, span[0], span[1])

    def _place_rank(self, node: _Node, interval: Interval, lo: int, hi: int) -> None:
        if lo <= node.lo_idx and node.hi_idx - 1 <= hi:
            node.intervals.append(interval)
            return
        mid = (node.lo_idx + node.hi_idx) // 2
        if node.left is not None and lo < mid:
            self._place_rank(node.left, interval, lo, hi)
        if node.right is not None and hi >= mid:
            self._place_rank(node.right, interval, lo, hi)

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval) -> None:
        self._intervals.append(interval)
        if self._root is not None and self._span(interval) is not None:
            self._place(self._root, interval)
        else:
            self._rebuild()

    def delete(self, interval: Interval) -> bool:
        if interval not in self._intervals:
            return False
        self._intervals.remove(interval)
        self._rebuild()
        return True

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def stabbing_query(self, q: Any) -> List[Interval]:
        """All intervals containing ``q``."""
        out: List[Interval] = []
        if self._root is None:
            return out
        idx = bisect.bisect_right(self._endpoints, q) - 1
        if idx < 0:
            return out
        # points beyond the last endpoint stab nothing
        if q > self._endpoints[-1]:
            return out
        exact = idx < len(self._endpoints) and self._endpoints[idx] == q
        node: Optional[_Node] = self._root
        while node is not None:
            for iv in node.intervals:
                if iv.contains(q):
                    out.append(iv)
            if node.hi_idx - node.lo_idx <= 1:
                break
            mid = (node.lo_idx + node.hi_idx) // 2
            node = node.left if idx < mid else node.right
        # endpoints falling strictly inside a slab may also stab intervals
        # stored higher with open boundaries; the containment re-check above
        # already filters, so nothing else is needed.
        del exact
        return out

    def intersection_query(self, low: Any, high: Any) -> List[Interval]:
        """All intervals intersecting ``[low, high]`` (stab + endpoint sweep)."""
        out = self.stabbing_query(low)
        seen = set(id(iv) for iv in out)
        for iv in self._intervals:
            if low < iv.low <= high and id(iv) not in seen:
                out.append(iv)
                seen.add(id(iv))
        return out

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._intervals)

    def stored_copies(self) -> int:
        """Total interval copies stored (demonstrates ``O(n log n)`` space)."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            total += len(node.intervals)
            stack.append(node.left)
            stack.append(node.right)
        return total
