"""Edelsbrunner's interval tree (in-core baseline).

The interval tree [11, 12] solves stabbing queries in ``O(log2 n + t)``
time with ``O(n)`` space.  Every node carries a *center* value; intervals
that contain the center are stored at the node in two sorted lists (by left
endpoint ascending and by right endpoint descending), intervals entirely to
the left or right are pushed to the children.

The tree here is built statically from a collection and supports dynamic
insertion by descending the existing centers (new nodes are created at the
fringe when needed).  It is used as a baseline and correctness oracle; the
paper's contribution is the *external* analogue of these structures.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional

from repro.interval import Interval


class _Node:
    __slots__ = ("center", "by_low", "by_high", "left", "right")

    def __init__(self, center: Any) -> None:
        self.center = center
        self.by_low: List[Interval] = []  # intervals crossing center, sorted by low asc
        self.by_high: List[Interval] = []  # same intervals, sorted by high desc
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None

    def add(self, interval: Interval) -> None:
        self.by_low.append(interval)
        self.by_low.sort(key=lambda iv: iv.low)
        self.by_high.append(interval)
        self.by_high.sort(key=lambda iv: iv.high, reverse=True)

    def remove(self, interval: Interval) -> bool:
        if interval in self.by_low:
            self.by_low.remove(interval)
            self.by_high.remove(interval)
            return True
        return False


class IntervalTree:
    """A center-decomposition interval tree over :class:`Interval` records."""

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        items = list(intervals)
        self._size = len(items)
        self._root = self._build(items)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self, items: List[Interval]) -> Optional[_Node]:
        if not items:
            return None
        endpoints = sorted(set([iv.low for iv in items] + [iv.high for iv in items]))
        center = endpoints[len(endpoints) // 2]
        node = _Node(center)
        left_items: List[Interval] = []
        right_items: List[Interval] = []
        crossing: List[Interval] = []
        for iv in items:
            if iv.high < center:
                left_items.append(iv)
            elif iv.low > center:
                right_items.append(iv)
            else:
                crossing.append(iv)
        node.by_low = sorted(crossing, key=lambda iv: iv.low)
        node.by_high = sorted(crossing, key=lambda iv: iv.high, reverse=True)
        node.left = self._build(left_items)
        node.right = self._build(right_items)
        return node

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, interval: Interval) -> None:
        """Insert an interval by descending the existing center hierarchy."""
        self._size += 1
        if self._root is None:
            self._root = _Node((interval.low + interval.high) / 2)
            self._root.add(interval)
            return
        node = self._root
        while True:
            if interval.contains(node.center):
                node.add(interval)
                return
            if interval.high < node.center:
                if node.left is None:
                    node.left = _Node((interval.low + interval.high) / 2)
                    node.left.add(interval)
                    return
                node = node.left
            else:
                if node.right is None:
                    node.right = _Node((interval.low + interval.high) / 2)
                    node.right.add(interval)
                    return
                node = node.right

    def delete(self, interval: Interval) -> bool:
        """Delete one occurrence of ``interval``; returns ``True`` if found."""
        node = self._root
        while node is not None:
            if interval.contains(node.center):
                if node.remove(interval):
                    self._size -= 1
                    return True
                return False
            node = node.left if interval.high < node.center else node.right
        return False

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def stabbing_query(self, q: Any) -> List[Interval]:
        """All intervals containing ``q`` in ``O(log2 n + t)``."""
        out: List[Interval] = []
        node = self._root
        while node is not None:
            if q < node.center:
                for iv in node.by_low:  # sorted by low ascending
                    if iv.low > q:
                        break
                    out.append(iv)
                node = node.left
            elif q > node.center:
                for iv in node.by_high:  # sorted by high descending
                    if iv.high < q:
                        break
                    out.append(iv)
                node = node.right
            else:
                out.extend(node.by_low)
                break
        return out

    def intersection_query(self, low: Any, high: Any) -> List[Interval]:
        """All intervals intersecting ``[low, high]``.

        Implemented, as in Proposition 2.2, as a stabbing query at ``low``
        plus a sweep for intervals whose left endpoint lies in
        ``(low, high]``.
        """
        out = self.stabbing_query(low)
        seen = set(id(iv) for iv in out)
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            for iv in node.by_low:
                if low < iv.low <= high and id(iv) not in seen:
                    out.append(iv)
                    seen.add(id(iv))
            stack.append(node.left)
            stack.append(node.right)
        return out

    def __len__(self) -> int:
        return self._size

    def all_intervals(self) -> List[Interval]:
        out: List[Interval] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            out.extend(node.by_low)
            stack.append(node.left)
            stack.append(node.right)
        return out
