"""Naive interval index: an unordered list scanned on every query.

This is the "trivial, but inefficient, solution" of Section 2.1 — add the
query constraint to every tuple / scan the whole generalized relation.  It
serves as the correctness oracle for every other interval structure and as
the pessimistic baseline in experiment E4.
"""

from __future__ import annotations

from typing import Any, Iterable, List

from repro.interval import Interval


class NaiveIntervalIndex:
    """A linear-scan interval collection.

    Query time is ``O(n)`` regardless of output size; insertion and deletion
    are ``O(1)`` / ``O(n)``.
    """

    def __init__(self, intervals: Iterable[Interval] = ()) -> None:
        self._intervals: List[Interval] = list(intervals)

    # -- updates --------------------------------------------------------- #
    def insert(self, interval: Interval) -> None:
        self._intervals.append(interval)

    def delete(self, interval: Interval) -> bool:
        """Remove one occurrence of ``interval``; returns ``True`` if found."""
        try:
            self._intervals.remove(interval)
            return True
        except ValueError:
            return False

    # -- queries --------------------------------------------------------- #
    def stabbing_query(self, x: Any) -> List[Interval]:
        """All intervals containing the point ``x``."""
        return [iv for iv in self._intervals if iv.contains(x)]

    def intersection_query(self, low: Any, high: Any) -> List[Interval]:
        """All intervals intersecting ``[low, high]``."""
        return [iv for iv in self._intervals if iv.intersects_range(low, high)]

    def __len__(self) -> int:
        return len(self._intervals)

    def __iter__(self):
        return iter(self._intervals)
