"""McCreight's priority search tree (in-core).

The priority search tree [25] solves dynamic interval management optimally
in main memory: ``O(n)`` space, ``O(log2 n + t)`` query and ``O(log2 n)``
update (Section 1.4).  It stores planar points and answers *2-sided* and
*3-sided* range queries of the form ``x1 <= x <= x2, y >= y0``.

For interval management an interval ``[l, h]`` is stored as the point
``(l, h)``; the stabbing query at ``q`` is the 2-sided query
``x <= q, y >= q`` (Proposition 2.2).

Implementation notes
--------------------
The tree is a binary search tree on the x-coordinates whose nodes each hold
one *priority point* — the point with the maximum y among the points stored
in the node's subtree that is not held by an ancestor.  Insertion places a
new x-key at a leaf position and pushes priority points downward to restore
the heap order, exactly as in McCreight's paper.  The search-tree part is
not rebalanced (the classic dynamic PST uses a balanced scheme); for the
random workloads used in the experiments the expected depth is
``O(log2 n)``, and the structure is primarily used as a correctness oracle
and an in-core comparison point.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Tuple

from repro.interval import Interval

Point = Tuple[Any, Any, Any]  # (x, y, payload)


class _Node:
    __slots__ = ("key", "point", "left", "right")

    def __init__(self, key: Any, point: Optional[Point]) -> None:
        self.key = key  # x-coordinate used for BST routing
        self.point: Optional[Point] = point  # priority point held at this node
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None


class PrioritySearchTree:
    """A dynamic priority search tree over points ``(x, y, payload)``."""

    def __init__(self, points: Iterable[Tuple[Any, Any, Any]] = ()) -> None:
        self._root: Optional[_Node] = None
        self._size = 0
        pts = list(points)
        if pts:
            self._root = self._build(sorted(pts, key=lambda p: (p[0], p[1])))
            self._size = len(pts)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @classmethod
    def from_intervals(cls, intervals: Iterable[Interval]) -> "PrioritySearchTree":
        """Build a PST for stabbing queries over ``intervals``."""
        return cls((iv.low, iv.high, iv) for iv in intervals)

    def _build(self, pts: List[Point]) -> Optional[_Node]:
        """Recursively build a balanced PST from points sorted by x."""
        if not pts:
            return None
        # the priority point is the one with the maximum y
        top_idx = max(range(len(pts)), key=lambda i: pts[i][1])
        top = pts[top_idx]
        rest = pts[:top_idx] + pts[top_idx + 1 :]
        mid = len(pts) // 2
        key = pts[mid][0]
        node = _Node(key, top)
        left_pts = [p for p in rest if p[0] < key]
        right_pts = [p for p in rest if p[0] >= key]
        node.left = self._build(left_pts)
        node.right = self._build(right_pts)
        return node

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def insert(self, x: Any, y: Any, payload: Any = None) -> None:
        """Insert the point ``(x, y)`` (expected ``O(log2 n)``)."""
        point: Point = (x, y, payload)
        self._size += 1
        if self._root is None:
            self._root = _Node(x, point)
            return
        node = self._root
        while True:
            if node.point is None or point[1] > node.point[1]:
                node.point, point = point, node.point
            if point is None:
                return
            if point[0] < node.key:
                if node.left is None:
                    node.left = _Node(point[0], point)
                    return
                node = node.left
            else:
                if node.right is None:
                    node.right = _Node(point[0], point)
                    return
                node = node.right

    def insert_interval(self, interval: Interval) -> None:
        self.insert(interval.low, interval.high, interval)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def query_3sided(self, x1: Any, x2: Any, y0: Any) -> List[Point]:
        """All points with ``x1 <= x <= x2`` and ``y >= y0``."""
        out: List[Point] = []
        self._query(self._root, x1, x2, y0, out)
        return out

    def query_2sided(self, x_max: Any, y_min: Any) -> List[Point]:
        """All points with ``x <= x_max`` and ``y >= y_min`` (diagonal-corner shape)."""
        out: List[Point] = []
        self._query(self._root, None, x_max, y_min, out)
        return out

    def stabbing_query(self, q: Any) -> List[Interval]:
        """All stored intervals containing ``q`` (payloads must be intervals)."""
        return [p[2] for p in self.query_2sided(q, q)]

    def _query(
        self,
        node: Optional[_Node],
        x1: Optional[Any],
        x2: Any,
        y0: Any,
        out: List[Point],
    ) -> None:
        if node is None or node.point is None:
            return
        # heap order: every point in this subtree has y <= node.point.y
        if node.point[1] < y0:
            return
        px = node.point[0]
        if (x1 is None or px >= x1) and px <= x2:
            out.append(node.point)
        # BST order on x prunes the recursion
        if x1 is None or x1 < node.key:
            self._query(node.left, x1, x2, y0, out)
        if x2 >= node.key:
            self._query(node.right, x1, x2, y0, out)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._size

    def points(self) -> List[Point]:
        """All stored points (order unspecified)."""
        out: List[Point] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node.point is not None:
                out.append(node.point)
            stack.append(node.left)
            stack.append(node.right)
        return out

    def height(self) -> int:
        def depth(node: Optional[_Node]) -> int:
            if node is None:
                return 0
            return 1 + max(depth(node.left), depth(node.right))

        return depth(self._root)
