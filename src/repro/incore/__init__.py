"""In-core (main-memory) baseline data structures.

Section 1.4 of the paper surveys the in-core solutions to dynamic interval
management and two-dimensional range searching that the external structures
are measured against:

* the **priority search tree** of McCreight [25] — optimal in-core dynamic
  interval management (``O(log2 n + t)`` query, ``O(log2 n)`` update,
  ``O(n)`` space),
* the **interval tree** of Edelsbrunner [11, 12],
* the **segment tree** of Bentley [3],
* a **naive scan** baseline.

These are implemented here both as correctness oracles for the external
structures and as the comparison points of several experiments (E4).
"""

from repro.incore.interval_tree import IntervalTree
from repro.incore.naive import NaiveIntervalIndex
from repro.incore.priority_search_tree import PrioritySearchTree
from repro.incore.segment_tree import SegmentTree

__all__ = [
    "IntervalTree",
    "NaiveIntervalIndex",
    "PrioritySearchTree",
    "SegmentTree",
]
