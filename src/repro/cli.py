"""Command-line interface: quick demos and I/O reports from the terminal.

Usage::

    python -m repro intervals --n 5000 --block-size 16 --queries 20
    python -m repro intervals --n 5000 --backend file --buffer-pages 16
    python -m repro classes   --classes 64 --objects 5000 --method combined
    python -m repro tessellation --grid 256 --block-size 64
    python -m repro explain   --n 5000 --stab 42 --endpoint low 10 20 --limit 5
    python -m repro bulk-load --db app.pages --index temporal --file records.json
    python -m repro delete    --db app.pages --index temporal --range 10 20
    python -m repro catalog   --db app.pages
    python -m repro wal inspect --db app.pages -v

The ``bulk-load`` / ``delete`` / ``catalog`` subcommands operate on a
*persistent* database: ``--db PATH`` names a :class:`~repro.io.FileDisk`
page file whose engine catalog survives across invocations
(``Engine.open``), so records loaded by one command are queryable and
deletable by the next.

Each subcommand builds the relevant index through the
:class:`~repro.engine.Engine` facade on the selected storage backend
(``--backend memory`` is the I/O-counting :class:`SimulatedDisk`,
``--backend file`` runs the same workload against real pages in a
:class:`FileDisk`), runs a batch of lazy queries, and prints the measured
I/O cost next to the paper's bound — a terminal-sized version of the
benchmark harness.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from typing import List, Optional

from repro.analysis.tessellation import GridTessellation
from repro.core import ClassIndexer
from repro.engine import And, ClassRange, EndpointRange, Engine, Range, Stab
from repro.interval import Interval
from repro.io import FileDisk, SimulatedDisk
from repro.workloads import random_class_objects, random_hierarchy, random_intervals


def _make_engine(args: argparse.Namespace) -> Engine:
    backend = (
        FileDisk(block_size=args.block_size)
        if args.backend == "file"
        else SimulatedDisk(args.block_size)
    )
    return Engine(backend, buffer_pages=getattr(args, "buffer_pages", None))


def _cmd_intervals(args: argparse.Namespace) -> int:
    with _make_engine(args) as engine:
        intervals = random_intervals(args.n, seed=args.seed, mean_length=args.mean_length)
        index = engine.create_interval_index("intervals", intervals)
        rnd = random.Random(args.seed + 1)
        batch = engine.query_many(
            ("intervals", Stab(rnd.uniform(0, 1000))) for _ in range(args.queries)
        )
        results = [(len(r.all()), r.ios, r.bound) for r in batch]
        t_avg = sum(t for t, _, _ in results) / len(results)
        ios = sum(io for _, io, _ in results) / len(results)
        bound = sum(b for _, _, b in results) / len(results)
        print(f"intervals: n={args.n} B={args.block_size} queries={args.queries} "
              f"backend={args.backend}")
        print(f"  blocks used           : {index.block_count()}")
        print(f"  avg output per query  : {t_avg:.1f} intervals")
        print(f"  avg I/Os per query    : {ios:.1f}")
        print(f"  bound log_B n + t/B   : {bound:.1f}   (ratio {ios / bound:.2f})")
        print(f"  naive scan would read : {args.n // args.block_size + 1} blocks per query")
    return 0


def _cmd_classes(args: argparse.Namespace) -> int:
    hierarchy = random_hierarchy(args.classes, seed=args.seed)
    objects = random_class_objects(hierarchy, args.objects, seed=args.seed + 1)
    with _make_engine(args) as engine:
        index = engine.create_class_index(
            "classes", hierarchy, objects, method=args.method
        )
        rnd = random.Random(args.seed + 2)
        by_size = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
        candidates = by_size[: max(4, len(by_size) // 4)]
        batch = engine.query_many(
            ("classes", ClassRange(rnd.choice(candidates), lo, lo + 60.0))
            for lo in (rnd.uniform(0, 900) for _ in range(args.queries))
        )
        results = [(len(r.all()), r.ios, r.bound) for r in batch]
        t_avg = sum(t for t, _, _ in results) / len(results)
        ios = sum(io for _, io, _ in results) / len(results)
        bound = sum(b for _, _, b in results) / len(results)
        print(f"classes: c={args.classes} n={args.objects} B={args.block_size} "
              f"method={args.method} backend={args.backend}")
        print(f"  blocks used          : {index.block_count()}")
        print(f"  avg output per query : {t_avg:.1f} objects")
        print(f"  avg I/Os per query   : {ios:.1f}")
        print(f"  scheme bound         : {bound:.1f}")
    return 0


def _cmd_tessellation(args: argparse.Namespace) -> int:
    stats = GridTessellation(args.grid, args.block_size).measure()
    print(f"tessellation: grid={args.grid}x{args.grid} B={args.block_size}")
    print(f"  blocks per row query : {stats.row_query_blocks:.1f}")
    print(f"  optimal t/B          : {stats.optimal_blocks:.1f}")
    print(f"  ratio (~= sqrt(B))   : {stats.ratio:.1f}")
    return 0


def _compose_explain_query(args: argparse.Namespace):
    """Build the conjunction described by the ``explain`` flags."""
    parts = []
    if args.stab is not None:
        parts.append(Stab(args.stab))
    if args.range is not None:
        parts.append(Range(args.range[0], args.range[1]))
    for side, lo, hi in args.endpoint or ():
        parts.append(EndpointRange(side, float(lo), float(hi)))
    if not parts:
        parts.append(Stab(500.0))
    q = parts[0] if len(parts) == 1 else And(*parts)
    if args.order_by:
        q = q.order_by(args.order_by)
    if args.limit is not None:
        q = q.limit(args.limit)
    return q


def _cmd_explain(args: argparse.Namespace) -> int:
    q = _compose_explain_query(args)
    with _make_engine(args) as engine:
        intervals = random_intervals(args.n, seed=args.seed, mean_length=args.mean_length)
        coll = engine.create_collection("intervals", intervals)
        plan = engine.explain("intervals", q)
        print(f"query : {q!r}")
        print("plan  :")
        print("  " + plan.describe().replace("\n", "\n  "))
        print(f"predicted I/Os (t=0) : {plan.bound.pages:.1f}")
        result = engine.query("intervals", q)
        t = len(result.all())
        print(f"observed : t={t} ios={result.ios} "
              f"bound(t)={result.bound:.1f}")
        if result.plan != plan:  # user-facing invariant; must survive -O
            raise RuntimeError("executed plan differs from explain()")
        if args.cached:
            planner = coll.planner
            hits_before = planner.cache_hits
            replan = engine.explain("intervals", q)
            info = planner.cache_info()
            served = planner.cache_hits > hits_before
            print(f"cache : re-plan served from cache: {served}  "
                  f"(entries={info['entries']}, hits={info['hits']}, "
                  f"misses={info['misses']}, generation={info['generation']})")
            if replan != plan:  # cached strategy must reproduce the plan
                raise RuntimeError("cached plan differs from the fresh plan")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run one traced request and print its span tree.

    Builds an interval collection, primes the plan cache with an untraced
    warm-up, then re-runs the request with tracing enabled and prints the
    captured tree.  The default path is a **prepared stab query** (the
    engine's fastest read path); ``--adhoc`` routes the explain-style
    composed query through the full planner instead, so the
    ``planner.plan`` / ``planner.enumerate`` spans appear too.

    The two checks under the tree are the span-accounting invariants:
    the root span's I/O must equal both the request's attributed
    :class:`~repro.io.counters.IOStats` total and the summed I/O of its
    children (sinks nest, so the tree composes), and the root's residual
    (``ios - bound``) must keep the request inside the planner's
    documented ``BOUND_SLACK * bound + BOUND_SLACK_PAGES`` allowance —
    the same gate the test suite holds every query to.  Exit status 1
    when either check fails.
    """
    from repro import obs
    from repro.engine.planner import BOUND_SLACK, BOUND_SLACK_PAGES
    from repro.engine.queries import Param

    with _make_engine(args) as engine:
        intervals = random_intervals(
            args.n, seed=args.seed, mean_length=args.mean_length
        )
        session = engine.session()
        session.create_collection("intervals", intervals)
        x = args.stab if args.stab is not None else 500.0
        prepared = None
        if not args.adhoc:
            prepared = session.prepare("intervals", Stab(Param("x")))
            session.run(prepared, x=x)  # warm-up primes the plan cache
        obs.enable()
        try:
            with obs.TRACER.capture() as cap:
                if args.adhoc:
                    result = session.query(
                        "intervals", _compose_explain_query(args)
                    )
                else:
                    result = session.run(prepared, x=x)
        finally:
            obs.disable()
    root = cap.roots[-1]
    path = "ad-hoc planner" if args.adhoc else "prepared stab"
    print(f"trace : n={args.n} B={args.block_size} backend={args.backend} "
          f"path={path}")
    for line in obs.render_span_tree(root):
        print("  " + line)
    status = 0
    total = result.stats.total
    child_ios = sum(child.io.total for child in root.children)
    ok_compose = child_ios == total == root.io.total
    print(f"  io    : request={total} root_span={root.io.total} "
          f"summed_children={child_ios}  "
          f"{'OK (tree composes)' if ok_compose else 'MISMATCH'}")
    if not ok_compose:
        status = 1
    if result.bound is not None:
        allowed = BOUND_SLACK * result.bound + BOUND_SLACK_PAGES
        ok_bound = total <= allowed
        print(f"  bound : ios={total} bound={result.bound:.3f} "
              f"residual={total - result.bound:+.3f}  "
              f"(slack allows <= {allowed:.3f})  "
              f"{'OK' if ok_bound else 'EXCEEDED'}")
        if not ok_bound:
            status = 1
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(root.as_dict(), fh, indent=2, sort_keys=True, default=str)
            print(file=fh)
        print(f"  wrote {args.out}")
    return status


def _render_top(payload: "dict", previous: "Optional[dict]",
                dt: Optional[float], where: str) -> List[str]:
    """One ``repro top`` frame from a ``metrics`` payload (server or cluster)."""
    metrics = payload.get("metrics") or {}
    counters = metrics.get("counters") or {}
    histograms = metrics.get("histograms") or {}
    prev_counters = ((previous or {}).get("metrics") or {}).get("counters") or {}

    lines = [f"repro top — {where}"]
    uptime = payload.get("uptime_s")
    if uptime is not None:
        lines[0] += f"   uptime {uptime:.1f}s"

    cache = payload.get("plan_cache") or {}
    if cache:
        lines.append(
            f"  plan cache : entries={cache.get('entries')} "
            f"hits={cache.get('hits')} misses={cache.get('misses')} "
            f"hit_ratio={cache.get('hit_ratio')}"
        )
    wal = payload.get("wal")
    if wal:
        lines.append(
            f"  wal        : commits={wal.get('commits')} "
            f"syncs={wal.get('syncs')} "
            f"group_absorbed={wal.get('group_absorbed')} "
            f"ratio={wal.get('group_absorbed_ratio')}"
        )
    epochs = payload.get("epochs")
    if epochs:
        age = epochs.get("pin_age_s")
        lines.append(
            f"  epochs     : current={epochs.get('current')} "
            f"pinned={epochs.get('pinned')} "
            f"pin_age={'-' if age is None else f'{age:.3f}s'}"
        )
    tracer = payload.get("tracer")
    if tracer:
        lines.append(
            f"  tracer     : enabled={tracer.get('enabled')} "
            f"spans={tracer.get('spans_started')} "
            f"roots={tracer.get('roots_finished')}"
        )
    slowlog = payload.get("slowlog")
    if slowlog and slowlog.get("threshold_ms") is not None:
        lines.append(
            f"  slow log   : threshold={slowlog.get('threshold_ms')}ms "
            f"recorded={slowlog.get('recorded')}"
        )
    cluster = payload.get("cluster")
    if cluster:
        routing = cluster.get("routing") or {}
        lines.append(f"  routing    : {routing}")
        contacts = cluster.get("contacts_by_shard") or {}
        if contacts:
            spread = " ".join(f"s{k}={v}" for k, v in sorted(contacts.items()))
            lines.append(f"  contacts   : {spread}")

    ops = {
        name.split(".ops.", 1)[1]: value
        for name, value in counters.items() if ".ops." in name
    }
    if ops:
        lines.append("  cmd            ops      rate        p50        p95        p99 (ms)")
        for cmd in sorted(ops):
            total = ops[cmd]
            rate = "-"
            if dt:
                prev = sum(
                    value for name, value in prev_counters.items()
                    if ".ops." in name and name.split(".ops.", 1)[1] == cmd
                )
                rate = f"{max(total - prev, 0) / dt:.1f}/s"
            hist = (histograms.get(f"server.latency_ms.{cmd}")
                    or histograms.get(f"router.latency_ms.{cmd}") or {})
            lines.append(
                f"  {cmd:<12s} {total:>6d} {rate:>9s} "
                f"{hist.get('p50', 0.0):>10.3f} {hist.get('p95', 0.0):>10.3f} "
                f"{hist.get('p99', 0.0):>10.3f}"
            )
    return lines


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: a live metrics view of a running server or cluster.

    Polls the ``metrics`` wire command every ``--interval`` seconds and
    redraws a one-screen summary: per-command ops and request rates with
    latency percentiles, plan-cache hit ratio, WAL group-absorption,
    epoch pins, routing spread (against a cluster frontend).  ``--once``
    prints a single frame and exits — the scriptable/CI form; ``--json``
    dumps the raw payload instead of the rendered table.
    """
    from repro.server import ReproClient

    host, _, port = args.connect.rpartition(":")
    previous: Optional[dict] = None
    prev_t: Optional[float] = None
    frames = 0
    with ReproClient(host or "127.0.0.1", int(port), timeout=15.0) as db:
        while True:
            payload = db.metrics()
            now = time.monotonic()
            if args.json:
                print(json.dumps(payload, indent=2, sort_keys=True, default=str))
            else:
                if frames and sys.stdout.isatty():
                    print("\x1b[H\x1b[2J", end="")
                dt = None if prev_t is None else now - prev_t
                print("\n".join(_render_top(payload, previous, dt, args.connect)),
                      flush=True)
            frames += 1
            previous, prev_t = payload, now
            if args.once or (args.count is not None and frames >= args.count):
                return 0
            time.sleep(max(args.interval, 0.1))


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run a benchmark suite from the installed package (no repo checkout).

    ``bench workloads`` is the scenario matrix of
    :mod:`repro.workloads.scenarios`; ``bench concurrency`` is the
    multi-client driver of :mod:`repro.workloads.concurrent` — the same
    harnesses the ``benchmarks/`` scripts wrap, so the CLI can reproduce
    BENCH_workloads.json / BENCH_concurrency.json numbers anywhere the
    package is installed.
    """
    if args.suite == "concurrency":
        return _bench_concurrency(args)
    from repro.workloads.scenarios import report, run_gate, run_matrix

    payload = run_matrix(
        n=args.n, block_size=args.block_size,
        queries=args.queries, repeat=args.repeat,
    )
    print(f"bench workloads: n={args.n} B={args.block_size} "
          f"queries={args.queries} (best of {args.repeat})")
    report(payload, out=args.out)
    return run_gate(payload, args.threshold) if args.check else 0


def _bench_concurrency(args: argparse.Namespace) -> int:
    """``repro bench concurrency``: drive a server with N client threads.

    Spawns a subprocess server by default (true client/server parallelism
    — each side owns its interpreter), or drives an already-running one
    via ``--connect HOST:PORT``.
    """
    from repro.workloads import concurrent as C

    thread_counts = tuple(args.threads) if args.threads else (1, 2, 4)
    proc = None
    if args.connect:
        host, port_s = args.connect.rsplit(":", 1)
        host, port = host, int(port_s)
    else:
        proc, host, port = C.spawn_server(block_size=args.block_size,
                                          buffer_pages=args.buffer_pages)
    print(f"bench concurrency: n={args.n} queries/thread={args.queries} "
          f"threads={list(thread_counts)} server={host}:{port}")
    try:
        payload = C.run_matrix(
            host, port,
            n=args.n, queries=args.queries, thread_counts=thread_counts,
            write_ops=args.write_ops, think_ms=args.think_ms,
            shutdown=proc is not None or args.shutdown,
        )
    finally:
        if proc is not None:
            clean = C.wait_for_clean_exit(proc)
            print(f"  server exit clean: {clean}")
    if proc is not None:
        payload["summary"]["server_exit_clean"] = clean
    C.report(payload, out=args.out)
    if args.check:
        return C.run_gate(payload, require_scaling=args.require_scaling)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: the concurrent JSON-line server over one engine.

    ``--db PATH`` reopens a persistent catalog (``Engine.open``: WAL-tail
    replay, then re-attach) and checkpoints it on shutdown; without it the
    server runs on an in-memory SimulatedDisk.  SIGINT *and* SIGTERM both
    shut down cleanly — checkpoint, WAL truncate, close — so a supervised
    server (systemd, ``kill``) loses nothing and recovers instantly.
    ``--demo N`` preloads a ``base`` interval collection so clients have
    something to query immediately.
    """
    import signal

    from repro.server import ReproServer

    # a dedicated server process services every connection from its own
    # thread; the interpreter's default 5 ms switch interval makes each
    # post-I/O wakeup queue behind whoever holds the GIL, inflating
    # request latency by orders of magnitude once a dozen clients are
    # connected — hand it off faster
    sys.setswitchinterval(0.0005)

    if args.trace or args.slow_query_ms is not None:
        # the slow-query log needs span trees, so --slow-query-ms
        # implies tracing
        from repro import obs

        obs.enable()
        if args.slow_query_ms is not None:
            obs.SLOWLOG.configure(
                threshold_ms=args.slow_query_ms, path=args.slow_query_log
            )

    use_wal = not args.no_wal
    commit_latency = max(0.0, args.commit_latency_ms) / 1000.0
    if args.db:
        sidecar = FileDisk._meta_path_for(args.db)
        if os.path.exists(sidecar):
            engine = Engine.open(args.db, buffer_pages=args.buffer_pages,
                                 wal=use_wal, commit_latency=commit_latency)
        else:
            engine = Engine(
                FileDisk(args.db, block_size=args.block_size),
                buffer_pages=args.buffer_pages,
            )
            if use_wal:
                engine.attach_wal(commit_latency=commit_latency)
    else:
        engine = Engine(SimulatedDisk(args.block_size),
                        buffer_pages=args.buffer_pages)
    if args.demo:
        engine.create_collection(
            "base", random_intervals(args.demo, seed=args.seed), dynamic=True
        )
    server = ReproServer(engine, host=args.host, port=args.port,
                         close_engine=True)
    host, port = server.address
    durability = "wal" if engine.wal is not None else "checkpoint-only"
    observability = "tracing" if args.trace or args.slow_query_ms is not None else "metrics-only"
    if args.slow_query_ms is not None:
        observability += f"+slowlog({args.slow_query_ms:g}ms)"
    print(f"repro serve: B={engine.block_size} indexes={engine.names()} "
          f"durability={durability} obs={observability} "
          f"listening on {host}:{port}", flush=True)

    # a termination signal must run the same orderly path as Ctrl-C:
    # stop accepting, drain, checkpoint, truncate the WAL, close the
    # engine — an acknowledged write is durable either way, but a clean
    # exit spares the next open a replay
    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _terminate)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", flush=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.close()
    print("repro serve: stopped", flush=True)
    return 0


def _cmd_cluster_serve(args: argparse.Namespace) -> int:
    """``repro cluster serve``: N shard servers behind one scatter-gather
    frontend, speaking the identical JSON-line protocol.

    With ``--dir`` the topology persists as ``cluster.json`` (plus one
    ``shard-<i>/`` data directory per shard): an existing catalog there is
    *reopened* — same strategy, splits and pruning window — and ``--shards``
    / ``--strategy`` are ignored with a notice.  Without ``--dir`` the
    cluster is ephemeral (in-memory shards).  SIGINT/SIGTERM drain
    gracefully: frontend first, then a parallel wire shutdown of every
    shard, exiting 0 only when all of them checkpointed cleanly.
    """
    import signal

    from repro.cluster import TOPOLOGY_FILE, Cluster

    # same GIL handoff tuning as ``repro serve``: the router runs one
    # frontend thread per client plus the scatter pool, and a 5 ms
    # switch interval would serialize them in multi-millisecond steps
    sys.setswitchinterval(0.0005)

    directory = args.dir
    if directory and os.path.exists(os.path.join(directory, TOPOLOGY_FILE)):
        cluster = Cluster.open(
            directory, mode="process", host=args.host, port=args.port,
            buffer_pages=args.buffer_pages,
            commit_latency_ms=args.commit_latency_ms,
        )
        print(
            f"repro cluster: reopening {directory} "
            f"({cluster.shard_map.describe()}); --shards/--strategy ignored",
            flush=True,
        )
    else:
        cluster = Cluster.create(
            directory, shards=args.shards, strategy=args.strategy,
            domain=(args.domain[0], args.domain[1]), mode="process",
            host=args.host, port=args.port, block_size=args.block_size,
            buffer_pages=args.buffer_pages,
            commit_latency_ms=args.commit_latency_ms,
        )
    cluster.start()
    host, port = cluster.address
    print(
        f"repro cluster: {cluster.shard_map.shards} shards "
        f"[{cluster.shard_map.describe()}] "
        f"dir={directory or '(ephemeral)'} listening on {host}:{port}",
        flush=True,
    )

    def _terminate(signum: int, frame: object) -> None:
        raise KeyboardInterrupt

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, _terminate)
        except (ValueError, OSError):  # non-main thread / unsupported
            pass
    clean = True
    try:
        cluster.serve_forever()
    except KeyboardInterrupt:
        print("repro cluster: interrupted, draining shards", flush=True)
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        clean = cluster.close()
    print(f"repro cluster: stopped ({'clean' if clean else 'UNCLEAN'} drain)",
          flush=True)
    return 0 if clean else 1


def _cmd_cluster_status(args: argparse.Namespace) -> int:
    """``repro cluster status``: one-shot health/topology of a live cluster."""
    from repro.server import ReproClient

    host, _, port = args.connect.rpartition(":")
    with ReproClient(host or "127.0.0.1", int(port), timeout=15.0) as db:
        stats = db.stats()
    cluster = stats.get("cluster")
    if cluster is None:
        print(f"{args.connect}: a single repro server (not a cluster)")
        return 0
    topo = cluster.get("topology", {})
    print(f"cluster at {args.connect}: {topo.get('shards')} shards, "
          f"strategy={topo.get('strategy')}")
    if topo.get("splits"):
        print(f"  splits: {topo['splits']}  max_length={topo.get('max_length')}")
    per_shard = {
        entry.get("shard"): entry for entry in cluster.get("per_shard", [])
    }
    for shard in cluster.get("shards", []):
        line = (f"  shard {shard.get('shard')}: {shard.get('state', '?'):9s} "
                f"{shard.get('address')}")
        detail = per_shard.get(shard.get("shard"), {})
        if detail.get("uptime_s") is not None:
            line += f"  up={detail['uptime_s']:.1f}s"
        if detail.get("contacts") is not None:
            line += f"  contacts={detail['contacts']}"
        if shard.get("fault"):
            line += f"  fault={shard['fault']}"
        print(line)
    routing = cluster.get("routing", {})
    print(f"  routing: {routing}")
    if cluster.get("uptime_s") is not None:
        print(f"  router uptime: {cluster['uptime_s']:.1f}s")
    engine = stats.get("engine", {})
    print(f"  engine: blocks={engine.get('blocks')} reads={engine.get('reads')} "
          f"writes={engine.get('writes')} indexes={engine.get('indexes')}")
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=str))
    return 0


# --------------------------------------------------------------------------- #
# the persistent-database subcommands (bulk-load / delete / catalog)
# --------------------------------------------------------------------------- #
def _open_db(args: argparse.Namespace, *, must_exist: bool = False) -> Engine:
    """Reopen the catalog at ``--db`` (or start a fresh page file there).

    ``must_exist`` refuses to create a database as a side effect — commands
    that only mutate existing data (``delete``) set it so a typo'd path
    fails cleanly instead of leaving an empty page file behind.
    """
    sidecar = FileDisk._meta_path_for(args.db)
    if os.path.exists(sidecar):
        return Engine.open(args.db)
    if must_exist:
        raise FileNotFoundError(
            f"no database at {args.db!r} (missing {sidecar} sidecar)"
        )
    engine = Engine(FileDisk(args.db, block_size=args.block_size))
    # fresh databases get a write-ahead log from the first commit on, so
    # even a crash before the first explicit checkpoint loses nothing
    engine.attach_wal()
    return engine


def _read_rows(path: str) -> List[Any]:
    """Raw record rows from a JSON array or JSON-lines file (no records built)."""
    with open(path) as fh:
        text = fh.read().strip()
    try:
        rows = json.loads(text)
        # a one-line JSON-lines file parses whole: one object, or one bare
        # [low, high] pair — recognisable by its scalar (non-container)
        # elements, since rows of a multi-record array are lists/dicts
        if isinstance(rows, dict):
            rows = [rows]
        elif (isinstance(rows, list) and len(rows) == 2
              and not any(isinstance(x, (list, dict)) for x in rows)):
            rows = [rows]
        if not isinstance(rows, list):
            raise ValueError("top-level JSON value must be a list")
    except json.JSONDecodeError:
        rows = [json.loads(line) for line in text.splitlines() if line.strip()]
    return rows


def _as_intervals(rows: List[Any]) -> List[Interval]:
    """Interval records from parsed rows: ``[low, high]`` or
    ``{"low": .., "high": .., "payload": ..}``."""
    out = []
    for row in rows:
        if isinstance(row, dict):
            out.append(Interval(row["low"], row["high"], payload=row.get("payload")))
        else:
            out.append(Interval(row[0], row[1]))
    return out


def _read_records(path: str) -> List[Interval]:
    """Interval records straight from a file (see :func:`_read_rows`)."""
    return _as_intervals(_read_rows(path))


def _cmd_bulk_load(args: argparse.Namespace) -> int:
    # parse the file first (a typo'd --file must not create a database as a
    # side effect), but construct the records only AFTER the catalog is
    # open: the restore advances the process uid counters past every stored
    # record, so the batch built here cannot collide with resident uids
    rows = _read_rows(args.file)
    engine = _open_db(args)
    try:
        records = _as_intervals(rows)
        if args.index not in engine:
            engine.create_collection(args.index)
        batch_size = args.batch_size or len(records) or 1
        loaded = 0
        start = time.perf_counter()
        with engine.measure() as m:
            for begin in range(0, len(records), batch_size):
                loaded += engine.bulk_load(
                    args.index, records[begin : begin + batch_size]
                )
        elapsed = time.perf_counter() - start
        index = engine[args.index]
        print(f"bulk-load: {loaded} records -> {args.index!r} in {args.db}")
        print(f"  batch size     : {batch_size}")
        print(f"  I/Os           : {m.ios} ({m.ios / max(loaded, 1):.2f} per record)")
        print(f"  wall time      : {elapsed:.3f}s")
        print(f"  records live   : {getattr(index, 'live_count', len(index))}")
        print(f"  blocks used    : {index.block_count()}")
    finally:
        engine.close()
    return 0


def _cmd_delete(args: argparse.Namespace) -> int:
    if args.stab is None and args.range is None:
        print("delete: give --stab X or --range LO HI to select victims",
              file=sys.stderr)
        return 2
    q = Stab(args.stab) if args.stab is not None else Range(*args.range)
    try:
        engine = _open_db(args, must_exist=True)
    except FileNotFoundError as exc:
        print(f"delete: {exc}", file=sys.stderr)
        return 2
    try:
        victims = engine.query(args.index, q).all()
        if args.limit is not None:
            victims = victims[: args.limit]
        with engine.measure() as m:
            removed = sum(1 for v in victims if engine.delete(args.index, v))
        index = engine[args.index]
        print(f"delete: {removed} records matching {q!r} from {args.index!r}")
        print(f"  I/Os           : {m.ios}")
        print(f"  records live   : {getattr(index, 'live_count', len(index))}")
    except KeyError as exc:
        print(f"delete: {exc.args[0]}", file=sys.stderr)
        return 2
    finally:
        engine.close()
    return 0


def _cmd_wal(args: argparse.Namespace) -> int:
    """``repro wal inspect``: decode a database's write-ahead log.

    Read-only — a torn tail (the fingerprint of a crash mid-append) is
    reported, never truncated, so the command is safe on a live server's
    log and preserves a crashed process's evidence for a later recovery.
    """
    from repro.durability.wal import read_log
    from repro.engine.core import WAL_SUFFIX

    path = args.db + WAL_SUFFIX
    if not os.path.exists(path):
        print(f"wal inspect: no log at {path!r}", file=sys.stderr)
        return 2
    file_size = os.path.getsize(path)
    records = list(read_log(path))
    intact = sum(r.length for r in records)
    print(f"wal inspect: {path} ({file_size} bytes, {len(records)} records)")
    by_kind: dict = {}
    for r in records:
        by_kind[r.op[0]] = by_kind.get(r.op[0], 0) + 1
        if args.verbose:
            kind = r.op[0]
            if kind in ("insert", "delete", "update", "bulk", "drop"):
                target = r.op[1]
            else:  # create carries its catalog entry
                target = r.op[1].get("name", "?")
            extra = ""
            if kind == "bulk":
                extra = f" ({len(r.op[2])} records)"
            elif kind == "create":
                extra = f" ({len(r.op[2])} records, kind={r.op[1].get('kind')})"
            print(f"  lsn={r.lsn:<6d} epoch={r.epoch:<6d} offset={r.offset:<10d}"
                  f" {kind:7s} {target}{extra}")
    if by_kind:
        ops = ", ".join(f"{k}={v}" for k, v in sorted(by_kind.items()))
        print(f"  operations     : {ops}")
    epochs = [r.epoch for r in records]
    if epochs:
        print(f"  epoch range    : {min(epochs)}..{max(epochs)}")
    if intact < file_size:
        print(f"  torn tail      : {file_size - intact} trailing bytes fail "
              "framing/checksum (crash mid-append; recovery will truncate)")
    else:
        print("  torn tail      : none")
    return 0


def _cmd_catalog(args: argparse.Namespace) -> int:
    if not os.path.exists(FileDisk._meta_path_for(args.db)):
        print(f"catalog: no database at {args.db!r} (missing sidecar)",
              file=sys.stderr)
        return 2
    engine = Engine.open(args.db)
    try:
        entries = engine.catalog()
        print(f"catalog: {args.db} (B={engine.block_size}, "
              f"{engine.block_count()} blocks)")
        if not entries:
            print("  (empty)")
        for entry in entries:
            params = ", ".join(f"{k}={v!r}" for k, v in sorted(entry["params"].items()))
            print(f"  {entry['name']:20s} kind={entry['kind']:10s} "
                  f"records={entry['records']}  {params}")
    finally:
        engine.close()
    return 0


def _changed_python_files(ref: str, targets: "List[Any]") -> "List[Any]":
    """Python files changed since ``ref`` that fall under the lint targets.

    Asks git for ``diff --name-only ref`` at the repository root, keeps
    the ``.py`` paths that still exist (deletions drop out), and then
    intersects with ``targets``: a changed file survives when it *is* a
    target or sits under a target directory.  Exits with a diagnostic if
    git is unavailable or ``ref`` does not resolve.
    """
    import subprocess
    from pathlib import Path

    try:
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, check=True,
        ).stdout.strip()
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True, text=True, check=True, cwd=top,
        ).stdout
    except (OSError, subprocess.CalledProcessError) as exc:
        detail = getattr(exc, "stderr", "") or str(exc)
        print(f"lint --diff: git failed: {detail.strip()}", file=sys.stderr)
        raise SystemExit(2)

    resolved_targets = [Path(t).resolve() for t in targets]
    changed = []
    for name in diff.splitlines():
        if not name.endswith(".py"):
            continue
        path = Path(top, name)
        if not path.is_file():
            continue
        resolved = path.resolve()
        for target in resolved_targets:
            if resolved == target or target in resolved.parents:
                changed.append(path)
                break
    return changed


def _cmd_lint(args: argparse.Namespace) -> int:
    """``repro lint``: the static concurrency analyzer (see repro.analysis).

    Lints the given paths (default: the installed ``repro`` package — or
    ``src/repro`` when run from a checkout) against the concurrency rule
    catalog.  ``--fixtures DIR`` instead checks the seeded-bad corpus: the
    linter must flag exactly the ``# seeded: <rule>`` lines.  ``--check``
    makes findings (or a corpus mismatch) exit nonzero — the CI gate.
    ``--diff REF`` restricts the lint targets to Python files changed
    since REF (``git diff --name-only``) — but note the interprocedural
    rules see only the *lint targets* as the whole program, so a diff
    lint can both miss cross-file regressions and flag effects whose
    justification (an IOStats charge, a generation bump) lives in an
    unchanged file; it is a fast pre-push filter, not the CI gate.
    """
    from pathlib import Path

    from repro.analysis.lint import (
        Linter,
        check_fixture_corpus,
        render_report,
        write_json_report,
    )
    from repro.analysis.lintrules import rule_catalog

    if args.rules:
        for rule_id, description in rule_catalog().items():
            print(f"{rule_id}:\n    {description}")
        return 0

    status = 0
    if args.fixtures is not None:
        corpus = check_fixture_corpus(Path(args.fixtures))
        for path, line, rule in corpus["missed"]:  # type: ignore[union-attr]
            print(f"{path}:{line}: seeded [{rule}] violation NOT flagged")
        for path, line, rule in corpus["unexpected"]:  # type: ignore[union-attr]
            print(f"{path}:{line}: unseeded [{rule}] finding (false positive)")
        expected = corpus["expected"]
        assert isinstance(expected, list)
        print(
            f"fixture corpus: {len(expected)} seeded violation(s), "
            f"{'all flagged, no false positives' if corpus['ok'] else 'MISMATCH'}"
        )
        if not corpus["ok"]:
            status = 1

    if args.paths or args.fixtures is None:
        if args.paths:
            paths = [Path(p) for p in args.paths]
        else:
            checkout = Path("src/repro")
            paths = [checkout if checkout.is_dir() else Path(__file__).parent]
        if args.diff is not None:
            paths = _changed_python_files(args.diff, paths)
            if not paths:
                print(f"lint --diff {args.diff}: no changed Python files "
                      "under the lint targets; nothing to lint")
                return status
        linter = Linter()
        linter.lint_paths(paths)
        print(render_report(linter))
        if args.report is not None:
            write_json_report(linter, Path(args.report))
        if args.check and linter.findings:
            status = 1
    return status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="I/O-efficient indexing for constraints and classes (PODS'93 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=["memory", "file"],
            default="memory",
            help="page store: in-memory SimulatedDisk or file-backed FileDisk",
        )
        p.add_argument(
            "--buffer-pages",
            type=int,
            default=None,
            metavar="PAGES",
            help="wrap the backend in an LRU BufferManager of this many "
                 "resident pages (the paper's O(B^2) main memory is PAGES=B)",
        )

    p = sub.add_parser("intervals", help="interval-management demo (Theorem 3.2/3.7)")
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--mean-length", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    add_backend(p)
    p.set_defaults(func=_cmd_intervals)

    p = sub.add_parser("classes", help="class-indexing demo (Theorems 2.6/4.7)")
    p.add_argument("--classes", type=int, default=64)
    p.add_argument("--objects", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--method", choices=ClassIndexer.methods(), default="combined")
    p.add_argument("--seed", type=int, default=0)
    add_backend(p)
    p.set_defaults(func=_cmd_classes)

    p = sub.add_parser("tessellation", help="Lemma 2.7 lower-bound demo")
    p.add_argument("--grid", type=int, default=256)
    p.add_argument("--block-size", type=int, default=64)
    p.set_defaults(func=_cmd_tessellation)

    p = sub.add_parser(
        "explain",
        help="show the planner's chosen plan and predicted bound for a "
             "composed query over a multi-index interval collection",
    )
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--mean-length", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stab", type=float, default=None, metavar="X",
                   help="conjoin a stabbing query at X")
    p.add_argument("--range", type=float, nargs=2, default=None,
                   metavar=("LO", "HI"), help="conjoin an intersection query")
    p.add_argument("--endpoint", action="append", nargs=3, default=None,
                   metavar=("SIDE", "LO", "HI"),
                   help="conjoin an endpoint range (SIDE is 'low' or 'high'); "
                        "repeatable")
    p.add_argument("--order-by", choices=["low", "high"], default=None)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--cached", action="store_true",
                   help="re-plan the same query and report whether the "
                        "planner's signature-keyed plan cache served it")
    add_backend(p)
    p.set_defaults(func=_cmd_explain)

    p = sub.add_parser(
        "trace",
        help="run one traced request and print its span tree, checking "
             "that the tree's I/Os compose and the bound residual holds",
    )
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--mean-length", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stab", type=float, default=None, metavar="X",
                   help="stab point (default 500.0); with --adhoc this "
                        "conjoins like 'explain'")
    p.add_argument("--adhoc", action="store_true",
                   help="route the composed explain-style query through "
                        "the full planner instead of the prepared fast "
                        "path (shows planner.plan / planner.enumerate)")
    p.add_argument("--range", type=float, nargs=2, default=None,
                   metavar=("LO", "HI"), help="[--adhoc] conjoin an "
                   "intersection query")
    p.add_argument("--endpoint", action="append", nargs=3, default=None,
                   metavar=("SIDE", "LO", "HI"),
                   help="[--adhoc] conjoin an endpoint range; repeatable")
    p.add_argument("--order-by", choices=["low", "high"], default=None)
    p.add_argument("--limit", type=int, default=None)
    p.add_argument("--out", default=None, metavar="JSON",
                   help="also write the span tree as JSON (the CI trace "
                        "artifact)")
    add_backend(p)
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "top",
        help="live metrics view of a running server/cluster: ops rates, "
             "latency percentiles, plan-cache and WAL ratios "
             "(polls the 'metrics' wire command)",
    )
    p.add_argument("--connect", default="127.0.0.1:7411", metavar="HOST:PORT")
    p.add_argument("--interval", type=float, default=2.0, metavar="S",
                   help="seconds between polls (floor 0.1)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (scriptable/CI form)")
    p.add_argument("--count", type=int, default=None, metavar="N",
                   help="exit after N frames")
    p.add_argument("--json", action="store_true",
                   help="dump the raw metrics payload instead of the table")
    p.set_defaults(func=_cmd_top)

    p = sub.add_parser(
        "bench",
        help="run a benchmark suite: 'workloads' (prepared vs ad-hoc "
             "planning) or 'concurrency' (N client threads vs a live server)",
    )
    p.add_argument("suite", choices=["workloads", "concurrency"],
                   help="which suite to run")
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--queries", type=int, default=25)
    p.add_argument("--repeat", type=int, default=3)
    p.add_argument("--out", default=None, metavar="JSON",
                   help="also write the machine-readable payload here")
    p.add_argument("--check", action="store_true",
                   help="exit 1 if the suite's gate fails (workloads: "
                        "prepared-path regression; concurrency: oracle "
                        "equivalence / bounds / clean shutdown)")
    p.add_argument("--threshold", type=float, default=0.8,
                   help="[workloads] ops/sec ratio the gate enforces "
                        "(below 1.0 on purpose: wall-clock noise; a real "
                        "regression lands far lower)")
    p.add_argument("--threads", type=int, nargs="+", default=None,
                   metavar="T",
                   help="[concurrency] client thread counts to sweep "
                        "(default 1 2 4)")
    p.add_argument("--write-ops", type=int, default=12,
                   help="[concurrency] writes per thread in the mixed and "
                        "shared scenarios")
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="[concurrency] drive an already-running server "
                        "instead of spawning one")
    p.add_argument("--shutdown", action="store_true",
                   help="[concurrency] send a wire shutdown when driving "
                        "a --connect server")
    p.add_argument("--require-scaling", type=float, default=None,
                   metavar="X",
                   help="[concurrency] gate additionally requires the "
                        "read-only speedup to reach X (e.g. 2.0)")
    p.add_argument("--think-ms", type=float, default=5.0,
                   help="[concurrency] closed-loop client think time "
                        "between requests (application-side processing); "
                        "the thread sweep measures how well concurrent "
                        "sessions fill each other's idle time")
    p.add_argument("--buffer-pages", type=int, default=None)
    p.set_defaults(func=_cmd_bench)

    p = sub.add_parser(
        "serve",
        help="serve the engine over TCP (JSON-line protocol; MVCC snapshot "
             "reads, WAL-durable writes on persistent catalogs)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7411,
                   help="bind port (0 picks a free one; the bound address "
                        "is printed on stdout)")
    p.add_argument("--db", default=None, metavar="PATH",
                   help="serve a persistent FileDisk catalog (created if "
                        "missing; checkpointed on shutdown)")
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--buffer-pages", type=int, default=None, metavar="PAGES",
                   help="wrap the backend in an LRU BufferManager")
    p.add_argument("--demo", type=int, default=0, metavar="N",
                   help="preload a 'base' collection of N random intervals")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--no-wal", action="store_true",
                   help="[--db] run without a write-ahead log: acknowledged "
                        "writes are only durable at the next checkpoint "
                        "(the pre-WAL behaviour)")
    p.add_argument("--commit-latency-ms", type=float, default=0.0,
                   metavar="MS",
                   help="[--db] simulate a log device with this synchronous "
                        "commit round-trip: every WAL barrier sleeps MS "
                        "(no group absorption) — makes commit-pipeline "
                        "parallelism measurable on filesystems where fsync "
                        "is free")
    p.add_argument("--trace", action="store_true",
                   help="enable request tracing: every request builds a "
                        "span tree (kept in the tracer's ring; exported "
                        "via 'metrics'); off by default — the disabled "
                        "tracer costs one flag test per site")
    p.add_argument("--slow-query-ms", type=float, default=None, metavar="MS",
                   help="record requests slower than MS into the "
                        "slow-query log (implies --trace)")
    p.add_argument("--slow-query-log", default=None, metavar="PATH",
                   help="[--slow-query-ms] also append slow-query records "
                        "as JSON lines to PATH")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "cluster",
        help="hash/range-partitioned multi-shard serving behind one "
             "scatter-gather frontend (same wire protocol as 'serve')",
    )
    cluster_sub = p.add_subparsers(dest="cluster_command", required=True)
    cs = cluster_sub.add_parser(
        "serve",
        help="boot N shard servers and the routing frontend; an existing "
             "--dir cluster.json is reopened with its persisted topology",
    )
    cs.add_argument("--host", default="127.0.0.1")
    cs.add_argument("--port", type=int, default=7412,
                    help="frontend bind port (0 picks a free one; the bound "
                         "address is printed on stdout); shards always bind "
                         "ephemeral loopback ports")
    cs.add_argument("--shards", type=int, default=2,
                    help="number of shard servers (ignored when --dir holds "
                         "an existing cluster catalog)")
    cs.add_argument("--strategy", choices=["hash", "range"], default="hash",
                    help="partitioning: 'hash' spreads records by uid "
                         "(reads broadcast), 'range' slabs them by low "
                         "endpoint (stab/range reads prune shards)")
    cs.add_argument("--domain", type=float, nargs=2, default=(0.0, 1000.0),
                    metavar=("LO", "HI"),
                    help="[range] endpoint domain split evenly into slabs "
                         "(shapes balance only; out-of-domain records still "
                         "belong to the edge shards)")
    cs.add_argument("--dir", default=None, metavar="DIR",
                    help="cluster directory: cluster.json topology plus one "
                         "persistent shard-<i>/ database per shard (WAL "
                         "durability); omitted = ephemeral in-memory shards")
    cs.add_argument("--block-size", type=int, default=16)
    cs.add_argument("--buffer-pages", type=int, default=None, metavar="PAGES")
    cs.add_argument("--commit-latency-ms", type=float, default=0.0,
                    metavar="MS",
                    help="[--dir] forward a simulated per-commit log-device "
                         "round-trip to every shard (see 'serve "
                         "--commit-latency-ms')")
    cs.set_defaults(func=_cmd_cluster_serve)
    ct = cluster_sub.add_parser(
        "status",
        help="print a live cluster's topology, shard health and routing "
             "counters (one stats round-trip)",
    )
    ct.add_argument("--connect", default="127.0.0.1:7412", metavar="HOST:PORT")
    ct.add_argument("--json", action="store_true",
                    help="also dump the full stats payload as JSON")
    ct.set_defaults(func=_cmd_cluster_status)

    def add_db(p: argparse.ArgumentParser) -> None:
        p.add_argument("--db", required=True, metavar="PATH",
                       help="persistent FileDisk page file (catalog survives "
                            "across invocations)")
        p.add_argument("--index", default="intervals",
                       help="index name inside the catalog")
        p.add_argument("--block-size", type=int, default=16,
                       help="page size B when creating a fresh database "
                            "(ignored on reopen)")

    p = sub.add_parser(
        "bulk-load",
        help="load interval records from a JSON file into a persistent "
             "collection in one bulk reorganisation per batch",
    )
    add_db(p)
    p.add_argument("--file", required=True, metavar="RECORDS",
                   help="JSON array or JSON-lines of [low, high] or "
                        '{"low":..,"high":..,"payload":..} records')
    p.add_argument("--batch-size", type=int, default=0,
                   help="records per bulk_load call; 0 (default) loads "
                        "everything in one reorganisation, which is the "
                        "cheapest in total I/O — smaller batches bound the "
                        "latency of each reorganisation at the cost of "
                        "repeated rebuilds")
    p.set_defaults(func=_cmd_bulk_load)

    p = sub.add_parser(
        "delete",
        help="delete the records matching a stab/range query from a "
             "persistent collection",
    )
    add_db(p)
    p.add_argument("--stab", type=float, default=None, metavar="X",
                   help="delete records containing X")
    p.add_argument("--range", type=float, nargs=2, default=None,
                   metavar=("LO", "HI"), help="delete records intersecting [LO, HI]")
    p.add_argument("--limit", type=int, default=None,
                   help="delete at most this many matches")
    p.set_defaults(func=_cmd_delete)

    p = sub.add_parser("catalog", help="list the persisted engine catalog of a database")
    p.add_argument("--db", required=True, metavar="PATH")
    p.set_defaults(func=_cmd_catalog)

    p = sub.add_parser(
        "wal",
        help="write-ahead-log tools for a persistent database",
    )
    wal_sub = p.add_subparsers(dest="wal_command", required=True)
    wi = wal_sub.add_parser(
        "inspect",
        help="decode the log next to --db read-only: records, epochs, "
             "operation mix, torn-tail diagnosis",
    )
    wi.add_argument("--db", required=True, metavar="PATH",
                    help="page file whose <PATH>.wal log to inspect")
    wi.add_argument("--verbose", "-v", action="store_true",
                    help="print every record (lsn, epoch, offset, operation)")
    wi.set_defaults(func=_cmd_wal)

    p = sub.add_parser(
        "lint",
        help="static analyzer: lock discipline, commit protocol, I/O "
             "accounting, plan-cache generations, wire exhaustiveness",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files or directories to lint (default: the repro "
                        "package / src/repro in a checkout)")
    p.add_argument("--check", action="store_true",
                   help="exit nonzero on any finding (the CI gate)")
    p.add_argument("--diff", default=None, metavar="REF",
                   help="lint only Python files changed since this git ref "
                        "(intersected with PATH targets; a fast pre-push "
                        "filter — interprocedural rules see only the "
                        "changed files, so the full gate still rules)")
    p.add_argument("--fixtures", default=None, metavar="DIR",
                   help="also verify the seeded-bad fixture corpus in DIR "
                        "(every '# seeded: <rule>' line must be flagged)")
    p.add_argument("--report", default=None, metavar="FILE",
                   help="write the JSON report (findings, suppressions, "
                        "lock graph, rule catalog) to FILE")
    p.add_argument("--rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=_cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
