"""Command-line interface: quick demos and I/O reports from the terminal.

Usage::

    python -m repro intervals --n 5000 --block-size 16 --queries 20
    python -m repro intervals --n 5000 --backend file
    python -m repro classes   --classes 64 --objects 5000 --method combined
    python -m repro tessellation --grid 256 --block-size 64

Each subcommand builds the relevant index through the
:class:`~repro.engine.Engine` facade on the selected storage backend
(``--backend memory`` is the I/O-counting :class:`SimulatedDisk`,
``--backend file`` runs the same workload against real pages in a
:class:`FileDisk`), runs a batch of lazy queries, and prints the measured
I/O cost next to the paper's bound — a terminal-sized version of the
benchmark harness.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.tessellation import GridTessellation
from repro.core import ClassIndexer
from repro.engine import ClassRange, Engine, Stab
from repro.io import FileDisk, SimulatedDisk
from repro.workloads import random_class_objects, random_hierarchy, random_intervals


def _make_engine(args: argparse.Namespace) -> Engine:
    if args.backend == "file":
        return Engine(FileDisk(block_size=args.block_size))
    return Engine(SimulatedDisk(args.block_size))


def _cmd_intervals(args: argparse.Namespace) -> int:
    with _make_engine(args) as engine:
        intervals = random_intervals(args.n, seed=args.seed, mean_length=args.mean_length)
        index = engine.create_interval_index("intervals", intervals)
        rnd = random.Random(args.seed + 1)
        batch = engine.query_many(
            ("intervals", Stab(rnd.uniform(0, 1000))) for _ in range(args.queries)
        )
        results = [(len(r.all()), r.ios, r.bound) for r in batch]
        t_avg = sum(t for t, _, _ in results) / len(results)
        ios = sum(io for _, io, _ in results) / len(results)
        bound = sum(b for _, _, b in results) / len(results)
        print(f"intervals: n={args.n} B={args.block_size} queries={args.queries} "
              f"backend={args.backend}")
        print(f"  blocks used           : {index.block_count()}")
        print(f"  avg output per query  : {t_avg:.1f} intervals")
        print(f"  avg I/Os per query    : {ios:.1f}")
        print(f"  bound log_B n + t/B   : {bound:.1f}   (ratio {ios / bound:.2f})")
        print(f"  naive scan would read : {args.n // args.block_size + 1} blocks per query")
    return 0


def _cmd_classes(args: argparse.Namespace) -> int:
    hierarchy = random_hierarchy(args.classes, seed=args.seed)
    objects = random_class_objects(hierarchy, args.objects, seed=args.seed + 1)
    with _make_engine(args) as engine:
        index = engine.create_class_index(
            "classes", hierarchy, objects, method=args.method
        )
        rnd = random.Random(args.seed + 2)
        by_size = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
        candidates = by_size[: max(4, len(by_size) // 4)]
        batch = engine.query_many(
            ("classes", ClassRange(rnd.choice(candidates), lo, lo + 60.0))
            for lo in (rnd.uniform(0, 900) for _ in range(args.queries))
        )
        results = [(len(r.all()), r.ios, r.bound) for r in batch]
        t_avg = sum(t for t, _, _ in results) / len(results)
        ios = sum(io for _, io, _ in results) / len(results)
        bound = sum(b for _, _, b in results) / len(results)
        print(f"classes: c={args.classes} n={args.objects} B={args.block_size} "
              f"method={args.method} backend={args.backend}")
        print(f"  blocks used          : {index.block_count()}")
        print(f"  avg output per query : {t_avg:.1f} objects")
        print(f"  avg I/Os per query   : {ios:.1f}")
        print(f"  scheme bound         : {bound:.1f}")
    return 0


def _cmd_tessellation(args: argparse.Namespace) -> int:
    stats = GridTessellation(args.grid, args.block_size).measure()
    print(f"tessellation: grid={args.grid}x{args.grid} B={args.block_size}")
    print(f"  blocks per row query : {stats.row_query_blocks:.1f}")
    print(f"  optimal t/B          : {stats.optimal_blocks:.1f}")
    print(f"  ratio (~= sqrt(B))   : {stats.ratio:.1f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="I/O-efficient indexing for constraints and classes (PODS'93 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=["memory", "file"],
            default="memory",
            help="page store: in-memory SimulatedDisk or file-backed FileDisk",
        )

    p = sub.add_parser("intervals", help="interval-management demo (Theorem 3.2/3.7)")
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--mean-length", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    add_backend(p)
    p.set_defaults(func=_cmd_intervals)

    p = sub.add_parser("classes", help="class-indexing demo (Theorems 2.6/4.7)")
    p.add_argument("--classes", type=int, default=64)
    p.add_argument("--objects", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--method", choices=ClassIndexer.methods(), default="combined")
    p.add_argument("--seed", type=int, default=0)
    add_backend(p)
    p.set_defaults(func=_cmd_classes)

    p = sub.add_parser("tessellation", help="Lemma 2.7 lower-bound demo")
    p.add_argument("--grid", type=int, default=256)
    p.add_argument("--block-size", type=int, default=64)
    p.set_defaults(func=_cmd_tessellation)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
