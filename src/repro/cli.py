"""Command-line interface: quick demos and I/O reports from the terminal.

Usage::

    python -m repro intervals --n 5000 --block-size 16 --queries 20
    python -m repro intervals --n 5000 --backend file --buffer-pages 16
    python -m repro classes   --classes 64 --objects 5000 --method combined
    python -m repro tessellation --grid 256 --block-size 64
    python -m repro explain   --n 5000 --stab 42 --endpoint low 10 20 --limit 5

Each subcommand builds the relevant index through the
:class:`~repro.engine.Engine` facade on the selected storage backend
(``--backend memory`` is the I/O-counting :class:`SimulatedDisk`,
``--backend file`` runs the same workload against real pages in a
:class:`FileDisk`), runs a batch of lazy queries, and prints the measured
I/O cost next to the paper's bound — a terminal-sized version of the
benchmark harness.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional

from repro.analysis.tessellation import GridTessellation
from repro.core import ClassIndexer
from repro.engine import And, ClassRange, EndpointRange, Engine, Range, Stab
from repro.io import FileDisk, SimulatedDisk
from repro.workloads import random_class_objects, random_hierarchy, random_intervals


def _make_engine(args: argparse.Namespace) -> Engine:
    backend = (
        FileDisk(block_size=args.block_size)
        if args.backend == "file"
        else SimulatedDisk(args.block_size)
    )
    return Engine(backend, buffer_pages=getattr(args, "buffer_pages", None))


def _cmd_intervals(args: argparse.Namespace) -> int:
    with _make_engine(args) as engine:
        intervals = random_intervals(args.n, seed=args.seed, mean_length=args.mean_length)
        index = engine.create_interval_index("intervals", intervals)
        rnd = random.Random(args.seed + 1)
        batch = engine.query_many(
            ("intervals", Stab(rnd.uniform(0, 1000))) for _ in range(args.queries)
        )
        results = [(len(r.all()), r.ios, r.bound) for r in batch]
        t_avg = sum(t for t, _, _ in results) / len(results)
        ios = sum(io for _, io, _ in results) / len(results)
        bound = sum(b for _, _, b in results) / len(results)
        print(f"intervals: n={args.n} B={args.block_size} queries={args.queries} "
              f"backend={args.backend}")
        print(f"  blocks used           : {index.block_count()}")
        print(f"  avg output per query  : {t_avg:.1f} intervals")
        print(f"  avg I/Os per query    : {ios:.1f}")
        print(f"  bound log_B n + t/B   : {bound:.1f}   (ratio {ios / bound:.2f})")
        print(f"  naive scan would read : {args.n // args.block_size + 1} blocks per query")
    return 0


def _cmd_classes(args: argparse.Namespace) -> int:
    hierarchy = random_hierarchy(args.classes, seed=args.seed)
    objects = random_class_objects(hierarchy, args.objects, seed=args.seed + 1)
    with _make_engine(args) as engine:
        index = engine.create_class_index(
            "classes", hierarchy, objects, method=args.method
        )
        rnd = random.Random(args.seed + 2)
        by_size = sorted(hierarchy.classes(), key=hierarchy.subtree_size, reverse=True)
        candidates = by_size[: max(4, len(by_size) // 4)]
        batch = engine.query_many(
            ("classes", ClassRange(rnd.choice(candidates), lo, lo + 60.0))
            for lo in (rnd.uniform(0, 900) for _ in range(args.queries))
        )
        results = [(len(r.all()), r.ios, r.bound) for r in batch]
        t_avg = sum(t for t, _, _ in results) / len(results)
        ios = sum(io for _, io, _ in results) / len(results)
        bound = sum(b for _, _, b in results) / len(results)
        print(f"classes: c={args.classes} n={args.objects} B={args.block_size} "
              f"method={args.method} backend={args.backend}")
        print(f"  blocks used          : {index.block_count()}")
        print(f"  avg output per query : {t_avg:.1f} objects")
        print(f"  avg I/Os per query   : {ios:.1f}")
        print(f"  scheme bound         : {bound:.1f}")
    return 0


def _cmd_tessellation(args: argparse.Namespace) -> int:
    stats = GridTessellation(args.grid, args.block_size).measure()
    print(f"tessellation: grid={args.grid}x{args.grid} B={args.block_size}")
    print(f"  blocks per row query : {stats.row_query_blocks:.1f}")
    print(f"  optimal t/B          : {stats.optimal_blocks:.1f}")
    print(f"  ratio (~= sqrt(B))   : {stats.ratio:.1f}")
    return 0


def _compose_explain_query(args: argparse.Namespace):
    """Build the conjunction described by the ``explain`` flags."""
    parts = []
    if args.stab is not None:
        parts.append(Stab(args.stab))
    if args.range is not None:
        parts.append(Range(args.range[0], args.range[1]))
    for side, lo, hi in args.endpoint or ():
        parts.append(EndpointRange(side, float(lo), float(hi)))
    if not parts:
        parts.append(Stab(500.0))
    q = parts[0] if len(parts) == 1 else And(*parts)
    if args.order_by:
        q = q.order_by(args.order_by)
    if args.limit is not None:
        q = q.limit(args.limit)
    return q


def _cmd_explain(args: argparse.Namespace) -> int:
    q = _compose_explain_query(args)
    with _make_engine(args) as engine:
        intervals = random_intervals(args.n, seed=args.seed, mean_length=args.mean_length)
        engine.create_collection("intervals", intervals)
        plan = engine.explain("intervals", q)
        print(f"query : {q!r}")
        print("plan  :")
        print("  " + plan.describe().replace("\n", "\n  "))
        print(f"predicted I/Os (t=0) : {plan.bound.pages:.1f}")
        result = engine.query("intervals", q)
        t = len(result.all())
        print(f"observed : t={t} ios={result.ios} "
              f"bound(t)={result.bound:.1f}")
        if result.plan != plan:  # user-facing invariant; must survive -O
            raise RuntimeError("executed plan differs from explain()")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="I/O-efficient indexing for constraints and classes (PODS'93 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--backend",
            choices=["memory", "file"],
            default="memory",
            help="page store: in-memory SimulatedDisk or file-backed FileDisk",
        )
        p.add_argument(
            "--buffer-pages",
            type=int,
            default=None,
            metavar="PAGES",
            help="wrap the backend in an LRU BufferManager of this many "
                 "resident pages (the paper's O(B^2) main memory is PAGES=B)",
        )

    p = sub.add_parser("intervals", help="interval-management demo (Theorem 3.2/3.7)")
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--mean-length", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    add_backend(p)
    p.set_defaults(func=_cmd_intervals)

    p = sub.add_parser("classes", help="class-indexing demo (Theorems 2.6/4.7)")
    p.add_argument("--classes", type=int, default=64)
    p.add_argument("--objects", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--queries", type=int, default=20)
    p.add_argument("--method", choices=ClassIndexer.methods(), default="combined")
    p.add_argument("--seed", type=int, default=0)
    add_backend(p)
    p.set_defaults(func=_cmd_classes)

    p = sub.add_parser("tessellation", help="Lemma 2.7 lower-bound demo")
    p.add_argument("--grid", type=int, default=256)
    p.add_argument("--block-size", type=int, default=64)
    p.set_defaults(func=_cmd_tessellation)

    p = sub.add_parser(
        "explain",
        help="show the planner's chosen plan and predicted bound for a "
             "composed query over a multi-index interval collection",
    )
    p.add_argument("--n", type=int, default=5_000)
    p.add_argument("--block-size", type=int, default=16)
    p.add_argument("--mean-length", type=float, default=25.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--stab", type=float, default=None, metavar="X",
                   help="conjoin a stabbing query at X")
    p.add_argument("--range", type=float, nargs=2, default=None,
                   metavar=("LO", "HI"), help="conjoin an intersection query")
    p.add_argument("--endpoint", action="append", nargs=3, default=None,
                   metavar=("SIDE", "LO", "HI"),
                   help="conjoin an endpoint range (SIDE is 'low' or 'high'); "
                        "repeatable")
    p.add_argument("--order-by", choices=["low", "high"], default=None)
    p.add_argument("--limit", type=int, default=None)
    add_backend(p)
    p.set_defaults(func=_cmd_explain)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
