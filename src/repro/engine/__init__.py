"""``repro.engine`` — the public entry point of the reproduction.

The subsystem turns the paper's individual data structures into one
coherent database surface:

* :class:`~repro.engine.core.Engine` — owns a storage backend plus named
  indexes (``create_interval_index``, ``create_collection``, ...), with a
  ``query_many`` batch API, ``explain`` for plan inspection, and
  ``prepare`` for :class:`~repro.engine.prepared.PreparedQuery` handles
  (:class:`~repro.engine.queries.Param` placeholders bound per ``run``,
  plans served from the signature-keyed plan cache);
* :class:`~repro.engine.protocols.Index` — the protocol every index
  implements (``insert`` / ``query`` / ``supports`` / ``cost`` /
  ``block_count`` / ``io_stats``), with :class:`~repro.engine.protocols.
  Bound` as the predicted-cost currency, and its write tier
  :class:`~repro.engine.protocols.MutableIndex` (``delete`` /
  ``bulk_load`` / capability flags), served to static structures by the
  :class:`~repro.engine.rebuilding.RebuildingIndex` adapter;
* the **query algebra** of :mod:`repro.engine.queries` — leaves
  (:class:`Stab`, :class:`Range`, :class:`EndpointRange`,
  :class:`ClassRange`, the geometric shapes) composed with ``&``/``|``/
  ``~`` (:class:`And`/:class:`Or`/:class:`Not`) and the
  :class:`Limit`/:class:`OrderBy` modifiers, every node carrying a
  brute-force ``matches`` oracle;
* :class:`~repro.engine.collection.Collection` — several physical indexes
  over one logical record set, planned across by the
  :class:`~repro.engine.planner.QueryPlanner`, whose chosen
  :class:`~repro.engine.planner.Plan` is what ``Engine.explain`` returns;
* :class:`~repro.engine.result.QueryResult` — the lazy, I/O-accounted
  iterable every query returns (``result.ios``, ``result.bound``,
  ``result.plan``), with ``limit()``/``pages()`` cursors.

Storage backends live in :mod:`repro.io` and are selected via
``Engine(backend=...)`` — the same workload runs unchanged on the
in-memory :class:`~repro.io.SimulatedDisk` and the file-backed
:class:`~repro.io.FileDisk`.
"""

from repro.engine.queries import (
    And,
    ClassRange,
    DiagonalCornerQuery,
    EndpointRange,
    Limit,
    Not,
    Or,
    OrderBy,
    Param,
    Range,
    Stab,
    ThreeSidedQuery,
    TwoSidedQuery,
    bind_params,
    query_from_dict,
    unbound_params,
)
from repro.engine.result import QueryResult, ResultConsumedError
from repro.engine.session import (
    EngineSession,
    RWLock,
    SessionResult,
    WriteIntentError,
)
from repro.engine.protocols import (
    Bound,
    Index,
    MutableIndex,
    supports_bulk_load,
    supports_deletes,
)
from repro.engine.planner import (
    BOUND_SLACK,
    BOUND_SLACK_PAGES,
    PLAN_CACHE_SIZE,
    Accessor,
    Plan,
    PlanTemplate,
    QueryPlanner,
)
from repro.engine.prepared import PreparedQuery
from repro.engine.rebuilding import RebuildingIndex
from repro.engine.collection import Collection, WriteBatch
from repro.engine.core import DEFAULT_BLOCK_SIZE, Engine

__all__ = [
    "Accessor",
    "And",
    "BOUND_SLACK",
    "BOUND_SLACK_PAGES",
    "Bound",
    "ClassRange",
    "Collection",
    "DEFAULT_BLOCK_SIZE",
    "DiagonalCornerQuery",
    "EndpointRange",
    "Engine",
    "EngineSession",
    "Index",
    "Limit",
    "MutableIndex",
    "Not",
    "Or",
    "OrderBy",
    "PLAN_CACHE_SIZE",
    "Param",
    "Plan",
    "PlanTemplate",
    "PreparedQuery",
    "QueryPlanner",
    "QueryResult",
    "RWLock",
    "Range",
    "RebuildingIndex",
    "ResultConsumedError",
    "SessionResult",
    "Stab",
    "ThreeSidedQuery",
    "TwoSidedQuery",
    "WriteBatch",
    "WriteIntentError",
    "bind_params",
    "query_from_dict",
    "supports_bulk_load",
    "supports_deletes",
    "unbound_params",
]
