"""``repro.engine`` — the public entry point of the reproduction.

The subsystem turns the paper's individual data structures into one
coherent database surface:

* :class:`~repro.engine.core.Engine` — owns a storage backend plus named
  indexes (``create_interval_index``, ``create_class_index``, ...), with a
  ``query_many`` batch API for throughput workloads;
* :class:`~repro.engine.protocols.Index` — the protocol every index
  implements (``insert`` / ``query`` / ``block_count`` / ``io_stats``);
* :class:`~repro.engine.result.QueryResult` — the lazy, I/O-accounted
  iterable every query returns (``result.ios``, ``result.bound``);
* the query descriptors of :mod:`repro.engine.queries` (:class:`Stab`,
  :class:`Range`, :class:`ClassRange`, plus the geometric shapes).

Storage backends live in :mod:`repro.io` and are selected via
``Engine(backend=...)`` — the same workload runs unchanged on the
in-memory :class:`~repro.io.SimulatedDisk` and the file-backed
:class:`~repro.io.FileDisk`.
"""

from repro.engine.queries import (
    ClassRange,
    DiagonalCornerQuery,
    Range,
    Stab,
    ThreeSidedQuery,
    TwoSidedQuery,
)
from repro.engine.result import QueryResult
from repro.engine.protocols import Index
from repro.engine.core import DEFAULT_BLOCK_SIZE, Engine

__all__ = [
    "ClassRange",
    "DEFAULT_BLOCK_SIZE",
    "DiagonalCornerQuery",
    "Engine",
    "Index",
    "QueryResult",
    "Range",
    "Stab",
    "ThreeSidedQuery",
    "TwoSidedQuery",
]
