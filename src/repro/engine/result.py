"""Lazy, I/O-accounted query results.

Every query issued through the :class:`~repro.engine.Engine` (or directly
through an index's uniform ``query()`` method) returns a
:class:`QueryResult`: an iterable that

* performs **no I/O until iteration starts** — building a result is free,
  which is what makes ``query_many`` batches cheap to set up;
* **streams** hits as the underlying structure produces them, block by
  block, instead of materialising a Python list up front;
* carries its own **per-query I/O accounting** (``result.ios``,
  ``result.stats``) measured around the streaming iterator, so interleaved
  queries on a shared backend attribute I/Os correctly; and
* knows the **paper's predicted bound** for the query (``result.bound``),
  computed from the structure's size, the page size ``B`` and the number of
  hits reported so far.

Once exhausted, results are cached: **re-iterating replays the hits without
touching the disk again** — that is the documented double-iteration
contract, and it holds for every decorated consumption path (``__iter__``,
``all``, ``first``, ``pages``, ``limit``).  The one exception is
:meth:`QueryResult.raw`, which deliberately hands out the *undecorated*
source stream (no accounting, no cache): once a pristine result has been
consumed that way there is nothing to replay, and any further consumption
raises :class:`ResultConsumedError` instead of silently re-running the
query against the disk (double I/O, possibly different answers after a
write) or yielding nothing.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.io.counters import IOStats


class ResultConsumedError(RuntimeError):
    """A lazy result's one-shot stream was already handed out via ``raw()``.

    Raised when iterating (or calling ``raw`` again on) a
    :class:`QueryResult` whose undecorated source stream was taken while
    the result was still pristine — there is no replay cache to serve, and
    silently re-executing the query would double its I/O and, after an
    intervening write, return different records than the first consumer
    saw.  Re-issue the query (or drain through ``all()``/iteration, which
    cache) instead.
    """


class QueryResult:
    """A lazy stream of query hits with per-query I/O accounting.

    Parameters
    ----------
    source:
        Zero-argument callable returning the hit iterator.  It is invoked on
        first iteration, never earlier — laziness is the contract.
    disk:
        The storage backend whose counters attribute this query's I/Os.
        ``None`` disables accounting (``stats`` stays zero).
    bound:
        Optional callable ``t -> predicted I/Os`` implementing the paper's
        bound for this query shape (e.g. ``O(log_B n + t/B)``).
    label:
        Cosmetic tag used in ``repr`` and engine diagnostics.
    accounting:
        ``"per_record"`` (default) brackets the backend counters around
        every ``next()`` call, so several interleaved results on one
        backend each attribute exactly their own I/Os.  ``"bulk"``
        brackets the whole drain once — the fast path prepared queries
        use: per-record bracketing costs more Python time than the block
        reads it measures, and a prepared statement's result is almost
        always consumed on its own.  Under ``"bulk"``, ``ios``/``stats``
        are settled when the stream is exhausted (or closed), and
        interleaving another query on the same backend *while draining*
        would attribute its I/Os here — don't do that with bulk results.
    """

    def __init__(
        self,
        source: Callable[[], Iterable[Any]],
        disk: Any = None,
        bound: Optional[Callable[[int], float]] = None,
        label: str = "query",
        accounting: str = "per_record",
    ) -> None:
        if accounting not in ("per_record", "bulk"):
            raise ValueError(f"unknown accounting mode {accounting!r}")
        self._source = source
        self._disk = disk
        self._bound_fn = bound
        self._accounting = accounting
        self.label = label
        self._iterator: Optional[Iterator[Any]] = None
        self._pump_iter: Optional[Iterator[Any]] = None
        self._cache: List[Any] = []
        self._exhausted = False
        self._started = False
        #: the undecorated source stream was handed out by :meth:`raw`;
        #: nothing is cached, so no other consumption path may follow
        self._raw_consumed = False
        self._error: Optional[BaseException] = None
        #: open bulk-accounting bracket: the counter snapshot taken when a
        #: bulk drain started and not yet folded into ``_stats``
        self._bulk_before = None
        self._stats = IOStats()
        #: the executed :class:`~repro.engine.planner.Plan` when this result
        #: came out of the query planner; ``None`` for direct index queries
        self.plan: Optional[Any] = None

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def _pump(self) -> Iterator[Any]:
        """Drain the underlying iterator, attributing I/Os step by step."""
        try:
            yield from self._pump_inner()
        except GeneratorExit:
            raise
        except BaseException as exc:
            # remember the failure: a generator dies on the first raise, and a
            # later re-iteration must re-raise instead of silently serving the
            # truncated cache as if the query had completed
            self._error = exc
            raise

    def _pump_inner(self) -> Iterator[Any]:
        if self._disk is not None and self._accounting == "bulk":
            yield from self._pump_bulk()
            return
        if self._iterator is None:
            self._started = True
            if self._disk is not None:
                before = self._counters()
                self._iterator = iter(self._source())
                self._account(before)
            else:
                self._iterator = iter(self._source())
        while True:
            if self._disk is not None:
                before = self._counters()
                try:
                    item = next(self._iterator)
                except StopIteration:
                    self._account(before)
                    self._exhausted = True
                    return
                self._account(before)
            else:
                try:
                    item = next(self._iterator)
                except StopIteration:
                    self._exhausted = True
                    return
            self._cache.append(item)
            yield item

    def _pump_bulk(self) -> Iterator[Any]:
        """One counter bracket around the whole drain (the prepared fast path).

        The bracket is held open in ``_bulk_before`` while the drain is
        suspended; reading ``stats``/``ios`` settles it (folding the delta
        so far into the totals and re-opening from the current counters),
        so a partially drained result still reports the I/Os performed on
        its behalf — assuming no other query ran on the same backend in
        between, which is the documented bulk-mode contract.
        """
        self._started = True
        self._bulk_before = self._counters()
        cache = self._cache
        try:
            self._iterator = iter(self._source())
            for item in self._iterator:
                cache.append(item)
                yield item
            self._exhausted = True
        finally:
            self._settle_bulk(reopen=False)

    def _settle_bulk(self, reopen: bool) -> None:
        """Fold the open bulk bracket into the totals (and re-open it)."""
        if self._bulk_before is None:
            return
        self._account(self._bulk_before)
        self._bulk_before = self._counters() if reopen else None

    def _counters(self):
        """The backend counters as a plain tuple (cheap per-record bracketing)."""
        s = self._disk.stats
        return (s.reads, s.writes, s.cache_hits, s.allocations, s.frees)

    def _account(self, before) -> None:
        reads, writes, hits, allocs, frees = before
        s = self._disk.stats
        self._stats.count(
            reads=s.reads - reads,
            writes=s.writes - writes,
            cache_hits=s.cache_hits - hits,
            allocations=s.allocations - allocs,
            frees=s.frees - frees,
        )

    def _check_not_raw_consumed(self) -> None:
        if self._raw_consumed:
            raise ResultConsumedError(
                f"result {self.label!r} was consumed through raw() — the "
                "undecorated one-shot stream — so there is no cache to "
                "replay; re-issue the query instead"
            )

    def __iter__(self) -> Iterator[Any]:
        # replay what is cached, then continue streaming; supports several
        # (even interleaved) consumers without re-running the query
        self._check_not_raw_consumed()
        i = 0
        pump = None
        while True:
            if i < len(self._cache):
                yield self._cache[i]
                i += 1
                continue
            if self._exhausted:
                return
            if self._error is not None:
                raise self._error
            if pump is None:
                pump = self._pump_singleton()
            try:
                next(pump)
            except StopIteration:
                return

    def _pump_singleton(self) -> Iterator[Any]:
        """One shared pump per result so concurrent iterations do not race."""
        if self._pump_iter is None:
            self._pump_iter = self._pump()
        return self._pump_iter

    def raw(self) -> Iterator[Any]:
        """The undecorated hit stream: no accounting, no caching, one shot.

        What the query planner consumes when it nests this result inside
        its own :class:`QueryResult` — the outer result owns the
        per-record I/O attribution and the replay cache, so paying for
        both layers would double the per-record Python overhead without
        measuring anything new.  If iteration already started, the cached
        prefix is replayed first (via :meth:`__iter__`); otherwise the
        source is consumed directly and this result is marked consumed:
        any later consumption attempt raises :class:`ResultConsumedError`
        rather than silently re-running the query (see the module
        docstring for the double-iteration contract).
        """
        if self._started:
            return iter(self)
        self._check_not_raw_consumed()
        self._raw_consumed = True
        return iter(self._source())

    # ------------------------------------------------------------------ #
    # materialisation helpers
    # ------------------------------------------------------------------ #
    def all(self) -> List[Any]:
        """Exhaust the stream and return every hit as a list.

        Exhausted results are cached: calling ``all()`` (or iterating)
        again replays the same records without touching the disk.
        """
        self._check_not_raw_consumed()
        if (
            self._accounting == "bulk"
            and not self._started
            and self._error is None
        ):
            # bulk-accounted results drain through ``list()`` directly —
            # no per-record generator hand-off — with one counter bracket
            # around the whole consumption (the prepared fast path)
            self._started = True
            before = self._counters() if self._disk is not None else None
            try:
                self._cache = list(self._source())
            except BaseException as exc:
                self._error = exc  # re-iterations must re-raise, not re-run
                raise
            finally:
                if before is not None:
                    self._account(before)
            self._exhausted = True
            return list(self._cache)
        for _ in self:
            pass
        return list(self._cache)

    to_list = all

    def first(self, default: Any = None) -> Any:
        """The first hit, or ``default`` when the result is empty."""
        for item in self:
            return item
        return default

    # ------------------------------------------------------------------ #
    # cursors
    # ------------------------------------------------------------------ #
    def limit(self, n: int) -> "QueryResult":
        """A lazy result over the first ``n`` hits.

        Shares this result's stream (and cache), so taking a limit after
        partial consumption replays cached hits for free; the underlying
        query is never drained past ``n`` records.
        """
        if n < 0:
            raise ValueError(f"limit must be non-negative, not {n}")
        from itertools import islice

        return QueryResult(
            lambda: islice(iter(self), n),
            disk=self._disk,
            bound=self._bound_fn,
            label=f"{self.label}|limit({n})",
        )

    def pages(self, size: int):
        """Cursor-style pagination: yield successive lists of ``size`` hits.

        Lazy like iteration itself — each page's blocks are read only when
        that page is requested, so ``next(result.pages(100))`` pays for the
        first ~``100/B`` blocks only.
        """
        if size <= 0:
            raise ValueError(f"page size must be positive, not {size}")
        page: List[Any] = []
        for item in self:
            page.append(item)
            if len(page) == size:
                yield page
                page = []
        if page:
            yield page

    def __len__(self) -> int:
        """Number of hits (exhausts the stream)."""
        return len(self.all())

    def __bool__(self) -> bool:
        """Whether the query reported at least one hit (may read one block)."""
        sentinel = object()
        return self.first(sentinel) is not sentinel

    def __getitem__(self, index):
        """List-style access (materialises as far as needed; back-compat)."""
        if isinstance(index, slice):
            return self.all()[index]
        if index < 0:
            return self.all()[index]
        for i, item in enumerate(self):
            if i == index:
                return item
        raise IndexError(index)

    def __eq__(self, other: Any) -> bool:
        """Compare by materialised contents, so pre-redesign callers that
        tested ``structure.query(q) == [...]`` keep working (exhausts the
        stream)."""
        if isinstance(other, QueryResult):
            return self.all() == other.all()
        if isinstance(other, (list, tuple)):
            return self.all() == list(other)
        return NotImplemented

    __hash__ = None  # mutable-by-iteration; equality is by contents

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    @property
    def started(self) -> bool:
        """Whether iteration (and therefore I/O) has begun."""
        return self._started

    @property
    def exhausted(self) -> bool:
        return self._exhausted

    @property
    def count(self) -> int:
        """Hits reported so far (does not force materialisation)."""
        return len(self._cache)

    @property
    def stats(self) -> IOStats:
        """Per-query I/O counters (settles any open bulk bracket first)."""
        self._settle_bulk(reopen=True)
        return self._stats

    @property
    def ios(self) -> int:
        """I/Os performed on behalf of this query so far."""
        return self.stats.total

    @property
    def bound(self) -> Optional[float]:
        """The paper's predicted I/O bound at the current output size ``t``.

        ``None`` when the creating index supplied no bound.  For the final
        bound, exhaust the result first (e.g. ``result.all()``).
        """
        if self._bound_fn is None:
            return None
        return self._bound_fn(self.count)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "exhausted" if self._exhausted else ("streaming" if self._started else "pending")
        return f"QueryResult({self.label!r}, {state}, t={self.count}, ios={self.ios})"
