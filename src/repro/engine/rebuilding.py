"""Global-rebuilding dynamization: a write surface for static structures.

The paper analyses several structures as *static* — the blocked priority
search tree of Lemma 4.1, the metablock tree of Theorem 3.2 — and, where it
needs them maintained, rebuilds them wholesale (Lemma 4.4).
:class:`RebuildingIndex` packages that technique as a generic adapter
implementing the :class:`~repro.engine.protocols.MutableIndex` surface on
top of *any* static index:

* **inserts** accumulate in a one-block side log on disk; when the log
  fills (``B`` records) the whole structure is rebuilt from live + pending
  records.  Queries read the log (at most one extra I/O) and post-filter it
  through the query's ``matches`` oracle, so answers are always current.
* **deletes** tombstone the record's identity; query streams filter
  tombstoned records out for free.  Once tombstones reach
  :data:`~RebuildingIndex.REBUILD_FRACTION` of the live set, a global
  rebuild sweeps them away.
* **bulk loads** go straight to one rebuild — the static constructor *is*
  the bulk build.

Every rebuild runs through the shared disk, so its I/Os are charged to the
counters: a rebuild costs ``O((n/B) log_B n)`` I/Os, amortized over the
``Θ(B)`` inserts or ``Θ(n)`` deletes between rebuilds that makes
``O((n/B²) log_B n)`` extra I/Os per insert and ``O((1/B) log_B n)`` per
delete, and queries keep the inner structure's bound plus one side-log
block.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.analysis.complexity import rebuild_due
from repro.engine.protocols import Bound
from repro.engine.result import QueryResult
from repro.records import fresh_record_keys, record_key


class RebuildingIndex:
    """Tombstone deletes + side-log inserts + threshold-triggered rebuilds.

    Parameters
    ----------
    disk:
        The storage backend shared with the inner structure.
    build:
        ``items -> index`` factory invoked for the initial construction and
        for every global rebuild (e.g. ``lambda pts: ExternalPST(disk, pts)``).
    items:
        Initial records, bulk-built immediately.
    """

    supports_deletes = True
    supports_bulk_load = True

    #: rebuild once tombstones exceed this fraction of the live records
    REBUILD_FRACTION = 0.5

    def __init__(
        self,
        disk: Any,
        build: Callable[[List[Any]], Any],
        items: Iterable[Any] = (),
    ) -> None:
        self.disk = disk
        self._build = build
        initial = list(items)
        self._keys = fresh_record_keys(initial, context="the initial items")
        self._inner_items: List[Any] = initial
        self._tombstones: set = set()
        self._pending: List[Any] = []
        self._log_block_id: Optional[int] = None
        #: bumped on every global rebuild — the planner's cache generation
        #: key folds this in, so cached plans over this index re-plan after
        #: a threshold-triggered reorganisation
        self.generation = 0
        self.inner = build(initial)

    # ------------------------------------------------------------------ #
    # the MutableIndex surface
    # ------------------------------------------------------------------ #
    def insert(self, item: Any) -> None:
        """Insert via the side log; rebuild when a block's worth is pending."""
        key = record_key(item)
        if key in self._keys:
            raise ValueError(
                f"record uid {key!r} is already indexed; records carry a "
                "process-unique uid, so inserting the same object twice "
                "would silently double-index it"
            )
        self._keys.add(key)
        self._pending.append(item)
        self._write_log()
        if len(self._pending) >= self.disk.block_size:
            try:
                self._rebuild()
            except BaseException:
                # the build rejected the fold-in (e.g. an incomparable
                # record): undo this insert so the raise leaves the index
                # exactly as it was before the call.  Remove by identity —
                # value equality could evict an equal-but-distinct earlier
                # pending record (uid is excluded from record equality)
                for i, pending in enumerate(self._pending):
                    if pending is item:
                        del self._pending[i]
                        break
                self._keys.discard(key)
                self._write_log()
                raise

    def delete(self, item: Any) -> bool:
        """Delete one record (matched by identity); ``True`` when present."""
        key = record_key(item)
        if key not in self._keys:
            return False
        self._keys.discard(key)
        for i, pending in enumerate(self._pending):
            if record_key(pending) == key:
                del self._pending[i]
                self._write_log()
                return True
        self._tombstones.add(key)
        live = len(self._inner_items) - len(self._tombstones)
        if rebuild_due(
            len(self._tombstones), live, self.disk.block_size, self.REBUILD_FRACTION
        ):
            self._rebuild()
        return True

    def bulk_load(self, items: Iterable[Any]) -> int:
        """Absorb a batch in one global rebuild (the static bulk build).

        The replacement structure is built before the old one is
        destroyed, so a failing batch raises with the index intact.
        """
        new = list(items)
        fresh = fresh_record_keys(new, self._keys)
        live = self.items() + new
        replacement = self._build(live)
        self._swap_inner(replacement, live)
        self._keys |= fresh
        return len(new)

    # ------------------------------------------------------------------ #
    # rebuild machinery
    # ------------------------------------------------------------------ #
    def items(self) -> List[Any]:
        """Every live record (inner minus tombstones, plus pending)."""
        return [
            item
            for item in self._inner_items
            if record_key(item) not in self._tombstones
        ] + list(self._pending)

    @property
    def live_count(self) -> int:
        """Number of live records — what the cost bounds use."""
        return len(self._keys)

    def _rebuild(self) -> None:
        """Rebuild the inner structure from the live records (I/Os charged).

        The replacement is built *before* the old structure is destroyed —
        insert-triggered rebuilds fold in the unvalidated side-log records,
        and a build they crash must leave the index answering queries from
        the old structure + overlay rather than bricked.  Peak space is
        transiently ``2 · O(n/B)``, the standard global-rebuilding
        trade-off.
        """
        live = self.items()
        self._swap_inner(self._build(live), live)

    def _swap_inner(self, replacement: Any, live: List[Any]) -> None:
        """Install a freshly built inner structure and reset the overlays."""
        self.generation += 1
        if self.inner is not None and self.inner is not replacement:
            destroy = getattr(self.inner, "destroy", None)
            if callable(destroy):
                destroy()
        self.inner = replacement
        self._inner_items = live
        self._tombstones = set()
        self._pending = []
        if self._log_block_id is not None:
            self.disk.free(self._log_block_id)
            self._log_block_id = None

    def _write_log(self) -> None:
        """Persist the pending records to the one-block side log (one I/O)."""
        if self._log_block_id is None:
            block = self.disk.allocate(records=list(self._pending))
            self._log_block_id = block.block_id
        else:
            block = self.disk.read(self._log_block_id)
            block.records = list(self._pending)
            self.disk.write(block)

    def destroy(self) -> None:
        """Free every block (``Engine.drop_index`` calls this)."""
        destroy = getattr(self.inner, "destroy", None)
        if callable(destroy):
            destroy()
        if self._log_block_id is not None:
            self.disk.free(self._log_block_id)
            self._log_block_id = None
        self._inner_items = []
        self._pending = []
        self._tombstones = set()
        self._keys = set()

    # ------------------------------------------------------------------ #
    # the read surface (delegated, with tombstone/side-log overlay)
    # ------------------------------------------------------------------ #
    def _overlay(self, q: Any) -> Iterator[Any]:
        """Stream the inner answer minus tombstones, plus matching pending."""
        tombstones = self._tombstones
        for item in self.inner.query(q):
            if record_key(item) not in tombstones:
                yield item
        if self._pending and self._log_block_id is not None:
            block = self.disk.read(self._log_block_id)
            matches = getattr(q, "matches", None)
            for item in block.records:
                if matches is None or matches(item):
                    yield item

    def query(self, q: Any) -> QueryResult:
        """Answer ``q`` lazily with the overlay applied (current answers)."""
        inner_bound = self.cost(q)
        return QueryResult(
            lambda: self._overlay(q),
            disk=self.disk,
            bound=inner_bound,
            label=f"rebuilding:{type(self.inner).__name__}",
        )

    def supports(self, q: Any) -> bool:
        return self.inner.supports(q)

    def cost(self, q: Any) -> Bound:
        """The inner structure's bound plus the one side-log block."""
        inner = self.inner.cost(q)
        if not self._pending:
            return inner
        return inner + Bound("1 (side log)", 1.0)

    def block_count(self) -> int:
        return self.inner.block_count() + (1 if self._log_block_id is not None else 0)

    def io_stats(self):
        return self.disk.stats

    def __len__(self) -> int:
        return self.live_count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RebuildingIndex({type(self.inner).__name__}, live={self.live_count}, "
            f"pending={len(self._pending)}, tombstones={len(self._tombstones)})"
        )
