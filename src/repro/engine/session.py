"""The concurrency kernel: ``RWLock`` + per-caller ``EngineSession`` handles.

An :class:`~repro.engine.core.Engine` is single-caller by construction —
its indexes mutate shared block structures, planners mutate their plan
caches, and the paper's bounds are stated per operation.  The serving
subsystem multiplexes it with two small pieces:

* :class:`RWLock` — a readers-writer lock with **writer preference** and a
  **write-intent upgrade**.  Many readers hold it together (queries drain
  in parallel); writers (inserts, deletes, bulk loads, drops, rebuilds)
  take exclusive turns, and a waiting writer blocks *new* readers so it
  cannot starve.  A reader that discovers it must write — e.g. a
  delete-by-query that first streams its victims — can :meth:`~RWLock.
  upgrade` to exclusive access without releasing the read lock, so no
  other writer can slip between what it read and what it writes.

* :class:`EngineSession` — one caller's handle on a shared engine.  Reads
  run as **MVCC snapshot turns**: the session pins the engine's current
  epoch (:meth:`~repro.engine.core.Engine.read_turn`), shares only the
  target index's structural latch — never an engine-wide lock — drains its
  result, and residual-filters it to the pinned epoch's visibility.  A
  writer committing on *another* index therefore never delays the read at
  all, and a writer on the *same* index delays it only for the structural
  change, not for the WAL fsync.  Writes go straight through the engine's
  commit kernel (:meth:`~repro.engine.core.Engine._commit`): logged,
  group-fsynced, published in epoch order.  Per-request I/O is attributed
  through the backend's thread-local sink mechanism
  (:meth:`repro.io.counters.IOStats.attributed`) — concurrent sessions on
  one disk each measure exactly their own block accesses, which keeps the
  paper's per-query bounds checkable per request — and folded into the
  session's cumulative :attr:`~EngineSession.stats`.

Consistency model (what the server documents to clients): readers never
observe a half-applied write; a query's answer is the brute-force oracle
of the record set at the pinned epoch — a prefix of the committed write
history (commits publish in order).  A session that writes sees its own
write in every later read (the ack happens after publication).  There are
no multi-request transactions — each request is one atomic turn.

:class:`RWLock` remains the latch primitive the engine instantiates per
index name; its upgrade path still serves engine-wide exclusive turns.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from repro.analysis import lockdep
from repro.io.counters import IOStats
from repro.obs import tracer as obs_tracer
from repro.obs.slowlog import SLOWLOG

#: process-wide session id source (sessions of all engines share it)
_SESSION_IDS = itertools.count(1)

#: names for anonymous RWLocks (tests construct them bare)
_RWLOCK_IDS = itertools.count(1)


class WriteIntentError(RuntimeError):
    """A second reader asked to upgrade while an upgrade is pending.

    Two readers upgrading at once would deadlock (each waits for the other
    to release its read lock), so only one upgrade intent may be pending
    per lock; later contenders get this error and should fall back to
    release-reacquire-revalidate (what :meth:`EngineSession.delete_matching`
    does).
    """


class RWLock:
    """A readers-writer lock with writer preference and write-intent upgrade.

    * Any number of readers share the lock while no writer is active *and*
      no writer is waiting — a queued writer blocks new readers, so write
      turns come around even under a heavy read load.
    * :meth:`upgrade` turns a held read lock into the write lock without a
      release window: the upgrader declares intent (blocking new readers),
      waits for the *other* readers to drain, writes, and returns to being
      a reader when the block exits.  Only one intent may be pending at a
      time; a concurrent second upgrader raises :class:`WriteIntentError`
      immediately rather than deadlocking.

    Non-reentrant by design: a thread holding the write lock must not
    re-acquire either side, and a reader must not call :meth:`read` again.

    When a :mod:`repro.analysis.lockdep` witness is enabled, every grant
    and release is reported under this lock's ``name`` with its declared
    ``rank`` — the engine names its per-index latches ``latch:<index>``
    (rank *latch*, ``no_block=True``: holding one across a durability
    barrier is a violation) and its legacy session lock
    ``engine.session_rwlock`` (rank *mutex*).  The disabled path costs one
    module-global load per acquisition.
    """

    def __init__(
        self,
        name: Optional[str] = None,
        *,
        rank: int = lockdep.RANK_LATCH,
        no_block: bool = False,
    ) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        self._upgrader: Optional[int] = None
        self.name = name if name is not None else f"rwlock-{next(_RWLOCK_IDS)}"
        self.rank = rank
        self.no_block = no_block

    def _witness_acquired(self) -> None:
        witness = lockdep.ACTIVE
        if witness is not None:
            witness.acquired(self.name, self.rank, no_block=self.no_block)

    def _witness_released(self) -> None:
        witness = lockdep.ACTIVE
        if witness is not None:
            witness.released(self.name)

    # -- the reader side ------------------------------------------------- #
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1
        self._witness_acquired()

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers <= (1 if self._upgrader is not None else 0):
                self._cond.notify_all()
        self._witness_released()

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- the writer side ------------------------------------------------- #
    def acquire_write(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._waiting_writers -= 1
        self._witness_acquired()

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()
        self._witness_released()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- upgrade --------------------------------------------------------- #
    @contextmanager
    def upgrade(self) -> Iterator[None]:
        """Exclusive access for a thread currently holding a read lock.

        ``with lock.read(): ... with lock.upgrade(): ...`` — between what
        the caller read and what it writes, no other writer can intervene.
        On exit the thread is a plain reader again.  Raises
        :class:`WriteIntentError` when another upgrade is already pending.
        """
        me = threading.get_ident()
        with self._cond:
            if self._upgrader is not None:
                raise WriteIntentError(
                    "another session already holds the write-intent slot; "
                    "release the read lock and retry as a plain writer"
                )
            self._upgrader = me
            # count as a waiting writer so new readers queue behind us
            self._waiting_writers += 1
            try:
                while self._writer or self._readers > 1:
                    self._cond.wait()
                self._readers -= 1
                self._writer = True
            except BaseException:
                self._upgrader = None
                self._cond.notify_all()
                raise
            finally:
                self._waiting_writers -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._readers += 1
                self._upgrader = None
                self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RWLock(readers={self._readers}, writer={self._writer}, "
            f"waiting={self._waiting_writers})"
        )


@dataclass
class SessionResult:
    """One request's drained answer plus its private accounting.

    The serving layer materialises results inside the lock's critical
    section (laziness ends at the session boundary — a lazy stream held
    across requests would read blocks mid-write-turn), so what crosses the
    boundary is plain data: the records, the I/Os this request performed
    (attributed per-thread, unpolluted by concurrent sessions), and the
    paper's predicted bound at the observed output size.
    """

    records: List[Any]
    stats: IOStats
    bound: Optional[float] = None
    plan: Optional[Any] = None
    from_cache: Optional[bool] = None

    @property
    def ios(self) -> int:
        return self.stats.total

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class EngineSession:
    """One caller's thread-safe handle on a shared :class:`Engine`.

    Reads (:meth:`query`, :meth:`run`, :meth:`explain`) are snapshot
    turns: pin the current MVCC epoch, share the one index's latch, drain,
    filter to the pinned epoch.  The write surface (:meth:`insert`,
    :meth:`delete`, :meth:`bulk_load`, :meth:`create_collection`,
    :meth:`drop_index`) delegates to the engine's commit kernel — each
    call is one committed, WAL-durable write turn, acknowledged only after
    its log record is fsynced and its epoch published.
    :meth:`delete_matching` holds the engine's write mutex across the
    victim query and the per-victim commits, so no other writer can run
    between what it read and what it deletes.

    Each request's I/Os land in a fresh sink (returned on the
    :class:`SessionResult`) and accumulate in :attr:`stats`; the paper's
    bounds therefore stay checkable per request even while other sessions
    drain queries on the same backend.  A session object itself is *not*
    shared between threads — one session per client connection.
    """

    def __init__(self, engine: Any, lock: Optional[RWLock] = None) -> None:
        self.engine = engine
        #: kept for compatibility (pre-MVCC sessions serialized on one
        #: engine-wide RWLock); requests no longer take it
        self.lock = lock if lock is not None else RWLock()
        self.session_id = next(_SESSION_IDS)
        #: cumulative I/O attributed to this session's requests
        self.stats = IOStats()
        #: requests served (reads + writes), for the stats surface
        self.requests = 0

    # ------------------------------------------------------------------ #
    # lock-scoped execution
    # ------------------------------------------------------------------ #
    @contextmanager
    def _attributed(self) -> Iterator[IOStats]:
        sink = IOStats()
        with self.engine.io_stats().attributed(sink):
            yield sink
        self.stats.merge(sink)
        self.requests += 1

    def _read(self, name: str, fn: Callable[[], List[Any]]) -> SessionResult:
        with self._root_span(op="read", index=name) as root:
            with self.engine.read_turn(name) as epoch:
                with self._attributed() as sink:
                    records = self.engine.visible_records(name, fn(), epoch)
        return self._finish_request(root, SessionResult(records, sink))

    def _write(self, fn: Callable[[], Any], *, op: str = "write") -> SessionResult:
        # no session-side lock: the engine's commit kernel serializes,
        # logs, fsyncs and publishes the turn before returning
        with self._root_span(op=op) as root:
            with self._attributed() as sink:
                out = fn()
        records = out if isinstance(out, list) else ([] if out is None else [out])
        return self._finish_request(root, SessionResult(records, sink))

    def _root_span(self, **attrs: Any) -> Any:
        """The request's root span (a shared no-op while tracing is off)."""
        return obs_tracer.span(
            "session.request", stats=self.engine.io_stats(),
            session=self.session_id, **attrs,
        )

    def _finish_request(self, root: Any, result: SessionResult) -> SessionResult:
        """Annotate a finished request's root span; feed the slow-query log.

        The root's ``residual`` is the paper check in trace form: actual
        attributed I/Os minus the predicted bound (``None`` for writes and
        unbounded plans) — the same quantity the BOUND_SLACK tests gate.
        """
        if isinstance(root, obs_tracer.Span):
            residual = (
                result.stats.total - result.bound
                if result.bound is not None else None
            )
            root.annotate(
                ios=result.stats.total, bound=result.bound, residual=residual
            )
            if SLOWLOG.enabled():
                plan = result.plan
                SLOWLOG.consider(
                    root, plan=None if plan is None else str(plan)
                )
        return result

    # ------------------------------------------------------------------ #
    # the read surface (snapshot turns)
    # ------------------------------------------------------------------ #
    def query(self, name: str, q: Any) -> SessionResult:
        """Answer ``q`` on the named index: one pinned-epoch snapshot turn.

        The lazy result is drained while sharing only this index's latch,
        then residual-filtered to the pinned epoch — the answer is the
        oracle of that epoch's record set even while writers commit
        concurrently on this or any other index.
        """
        with self._root_span(op="query", index=name) as root:
            with self.engine.read_turn(name) as epoch:
                with self._attributed() as sink:
                    result = self.engine.query(name, q)
                    with obs_tracer.span(
                        "plan.execute", stats=self.engine.io_stats(), index=name
                    ):
                        records = self.engine.visible_records(
                            name, result.all(), epoch
                        )
                    bound = result.bound
                    plan = result.plan
        return self._finish_request(
            root, SessionResult(records, sink, bound=bound, plan=plan)
        )

    def run(self, prepared: Any, **params: Any) -> SessionResult:
        """Execute a :class:`~repro.engine.prepared.PreparedQuery` handle.

        Handles are leased per session/connection and must not be shared
        across threads (their cached-template bookkeeping is unguarded);
        the planner they delegate to is internally locked, so re-planning
        after an invalidation is safe under the shared latch.
        """
        with self._root_span(op="run", index=prepared.name) as root:
            with self.engine.read_turn(prepared.name) as epoch:
                with self._attributed() as sink:
                    result = prepared.run(**params)
                    with obs_tracer.span(
                        "plan.execute", stats=self.engine.io_stats(),
                        index=prepared.name,
                    ):
                        records = self.engine.visible_records(
                            prepared.name, result.all(), epoch
                        )
                    bound = result.bound
                    plan = result.plan
        return self._finish_request(
            root,
            SessionResult(
                records, sink, bound=bound, plan=plan,
                from_cache=prepared.last_from_cache,
            ),
        )

    def prepare(self, name: str, q: Any) -> Any:
        """Plan once under a shared read turn; returns the prepared handle."""
        with self.engine.read_turn(name):
            return self.engine.prepare(name, q)

    def explain(self, name: str, q: Any) -> Any:
        """The plan :meth:`query` would run (pure, but planner-locked)."""
        with self.engine.read_turn(name):
            return self.engine.explain(name, q)

    # ------------------------------------------------------------------ #
    # the write surface (exclusive turns)
    # ------------------------------------------------------------------ #
    def insert(self, name: str, *item: Any) -> SessionResult:
        return self._write(lambda: self.engine.insert(name, *item), op="insert")

    def delete(self, name: str, *item: Any) -> SessionResult:
        return self._write(
            lambda: [bool(self.engine.delete(name, *item))], op="delete"
        )

    def bulk_load(self, name: str, items: List[Any]) -> SessionResult:
        return self._write(
            lambda: [self.engine.bulk_load(name, items)], op="bulk_load"
        )

    def create_collection(self, name: str, records: Any = (), **kw: Any) -> SessionResult:
        def do() -> None:
            self.engine.create_collection(name, list(records), **kw)

        return self._write(do, op="create")

    def create_interval_index(self, name: str, records: Any = (), **kw: Any) -> SessionResult:
        def do() -> None:
            self.engine.create_interval_index(name, list(records), **kw)

        return self._write(do, op="create")

    def drop_index(self, name: str) -> SessionResult:
        return self._write(lambda: self.engine.drop_index(name), op="drop")

    def delete_matching(self, name: str, q: Any, limit: Optional[int] = None) -> SessionResult:
        """Delete every record matching ``q``: one atomic multi-commit turn.

        Holds the engine's (reentrant) write mutex across the victim query
        and the per-victim delete commits, so no other writer can run
        between what was read and what is deleted — the victims cannot go
        stale.  Concurrent readers keep streaming their pinned snapshots
        throughout; each delete publishes as its own epoch.  (The lock
        upgrade this method used pre-MVCC survives on :class:`RWLock` for
        the engine's per-index latches.)
        """
        with self._root_span(op="delete_matching", index=name) as root:
            with self._attributed() as sink:
                with self.engine.write_turn():
                    victims = self.engine.query(name, q).all()
                    if limit is not None:
                        victims = victims[:limit]
                    removed = [
                        v for v in victims if self.engine.delete(name, v)
                    ]
        return self._finish_request(root, SessionResult(removed, sink))

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def io_snapshot(self) -> IOStats:
        """This session's cumulative attributed I/O (a consistent copy)."""
        return self.stats.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineSession(id={self.session_id}, requests={self.requests}, "
            f"ios={self.stats.total})"
        )
