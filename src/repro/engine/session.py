"""The concurrency kernel: ``RWLock`` + per-caller ``EngineSession`` handles.

An :class:`~repro.engine.core.Engine` is single-caller by construction —
its indexes mutate shared block structures, planners mutate their plan
caches, and the paper's bounds are stated per operation.  The serving
subsystem multiplexes it with two small pieces:

* :class:`RWLock` — a readers-writer lock with **writer preference** and a
  **write-intent upgrade**.  Many readers hold it together (queries drain
  in parallel); writers (inserts, deletes, bulk loads, drops, rebuilds)
  take exclusive turns, and a waiting writer blocks *new* readers so it
  cannot starve.  A reader that discovers it must write — e.g. a
  delete-by-query that first streams its victims — can :meth:`~RWLock.
  upgrade` to exclusive access without releasing the read lock, so no
  other writer can slip between what it read and what it writes.

* :class:`EngineSession` — one caller's handle on a shared engine.  Every
  request runs under the appropriate lock side and drains its result
  *inside* the critical section, so a reader sees one consistent snapshot:
  the engine state between two write turns.  Per-request I/O is attributed
  through the backend's thread-local sink mechanism
  (:meth:`repro.io.counters.IOStats.attributed`) — concurrent sessions on
  one disk each measure exactly their own block accesses, which keeps the
  paper's per-query bounds checkable per request — and folded into the
  session's cumulative :attr:`~EngineSession.stats`.

Consistency model (what the server documents to clients): readers never
observe a half-applied write; a query's answer is the brute-force oracle
of the record set as it stood at some instant between write turns.  There
are no multi-request transactions — each request is one atomic turn.
"""

from __future__ import annotations

import itertools
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from repro.io.counters import IOStats

#: process-wide session id source (sessions of all engines share it)
_SESSION_IDS = itertools.count(1)


class WriteIntentError(RuntimeError):
    """A second reader asked to upgrade while an upgrade is pending.

    Two readers upgrading at once would deadlock (each waits for the other
    to release its read lock), so only one upgrade intent may be pending
    per lock; later contenders get this error and should fall back to
    release-reacquire-revalidate (what :meth:`EngineSession.delete_matching`
    does).
    """


class RWLock:
    """A readers-writer lock with writer preference and write-intent upgrade.

    * Any number of readers share the lock while no writer is active *and*
      no writer is waiting — a queued writer blocks new readers, so write
      turns come around even under a heavy read load.
    * :meth:`upgrade` turns a held read lock into the write lock without a
      release window: the upgrader declares intent (blocking new readers),
      waits for the *other* readers to drain, writes, and returns to being
      a reader when the block exits.  Only one intent may be pending at a
      time; a concurrent second upgrader raises :class:`WriteIntentError`
      immediately rather than deadlocking.

    Non-reentrant by design: a thread holding the write lock must not
    re-acquire either side, and a reader must not call :meth:`read` again.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._waiting_writers = 0
        self._upgrader: Optional[int] = None

    # -- the reader side ------------------------------------------------- #
    def acquire_read(self) -> None:
        with self._cond:
            while self._writer or self._waiting_writers:
                self._cond.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers <= (1 if self._upgrader is not None else 0):
                self._cond.notify_all()

    @contextmanager
    def read(self) -> Iterator[None]:
        """``with lock.read(): ...`` — shared access."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    # -- the writer side ------------------------------------------------- #
    def acquire_write(self) -> None:
        with self._cond:
            self._waiting_writers += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._waiting_writers -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    @contextmanager
    def write(self) -> Iterator[None]:
        """``with lock.write(): ...`` — exclusive access."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()

    # -- upgrade --------------------------------------------------------- #
    @contextmanager
    def upgrade(self) -> Iterator[None]:
        """Exclusive access for a thread currently holding a read lock.

        ``with lock.read(): ... with lock.upgrade(): ...`` — between what
        the caller read and what it writes, no other writer can intervene.
        On exit the thread is a plain reader again.  Raises
        :class:`WriteIntentError` when another upgrade is already pending.
        """
        me = threading.get_ident()
        with self._cond:
            if self._upgrader is not None:
                raise WriteIntentError(
                    "another session already holds the write-intent slot; "
                    "release the read lock and retry as a plain writer"
                )
            self._upgrader = me
            # count as a waiting writer so new readers queue behind us
            self._waiting_writers += 1
            try:
                while self._writer or self._readers > 1:
                    self._cond.wait()
                self._readers -= 1
                self._writer = True
            except BaseException:
                self._upgrader = None
                self._cond.notify_all()
                raise
            finally:
                self._waiting_writers -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._readers += 1
                self._upgrader = None
                self._cond.notify_all()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RWLock(readers={self._readers}, writer={self._writer}, "
            f"waiting={self._waiting_writers})"
        )


@dataclass
class SessionResult:
    """One request's drained answer plus its private accounting.

    The serving layer materialises results inside the lock's critical
    section (laziness ends at the session boundary — a lazy stream held
    across requests would read blocks mid-write-turn), so what crosses the
    boundary is plain data: the records, the I/Os this request performed
    (attributed per-thread, unpolluted by concurrent sessions), and the
    paper's predicted bound at the observed output size.
    """

    records: List[Any]
    stats: IOStats
    bound: Optional[float] = None
    plan: Optional[Any] = None
    from_cache: Optional[bool] = None

    @property
    def ios(self) -> int:
        return self.stats.total

    def __iter__(self) -> Iterator[Any]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)


class EngineSession:
    """One caller's thread-safe handle on a shared :class:`Engine`.

    Sessions of one engine share its :class:`RWLock` (``engine.session()``
    hands them out): :meth:`query`, :meth:`run` and :meth:`explain` take
    the read side, the write surface (:meth:`insert`, :meth:`delete`,
    :meth:`bulk_load`, :meth:`create_collection`, :meth:`drop_index`)
    takes the write side, and :meth:`delete_matching` demonstrates the
    write-intent upgrade: victims are streamed under the read lock, then
    deleted under the upgraded lock with no writer window in between.

    Each request's I/Os land in a fresh sink (returned on the
    :class:`SessionResult`) and accumulate in :attr:`stats`; the paper's
    bounds therefore stay checkable per request even while other sessions
    drain queries on the same backend.  A session object itself is *not*
    shared between threads — one session per client connection.
    """

    def __init__(self, engine: Any, lock: RWLock) -> None:
        self.engine = engine
        self.lock = lock
        self.session_id = next(_SESSION_IDS)
        #: cumulative I/O attributed to this session's requests
        self.stats = IOStats()
        #: requests served (reads + writes), for the stats surface
        self.requests = 0

    # ------------------------------------------------------------------ #
    # lock-scoped execution
    # ------------------------------------------------------------------ #
    @contextmanager
    def _attributed(self) -> Iterator[IOStats]:
        sink = IOStats()
        with self.engine.io_stats().attributed(sink):
            yield sink
        self.stats.merge(sink)
        self.requests += 1

    def _read(self, fn: Callable[[], List[Any]]) -> SessionResult:
        with self.lock.read():
            with self._attributed() as sink:
                records = fn()
        return SessionResult(records, sink)

    def _write(self, fn: Callable[[], Any]) -> SessionResult:
        with self.lock.write():
            with self._attributed() as sink:
                out = fn()
        records = out if isinstance(out, list) else ([] if out is None else [out])
        return SessionResult(records, sink)

    # ------------------------------------------------------------------ #
    # the read surface
    # ------------------------------------------------------------------ #
    def query(self, name: str, q: Any) -> SessionResult:
        """Answer ``q`` on the named index: one consistent read turn.

        The lazy result is drained inside the read lock — concurrent
        writers wait, so the answer is the oracle of a single engine state.
        """
        with self.lock.read():
            with self._attributed() as sink:
                result = self.engine.query(name, q)
                records = result.all()
                bound = result.bound
                plan = result.plan
        return SessionResult(records, sink, bound=bound, plan=plan)

    def run(self, prepared: Any, **params: Any) -> SessionResult:
        """Execute a :class:`~repro.engine.prepared.PreparedQuery` handle.

        Handles are leased per session/connection and must not be shared
        across threads (their cached-template bookkeeping is unguarded);
        the planner they delegate to is internally locked, so re-planning
        after an invalidation is safe under the shared read lock.
        """
        with self.lock.read():
            with self._attributed() as sink:
                result = prepared.run(**params)
                records = result.all()
                bound = result.bound
                plan = result.plan
        return SessionResult(
            records, sink, bound=bound, plan=plan,
            from_cache=prepared.last_from_cache,
        )

    def prepare(self, name: str, q: Any) -> Any:
        """Plan once under the read lock; returns the prepared handle."""
        with self.lock.read():
            return self.engine.prepare(name, q)

    def explain(self, name: str, q: Any) -> Any:
        """The plan :meth:`query` would run (pure, but planner-locked)."""
        with self.lock.read():
            return self.engine.explain(name, q)

    # ------------------------------------------------------------------ #
    # the write surface (exclusive turns)
    # ------------------------------------------------------------------ #
    def insert(self, name: str, *item: Any) -> SessionResult:
        return self._write(lambda: self.engine.insert(name, *item))

    def delete(self, name: str, *item: Any) -> SessionResult:
        return self._write(lambda: [bool(self.engine.delete(name, *item))])

    def bulk_load(self, name: str, items: List[Any]) -> SessionResult:
        return self._write(lambda: [self.engine.bulk_load(name, items)])

    def create_collection(self, name: str, records: Any = (), **kw: Any) -> SessionResult:
        def do() -> None:
            self.engine.create_collection(name, list(records), **kw)

        return self._write(do)

    def create_interval_index(self, name: str, records: Any = (), **kw: Any) -> SessionResult:
        def do() -> None:
            self.engine.create_interval_index(name, list(records), **kw)

        return self._write(do)

    def drop_index(self, name: str) -> SessionResult:
        return self._write(lambda: self.engine.drop_index(name))

    def delete_matching(self, name: str, q: Any, limit: Optional[int] = None) -> SessionResult:
        """Delete every record matching ``q``: read, upgrade, write — atomically.

        The victim set is streamed under the read lock, then the lock is
        *upgraded* — no other writer can run between the read and the
        deletes, so the victims cannot go stale.  If another session
        already holds the write-intent slot (:class:`WriteIntentError`),
        fall back to a plain exclusive turn and re-run the victim query
        inside it: same atomicity, one extra query.
        """
        def victims_of(engine_state_query: Any) -> List[Any]:
            victims = self.engine.query(name, engine_state_query).all()
            return victims if limit is None else victims[:limit]

        with self._attributed() as sink:
            try:
                with self.lock.read():
                    victims = victims_of(q)
                    with self.lock.upgrade():
                        removed = [v for v in victims if self.engine.delete(name, v)]
            except WriteIntentError:
                with self.lock.write():
                    victims = victims_of(q)
                    removed = [v for v in victims if self.engine.delete(name, v)]
        return SessionResult(removed, sink)

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def io_snapshot(self) -> IOStats:
        """This session's cumulative attributed I/O (a consistent copy)."""
        return self.stats.snapshot()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"EngineSession(id={self.session_id}, requests={self.requests}, "
            f"ios={self.stats.total})"
        )
