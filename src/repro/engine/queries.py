"""Query descriptors understood by the uniform ``Index.query`` method.

Each descriptor is a small frozen dataclass naming one query shape from the
paper, carrying a brute-force ``matches`` predicate as the correctness
oracle.  Geometric shapes (:class:`DiagonalCornerQuery`,
:class:`ThreeSidedQuery`, ...) are re-exported from
:mod:`repro.metablock.geometry` so one import site serves the whole engine.

===================  ========================================================
descriptor           answered by
===================  ========================================================
:class:`Stab`        interval indexes (stabbing), B+-trees (exact key),
                     constraint indexes (point restriction)
:class:`Range`       interval indexes (intersection), B+-trees (key range,
                     with per-bound inclusivity), constraint indexes
:class:`ClassRange`  class indexes (attribute range over a full extent)
``ThreeSidedQuery``  external PSTs and 3-sided metablock trees
===================  ========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.metablock.geometry import (  # noqa: F401  (re-exported)
    DiagonalCornerQuery,
    ThreeSidedQuery,
    TwoSidedQuery,
)


@dataclass(frozen=True)
class Stab:
    """All records containing / keyed exactly at ``x``."""

    x: Any

    def matches_interval(self, low: Any, high: Any) -> bool:
        return low <= self.x <= high


@dataclass(frozen=True)
class Range:
    """All records overlapping / keyed within ``[low, high]``.

    ``min_inclusive`` / ``max_inclusive`` control whether the endpoints
    belong to the range (B+-tree key semantics; interval intersection always
    treats the query as a closed interval).
    """

    low: Any
    high: Any
    min_inclusive: bool = True
    max_inclusive: bool = True

    def matches_key(self, key: Any) -> bool:
        if key < self.low or key > self.high:
            return False
        if key == self.low and not self.min_inclusive:
            return False
        if key == self.high and not self.max_inclusive:
            return False
        return True


@dataclass(frozen=True)
class ClassRange:
    """Attribute range ``[low, high]`` over the full extent of a class."""

    class_name: str
    low: Any
    high: Any
