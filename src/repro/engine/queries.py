"""The composable query algebra understood by ``Index.query`` and the planner.

Leaves are small frozen dataclasses naming one query shape from the paper.
Every node — leaf, combinator or modifier — carries a brute-force
``matches(record)`` predicate as the correctness oracle, so any composed
query can be checked against a plain list of records.  Geometric shapes
(:class:`DiagonalCornerQuery`, :class:`ThreeSidedQuery`, ...) are
re-exported from :mod:`repro.metablock.geometry` and participate in the
same algebra.

Composing queries::

    q = Stab(42.0) & EndpointRange("low", 10, 20)     # conjunction
    q = Stab(3.0) | Stab(9.0)                         # union
    q = Range(0, 50) & ~Stab(25.0)                    # negation (residual)
    q = Range(0, 50).order_by("low").limit(10)        # modifiers

===========================  ================================================
descriptor                   answered by
===========================  ================================================
:class:`Stab`                interval indexes (stabbing), B+-trees (exact
                             key), constraint indexes (point restriction)
:class:`Range`               interval indexes (intersection), B+-trees (key
                             range, with per-bound inclusivity), constraint
                             indexes
:class:`EndpointRange`       endpoint B+-trees inside a
                             :class:`~repro.engine.collection.Collection`
:class:`ClassRange`          class indexes (attribute range over a full
                             extent)
``ThreeSidedQuery``          external PSTs and 3-sided metablock trees
``DiagonalCornerQuery``      metablock trees
:class:`And` / :class:`Or`   the :class:`~repro.engine.planner.QueryPlanner`
/ :class:`Not`               (index pushdown + residual post-filter / union
                             with dedup / scan fallback)
:class:`Limit` /             applied by the planner on top of any plan,
:class:`OrderBy`             preserving laziness where possible
===========================  ================================================

``matches(record)`` interprets the record by shape: objects with
``low``/``high`` attributes are treated as closed intervals,
:class:`~repro.metablock.geometry.PlanarPoint`-like objects (``x``/``y``)
as the interval ``[x, y]`` of the stabbing reduction, ``(key, value)``
pairs by their key, and anything else as a bare key.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, is_dataclass, replace
from typing import Any, Callable, Mapping, Optional, Set, Tuple, Union

from repro.algebra import AlgebraicQuery
from repro.metablock.geometry import (  # noqa: F401  (re-exported)
    DiagonalCornerQuery,
    ThreeSidedQuery,
    TwoSidedQuery,
)


def _as_interval(record: Any) -> Optional[Tuple[Any, Any]]:
    """The closed interval a record denotes, or ``None`` for key records."""
    low = getattr(record, "low", None)
    high = getattr(record, "high", None)
    if low is not None and high is not None:
        return low, high
    x = getattr(record, "x", None)
    y = getattr(record, "y", None)
    if x is not None and y is not None:
        return x, y
    return None


def _as_key(record: Any) -> Any:
    """The scalar key a record denotes (``(key, value)`` pairs use the key)."""
    if isinstance(record, tuple) and len(record) == 2:
        return record[0]
    return record


# --------------------------------------------------------------------------- #
# parameters (prepared queries)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Param:
    """A named placeholder for a scalar operand in a prepared query.

    Use it wherever a literal would go — ``Stab(Param("x"))``,
    ``Range(Param("lo"), Param("hi"))`` — then bind concrete values with
    :func:`bind_params` (what ``PreparedQuery.run(**params)`` does).  A
    parameter never enters a query's :meth:`~repro.algebra.AlgebraicQuery.
    signature`, so the parameterised query shares its cached plan with
    every concrete instantiation.
    """

    name: str

    def to_dict(self) -> dict:
        """Wire form (placeholders survive serialization unbound)."""
        return {"node": "Param", "name": self.name}


def _walk_bind(q: Any, params: Mapping[str, Any], missing: Set[str], used: Set[str]) -> Any:
    """Substitute :class:`Param` placeholders throughout a query tree.

    Returns ``q`` itself (not a copy) when nothing inside it changed, so
    binding an already-concrete query is allocation-free.
    """
    if isinstance(q, Param):
        if q.name in params:
            used.add(q.name)
            return params[q.name]
        missing.add(q.name)
        return q
    if isinstance(q, (And, Or)):
        parts = tuple(_walk_bind(p, params, missing, used) for p in q.parts)
        return q if parts == q.parts else type(q)(*parts)
    if is_dataclass(q) and isinstance(q, AlgebraicQuery):
        changes = {}
        for f in fields(q):
            value = getattr(q, f.name)
            if isinstance(value, (Param, AlgebraicQuery)):
                bound = _walk_bind(value, params, missing, used)
                if bound is not value:
                    changes[f.name] = bound
        return replace(q, **changes) if changes else q
    return q


def bind_params(q: Any, params: Mapping[str, Any], *, partial: bool = False) -> Any:
    """Return ``q`` with every :class:`Param` replaced by its bound value.

    Strict by default: a :class:`Param` with no binding raises
    :class:`KeyError`, as does a binding no parameter uses (catching typo'd
    keyword names).  ``partial=True`` relaxes both — unknown parameters stay
    in place and extras are ignored — which is what plan rebinding uses when
    a sub-expression only mentions a subset of the query's parameters.
    """
    missing: Set[str] = set()
    used: Set[str] = set()
    bound = _walk_bind(q, params, missing, used)
    if not partial:
        if missing:
            raise KeyError(f"unbound query parameters: {sorted(missing)}")
        extras = set(params) - used
        if extras:
            raise KeyError(f"unknown query parameters: {sorted(extras)}")
    return bound


def unbound_params(q: Any) -> Set[str]:
    """The names of every :class:`Param` remaining in ``q``."""
    missing: Set[str] = set()
    _walk_bind(q, {}, missing, set())
    return missing


# --------------------------------------------------------------------------- #
# leaves
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Stab(AlgebraicQuery):
    """All records containing / keyed exactly at ``x``."""

    x: Any

    def matches_interval(self, low: Any, high: Any) -> bool:
        return low <= self.x <= high

    def matches(self, record: Any) -> bool:
        bounds = _as_interval(record)
        if bounds is not None:
            return self.matches_interval(*bounds)
        return _as_key(record) == self.x


@dataclass(frozen=True)
class Range(AlgebraicQuery):
    """All records overlapping / keyed within ``[low, high]``.

    ``min_inclusive`` / ``max_inclusive`` control whether the endpoints
    belong to the range (B+-tree key semantics; interval intersection always
    treats the query as a closed interval).
    """

    low: Any
    high: Any
    min_inclusive: bool = True
    max_inclusive: bool = True

    def matches_key(self, key: Any) -> bool:
        if key < self.low or key > self.high:
            return False
        if key == self.low and not self.min_inclusive:
            return False
        if key == self.high and not self.max_inclusive:
            return False
        return True

    def matches(self, record: Any) -> bool:
        bounds = _as_interval(record)
        if bounds is not None:
            low, high = bounds
            return low <= self.high and self.low <= high
        return self.matches_key(_as_key(record))

    def signature(self) -> tuple:
        # endpoints are parameters; inclusivity is structural (it survives
        # into the translated B+-tree query, so keep shapes distinct)
        return ("Range", self.min_inclusive, self.max_inclusive)


@dataclass(frozen=True)
class EndpointRange(AlgebraicQuery):
    """Interval records whose ``side`` endpoint lies within ``[low, high]``.

    ``side`` is ``"low"`` or ``"high"``.  This is *not* the same as interval
    intersection: ``EndpointRange("low", a, b)`` asks for intervals that
    *start* inside ``[a, b]``.  Inside a
    :class:`~repro.engine.collection.Collection` it is served optimally by
    the B+-tree over that endpoint.
    """

    side: str
    low: Any
    high: Any
    min_inclusive: bool = True
    max_inclusive: bool = True

    def __post_init__(self) -> None:
        if self.side not in ("low", "high"):
            raise ValueError(f"side must be 'low' or 'high', not {self.side!r}")

    def endpoint(self, record: Any) -> Any:
        bounds = _as_interval(record)
        if bounds is None:
            return _as_key(record)
        return bounds[0] if self.side == "low" else bounds[1]

    def matches(self, record: Any) -> bool:
        v = self.endpoint(record)
        if v < self.low or v > self.high:
            return False
        if v == self.low and not self.min_inclusive:
            return False
        if v == self.high and not self.max_inclusive:
            return False
        return True

    def signature(self) -> tuple:
        # ``side`` picks which endpoint B+-tree can serve the query, so it
        # is part of the shape, not a parameter
        return ("EndpointRange", self.side, self.min_inclusive, self.max_inclusive)


@dataclass(frozen=True)
class ClassRange(AlgebraicQuery):
    """Attribute range ``[low, high]`` over the full extent of a class.

    The ``hierarchy`` field (optional, excluded from equality) lets the
    ``matches`` oracle test full-extent membership — without it only exact
    class membership is checked.  :meth:`repro.core.ClassIndexer.bind`
    attaches the indexer's hierarchy to residual predicates automatically.
    """

    class_name: str
    low: Any
    high: Any
    hierarchy: Any = field(default=None, compare=False, repr=False)

    def matches(self, record: Any) -> bool:
        key = getattr(record, "key", None)
        if key is None or key < self.low or key > self.high:
            return False
        cls = getattr(record, "class_name", None)
        if self.hierarchy is not None:
            return cls in self.hierarchy.descendants(self.class_name)
        return cls == self.class_name

    def signature(self) -> tuple:
        # the class names an extent (a different sub-structure per class in
        # some schemes); only the attribute endpoints are parameters
        return ("ClassRange", self.class_name)


# --------------------------------------------------------------------------- #
# combinators
# --------------------------------------------------------------------------- #
def _flatten(kind: type, parts: Tuple[Any, ...]) -> Tuple[Any, ...]:
    flat = []
    for p in parts:
        if isinstance(p, kind):
            flat.extend(p.parts)
        else:
            flat.append(p)
    return tuple(flat)


@dataclass(frozen=True, init=False)
class And(AlgebraicQuery):
    """Conjunction: records matching *every* part (nested ``And``s flatten)."""

    parts: Tuple[Any, ...]

    def __init__(self, *parts: Any) -> None:
        object.__setattr__(self, "parts", _flatten(And, parts))

    def matches(self, record: Any) -> bool:
        return all(p.matches(record) for p in self.parts)

    def signature(self) -> tuple:
        return ("And",) + tuple(p.signature() for p in self.parts)


@dataclass(frozen=True, init=False)
class Or(AlgebraicQuery):
    """Disjunction: records matching *any* part (nested ``Or``s flatten)."""

    parts: Tuple[Any, ...]

    def __init__(self, *parts: Any) -> None:
        object.__setattr__(self, "parts", _flatten(Or, parts))

    def matches(self, record: Any) -> bool:
        return any(p.matches(record) for p in self.parts)

    def signature(self) -> tuple:
        return ("Or",) + tuple(p.signature() for p in self.parts)


@dataclass(frozen=True)
class Not(AlgebraicQuery):
    """Complement: records *not* matching ``part``.

    Alone it forces a scan plan (only available on a
    :class:`~repro.engine.collection.Collection`); inside an :class:`And`
    it rides along as a free residual post-filter.
    """

    part: Any

    def matches(self, record: Any) -> bool:
        return not self.part.matches(record)

    def signature(self) -> tuple:
        return ("Not", self.part.signature())


# --------------------------------------------------------------------------- #
# modifiers
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Limit(AlgebraicQuery):
    """At most ``n`` records of ``part``'s answer (streaming; lazy)."""

    part: Any
    n: int

    def matches(self, record: Any) -> bool:
        # membership oracle of the underlying query; the cardinality cap is a
        # property of the stream, not of any single record
        return self.part.matches(record)

    def signature(self) -> tuple:
        # ``n`` is a parameter: the base plan is identical for any cap
        return ("Limit", self.part.signature())


@dataclass(frozen=True)
class OrderBy(AlgebraicQuery):
    """``part``'s answer sorted by ``key`` (attribute name or callable).

    Sorting materialises the stream; combined with :class:`Limit` on top the
    tail past the limit is never yielded, but the sort itself must see every
    record.  The sort is *stable* and runs **once** per executed result:
    records comparing equal under ``key`` keep the access path's emission
    order, and re-iterating an exhausted result replays the already-sorted
    cache instead of re-materialising the sort.
    """

    part: Any
    key: Optional[Union[str, Callable[[Any], Any]]] = None
    reverse: bool = False

    def matches(self, record: Any) -> bool:
        return self.part.matches(record)

    def signature(self) -> tuple:
        # the sort key only shapes the output order, never the access plan
        return ("OrderBy", self.part.signature())

    def key_fn(self) -> Callable[[Any], Any]:
        if self.key is None:
            return lambda record: record
        if callable(self.key):
            return self.key
        attr = self.key
        return lambda record: getattr(record, attr)


#: modifier node types the planner peels off the top of a query
MODIFIERS = (Limit, OrderBy)

#: node types that require planning (no single index answers them directly)
COMPOSED = (And, Or, Not, Limit, OrderBy)


# --------------------------------------------------------------------------- #
# the wire form (serving protocol)
# --------------------------------------------------------------------------- #
def _node_registry() -> Dict[str, type]:
    """Every deserializable node type, keyed by the ``node`` tag."""
    from repro.metablock.geometry import RangeQuery

    types = (
        Stab, Range, EndpointRange, ClassRange,
        And, Or, Not, Limit, OrderBy, Param,
        DiagonalCornerQuery, TwoSidedQuery, ThreeSidedQuery, RangeQuery,
    )
    return {t.__name__: t for t in types}


def _deserialize_operand(value: Any) -> Any:
    if isinstance(value, dict) and "node" in value:
        return query_from_dict(value)
    if isinstance(value, list):
        return [_deserialize_operand(v) for v in value]
    return value


def query_from_dict(data: Mapping[str, Any]) -> Any:
    """Rebuild a query node from its :meth:`~repro.algebra.AlgebraicQuery.
    to_dict` wire form.

    The inverse of ``to_dict`` for every node in the algebra — leaves,
    combinators, modifiers, :class:`Param` placeholders and the geometric
    shapes — preserving ``signature()`` and ``matches`` semantics across
    the round-trip.  Unknown or malformed nodes raise a descriptive
    :class:`ValueError` (what the server turns into a structured
    ``BadRequest`` response).
    """
    if not isinstance(data, Mapping) or "node" not in data:
        raise ValueError(f"not a serialized query node: {data!r}")
    registry = _node_registry()
    name = data["node"]
    cls = registry.get(name)
    if cls is None:
        raise ValueError(
            f"unknown query node {name!r}; know {sorted(registry)}"
        )
    operands = {k: _deserialize_operand(v) for k, v in data.items() if k != "node"}
    try:
        if cls in (And, Or):
            return cls(*operands.get("parts", ()))
        return cls(**operands)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"malformed {name} node {data!r}: {exc}") from exc
