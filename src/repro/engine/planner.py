"""The cost-aware query planner: *what* is the user's, *how* is ours.

Given a (possibly composed) query from the algebra of
:mod:`repro.engine.queries` and a set of physical indexes — either the
several indexes of a :class:`~repro.engine.collection.Collection` or a
single engine index — the :class:`QueryPlanner`

1. **enumerates** candidate ``(index, sub-query)`` plans: direct pushdown
   when an index ``supports`` the whole shape; for :class:`And`, one
   candidate per (index, conjunct) pair with the remaining conjuncts as a
   residual post-filter; for :class:`Or`, a union of recursively-planned
   parts with on-the-fly deduplication; and, where an accessor offers it,
   a full-scan fallback that serves *any* query through its ``matches``
   oracle;
2. **costs** each candidate with the paper's predicted bounds (the
   :meth:`~repro.engine.protocols.Index.cost` capability, compared at the
   output-independent ``t = 0`` point since output sizes are unknown before
   execution; ties go to the earlier-attached index — but see the plan
   cache below: a tie resolved once stays resolved for every query of the
   same shape until an invalidating write bumps the cache generation); and
3. **executes** the cheapest as one lazy
   :class:`~repro.engine.result.QueryResult` — residual predicates are
   applied as a streaming post-filter (records are already in memory, so
   the filter costs no I/O), :class:`OrderBy` sorts, :class:`Limit`
   truncates the stream lazily.

The chosen plan is a frozen :class:`Plan` dataclass.
``Engine.explain(name, q)`` returns it without executing anything;
executed results carry the identical plan as ``result.plan``, so callers
can verify the plan reported is the plan run.

The plan cache
--------------
Enumerating and costing candidates is pure in-memory work, but on hot
read paths it dominates wall-clock (the I/O-optimal access itself is
cheap).  The planner therefore keeps a size-bounded LRU cache mapping a
query's structural :meth:`~repro.algebra.AlgebraicQuery.signature` — its
shape with scalar parameters factored out — to the *strategy* it chose: a
:class:`PlanTemplate` recording which index served the query and which
conjunct was pushed down.  A later query with the same signature skips
enumeration entirely; the template is re-instantiated against the live
accessors (one ``translate`` + one ``cost`` call), so predicted bounds
always reflect current structure sizes.

Cached strategies are validated against a **generation key**: the
planner's own ``generation`` counter (bumped by :meth:`invalidate`, which
owners call on attach/detach/bulk loads) combined with each accessor
index's optional ``generation`` attribute (bumped by structures on
threshold-triggered global rebuilds).  Any mismatch drops the entry and
re-plans, so no plan is ever served from cache across an invalidating
write event.

Bound accounting
----------------
The executed result's ``bound`` evaluates the plan's predicted formula at
the number of records the *access path* produced (before residual
filtering, deduplication or ``Limit``), which is the quantity the paper's
theorems bound.  Union plans track one raw count per subplan and evaluate
each subplan's formula at its own output size — summing, rather than
charging every branch for the whole union's ``t/B`` term.  Observed
``ios`` may exceed the prediction only by constant factors —
:data:`BOUND_SLACK` is the documented slack the test suite holds every
planner-chosen plan to.

``OrderBy`` is applied with Python's stable sort, exactly once per
executed result: ties keep the access path's emission order, and replays
of an exhausted result serve the already-sorted cache instead of
re-materialising the sort.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.protocols import Bound
from repro.engine.queries import MODIFIERS, And, Limit, Or, OrderBy
from repro.engine.result import QueryResult
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.records import record_key  # canonical home; re-exported for callers

#: Documented slack: a planner-chosen plan's observed I/Os never exceed
#: ``BOUND_SLACK * bound(t) + BOUND_SLACK_PAGES`` where ``t`` is the access
#: path's raw output size.  The paper's bounds are asymptotic — the
#: reproduction claims the shape, with this constant-factor allowance; the
#: additive term absorbs the fixed cost of touching a handful of root /
#: control blocks on queries whose output is tiny.
BOUND_SLACK = 4.0
BOUND_SLACK_PAGES = 8.0

#: Plan-cache capacity (distinct query signatures kept per planner).  A
#: workload rarely has more than a handful of query shapes; the bound only
#: guards against signature-churning adversaries.
PLAN_CACHE_SIZE = 128


@dataclass
class Accessor:
    """One physical index as the planner sees it.

    ``translate`` maps a *logical* query node to the query the index
    actually answers (``None`` when this index cannot serve the node);
    ``run`` streams logical records for a translated query.  ``scan``
    (optional) streams every record — the fallback that serves arbitrary
    ``matches`` oracles at full-scan cost.  ``rewrite`` (optional) binds
    index context onto residual oracle nodes (see
    :meth:`repro.core.ClassIndexer.bind`).

    The write path rides on the same records: ``insert``/``delete`` apply
    one logical record to this physical index, ``bulk`` absorbs a batch in
    one reorganisation.  All three are optional — a read-only physical
    index simply leaves them unset, and the owning
    :class:`~repro.engine.collection.Collection` skips it on writes.
    """

    name: str
    index: Any
    translate: Callable[[Any], Optional[Any]]
    run: Callable[[Any], Iterable[Any]]
    scan: Optional[Callable[[], Iterable[Any]]] = None
    scan_bound: Optional[Callable[[], Bound]] = None
    rewrite: Optional[Callable[[Any], Any]] = None
    insert: Optional[Callable[[Any], None]] = None
    delete: Optional[Callable[[Any], Any]] = None
    bulk: Optional[Callable[[List[Any]], Any]] = None

    @classmethod
    def for_index(cls, name: str, index: Any) -> "Accessor":
        """The identity accessor a plain (single-index) engine entry gets."""
        return cls(
            name=name,
            index=index,
            translate=lambda q: q if index.supports(q) else None,
            run=lambda pq: index.query(pq),
            rewrite=getattr(index, "bind", None),
        )

    def supports(self, q: Any) -> bool:
        return self.translate(q) is not None

    def cost(self, q: Any) -> Bound:
        return self.index.cost(self.translate(q))


@dataclass(frozen=True)
class Plan:
    """The planner's chosen strategy for one query, as structured data.

    ``kind`` is ``"index"`` (pushdown + optional residual), ``"union"``
    (execute every subplan, deduplicate), or ``"scan"`` (full scan +
    oracle filter).  ``modifiers`` are the :class:`Limit`/:class:`OrderBy`
    nodes peeled off the top, outermost last, applied in order after the
    base plan's stream.
    """

    kind: str
    index: Optional[str]
    access: Any
    residual: Any
    bound: Bound
    modifiers: Tuple[Any, ...] = ()
    subplans: Tuple["Plan", ...] = ()

    def predicted(self, t: int = 0) -> float:
        """Predicted I/Os at access-path output size ``t``."""
        return self.bound(t)

    def describe(self, indent: str = "") -> str:
        """Human-readable rendering (what the CLI ``explain`` prints)."""
        lines: List[str] = []
        if self.kind == "union":
            lines.append(f"{indent}Union  [bound: {self.bound.formula}]")
            for sub in self.subplans:
                lines.append(sub.describe(indent + "  "))
        elif self.kind == "scan":
            lines.append(
                f"{indent}Scan({self.index})  filter: {self.residual!r}  "
                f"[bound: {self.bound.formula}]"
            )
        else:
            lines.append(
                f"{indent}Index({self.index})  access: {self.access!r}  "
                f"[bound: {self.bound.formula}]"
            )
            if self.residual is not None:
                lines.append(f"{indent}  residual filter: {self.residual!r}")
        for m in self.modifiers:
            if isinstance(m, Limit):
                lines.append(f"{indent}  then: limit {m.n}")
            else:
                lines.append(f"{indent}  then: order by {m.key!r}"
                             f"{' desc' if m.reverse else ''}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


@dataclass(frozen=True)
class PlanTemplate:
    """A cached planning *decision*, independent of parameter values.

    Where :class:`Plan` carries concrete access/residual query nodes and a
    snapshot bound, a template records only the strategy: which accessor
    serves the query (``index``), whether a specific conjunct of an
    :class:`And` was pushed down (``push`` is its position; ``None`` means
    the whole base query was translated), and the per-part templates of a
    union.  :meth:`QueryPlanner._instantiate` turns a template back into a
    full :class:`Plan` for any query of the matching signature — one
    ``translate`` + one ``cost`` call instead of a full enumeration.
    """

    kind: str
    index: Optional[str] = None
    push: Optional[int] = None
    subtemplates: Tuple["PlanTemplate", ...] = ()


class _TemplateMismatch(Exception):
    """A cached template no longer fits the query/accessors; re-plan."""


class QueryPlanner:
    """Enumerate, cost and execute plans over a set of accessors.

    Planning consults the signature-keyed plan cache first (see the module
    docstring); :meth:`invalidate` bumps the cache generation, which owners
    call on every write-path event that changes candidates or relative
    costs (attach/detach of physical indexes, bulk loads).  Structures that
    reorganise themselves (threshold-triggered global rebuilds) advertise a
    ``generation`` attribute the cache key folds in, so their rebuilds
    invalidate cached strategies without the owner's help.
    """

    def __init__(self, accessors: Sequence[Accessor], disk: Any = None) -> None:
        # a list is kept by reference so owners (Collection) can attach
        # further physical indexes after constructing the planner
        self.accessors = accessors if isinstance(accessors, list) else list(accessors)
        self.disk = disk
        #: bumped by :meth:`invalidate`; part of every cache entry's key
        self.generation = 0
        self._cache: "OrderedDict[Any, Tuple[Any, PlanTemplate]]" = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0
        #: guards the plan cache's read-modify-write sequences so concurrent
        #: reader sessions can plan on one shared planner; reentrant because
        #: union planning and prepared queries nest ``plan`` calls
        self._lock = threading.RLock()

    @classmethod
    def for_index(cls, name: str, index: Any, disk: Any = None) -> "QueryPlanner":
        """A single-index planner (what ``Engine`` keeps per plain index)."""
        return cls([Accessor.for_index(name, index)], disk=disk)

    # ------------------------------------------------------------------ #
    # the plan cache
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop every cached strategy and bump the generation counter.

        Called by owners on events that change the candidate set or the
        relative costs wholesale: attaching/detaching a physical index,
        bulk loads, global rebuilds.  Prepared queries holding plans from
        an older generation detect the bump and re-plan on their next run.
        """
        with self._lock:
            self.generation += 1
            self._cache.clear()

    def _generation_key(self) -> Tuple[Any, ...]:
        """What a cached strategy's validity is checked against.

        Folds in the explicit :attr:`generation`, the accessor count
        (attach changes it even without an ``invalidate`` call), and each
        accessor index's own ``generation`` counter where the structure
        maintains one (threshold-triggered rebuilds bump it).
        """
        return (
            self.generation,
            len(self.accessors),
            tuple(getattr(acc.index, "generation", 0) for acc in self.accessors),
        )

    def cache_info(self) -> Dict[str, int]:
        """Live cache counters (entries, hits, misses, generation)."""
        return {
            "entries": len(self._cache),
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "generation": self.generation,
        }

    @staticmethod
    def _signature(q: Any) -> Optional[tuple]:
        sig = getattr(q, "signature", None)
        return sig() if callable(sig) else None

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, q: Any, *, use_cache: bool = True) -> Plan:
        """The cheapest plan for ``q`` (pure: executes nothing).

        With ``use_cache`` (the default) a query whose signature was
        planned before — and whose cache generation still matches — skips
        candidate enumeration and re-instantiates the cached strategy
        against the live accessors.  ``use_cache=False`` forces a full
        enumeration (what benchmarks call "ad-hoc planning") and neither
        reads nor writes the cache.

        Thread-safe: the cache's read-modify-write runs under the
        planner's reentrant lock, so any number of concurrent reader
        sessions may plan on one shared planner.
        """
        with obs_tracer.span("planner.plan", query=type(q).__name__) as sp:
            with self._lock:
                sig = self._signature(q) if use_cache else None
                if sig is not None:
                    entry = self._cache.get(sig)
                    if entry is not None:
                        gen_key, template = entry
                        if gen_key == self._generation_key():
                            plan = self._try_instantiate(template, q)
                            if plan is not None:
                                self.cache_hits += 1
                                obs_metrics.REGISTRY.counter(
                                    "planner.cache_hits"
                                ).inc()
                                sp.annotate(cache_hit=True)
                                self._cache.move_to_end(sig)
                                return plan
                        # stale generation or structural mismatch: drop and re-plan
                        self._cache.pop(sig, None)
                with obs_tracer.span("planner.enumerate"):
                    plan, template = self._plan_fresh(q)
                sp.annotate(cache_hit=False)
                if sig is not None and template is not None:
                    self.cache_misses += 1
                    obs_metrics.REGISTRY.counter("planner.cache_misses").inc()
                    self._cache[sig] = (self._generation_key(), template)
                    while len(self._cache) > PLAN_CACHE_SIZE:
                        self._cache.popitem(last=False)
                return plan

    def _plan_fresh(self, q: Any) -> Tuple[Plan, Optional[PlanTemplate]]:
        base, modifiers = self._peel(q)
        plan, template = self._plan_base(base)
        if modifiers:
            plan = self._with_modifiers(plan, modifiers)
        return plan, template

    @staticmethod
    def _with_modifiers(plan: Plan, modifiers: List[Any]) -> Plan:
        return Plan(
            kind=plan.kind,
            index=plan.index,
            access=plan.access,
            residual=plan.residual,
            bound=plan.bound,
            modifiers=tuple(modifiers),
            subplans=plan.subplans,
        )

    @staticmethod
    def _peel(q: Any) -> Tuple[Any, List[Any]]:
        """Strip Limit/OrderBy off the top; innermost modifier first."""
        modifiers: List[Any] = []
        while isinstance(q, MODIFIERS):
            modifiers.append(q)
            q = q.part
        modifiers.reverse()
        return q, modifiers

    def _plan_base(self, q: Any) -> Tuple[Plan, PlanTemplate]:
        candidates = self._candidates(q)
        if not candidates:
            raise TypeError(
                f"no index among {[a.name for a in self.accessors]} can serve "
                f"{type(q).__name__} queries (and no scan fallback is attached)"
            )
        return min(candidates, key=lambda c: c[0].bound.pages)

    def _candidates(self, q: Any) -> List[Tuple[Plan, PlanTemplate]]:
        plans: List[Tuple[Plan, PlanTemplate]] = []
        # direct pushdown of the whole shape
        for acc in self.accessors:
            if acc.supports(q):
                plans.append((
                    Plan("index", acc.name, acc.translate(q), None, acc.cost(q)),
                    PlanTemplate("index", acc.name),
                ))
        # conjunction: push one conjunct down, keep the rest as residual
        if isinstance(q, And):
            for i, part in enumerate(q.parts):
                rest = q.parts[:i] + q.parts[i + 1 :]
                residual = rest[0] if len(rest) == 1 else (And(*rest) if rest else None)
                for acc in self.accessors:
                    if acc.supports(part):
                        plans.append((
                            Plan(
                                "index",
                                acc.name,
                                acc.translate(part),
                                self._rewrite(acc, residual),
                                acc.cost(part),
                            ),
                            PlanTemplate("index", acc.name, push=i),
                        ))
        # disjunction: union of recursively planned parts
        if isinstance(q, Or) and q.parts:
            try:
                pairs = tuple(self._plan_base(p) for p in q.parts)
            except TypeError:
                pairs = None
            if pairs:
                subplans = tuple(p for p, _ in pairs)
                bound = subplans[0].bound
                for sub in subplans[1:]:
                    bound = bound + sub.bound
                plans.append((
                    Plan("union", None, q, None, bound, subplans=subplans),
                    PlanTemplate("union", subtemplates=tuple(t for _, t in pairs)),
                ))
        # scan fallback: any oracle-bearing query over a scannable accessor
        if hasattr(q, "matches"):
            for acc in self.accessors:
                if acc.scan is not None:
                    plans.append((
                        Plan("scan", acc.name, None, self._rewrite(acc, q),
                             self._scan_cost(acc)),
                        PlanTemplate("scan", acc.name),
                    ))
        return plans

    def _scan_cost(self, acc: Accessor) -> Bound:
        """The full-scan bound for ``acc`` — always finite when sizes are known.

        Accessors that advertise ``scan_bound`` are taken at their word;
        otherwise the bound is derived from the index's live record count
        and the page size ``B``: a scan touches every data block, at most
        ``2n/B`` of them when blocks are at least half full, plus one root /
        control block.  (The old behaviour — an *infinite* placeholder —
        made ``result.bound`` and ``predicted()`` vacuous whenever scan was
        the only candidate.)
        """
        if acc.scan_bound is not None:
            return acc.scan_bound()
        n = getattr(acc.index, "live_count", None)
        if n is None:
            try:
                n = len(acc.index)
            except TypeError:
                n = None
        B = getattr(self.disk, "block_size", None)
        if n is None or not B:
            # sizes unknowable: keep the conservative sentinel rather than
            # inventing a bound the test suite would hold the plan to
            return Bound("full scan", float("inf"))
        blocks = 1.0 + 2.0 * max(int(n), 1) / float(B)
        return Bound.of("1 + 2n/B (full scan)", lambda t, blocks=blocks: blocks)

    @staticmethod
    def _rewrite(acc: Accessor, residual: Any) -> Any:
        if residual is None or acc.rewrite is None:
            return residual
        return acc.rewrite(residual)

    # ------------------------------------------------------------------ #
    # template instantiation (the cached fast path)
    # ------------------------------------------------------------------ #
    def _try_instantiate(self, template: PlanTemplate, q: Any) -> Optional[Plan]:
        """A fresh :class:`Plan` from a cached strategy, or ``None`` to re-plan."""
        try:
            return self._instantiate(template, q)
        except _TemplateMismatch:
            return None

    def _instantiate(self, template: PlanTemplate, q: Any) -> Plan:
        base, modifiers = self._peel(q)
        plan = self._instantiate_base(template, base)
        if modifiers:
            plan = self._with_modifiers(plan, modifiers)
        return plan

    def _instantiate_base(self, t: PlanTemplate, q: Any) -> Plan:
        if t.kind == "union":
            if not isinstance(q, Or) or len(q.parts) != len(t.subtemplates):
                raise _TemplateMismatch
            subplans = tuple(
                self._instantiate_base(st, p)
                for st, p in zip(t.subtemplates, q.parts)
            )
            bound = subplans[0].bound
            for sub in subplans[1:]:
                bound = bound + sub.bound
            return Plan("union", None, q, None, bound, subplans=subplans)
        acc = self._accessor_or_none(t.index)
        if acc is None:
            raise _TemplateMismatch
        if t.kind == "scan":
            if acc.scan is None or not hasattr(q, "matches"):
                raise _TemplateMismatch
            return Plan("scan", acc.name, None, self._rewrite(acc, q),
                        self._scan_cost(acc))
        if t.push is None:
            pq = acc.translate(q)
            if pq is None:
                raise _TemplateMismatch
            return Plan("index", acc.name, pq, None, acc.index.cost(pq))
        if not isinstance(q, And) or t.push >= len(q.parts):
            raise _TemplateMismatch
        part = q.parts[t.push]
        pq = acc.translate(part)
        if pq is None:
            raise _TemplateMismatch
        rest = q.parts[: t.push] + q.parts[t.push + 1 :]
        residual = rest[0] if len(rest) == 1 else (And(*rest) if rest else None)
        return Plan(
            "index", acc.name, pq, self._rewrite(acc, residual),
            acc.index.cost(pq),
        )

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, plan: Plan, *, accounting: str = "per_record") -> QueryResult:
        """Run a plan as one lazy, I/O-accounted :class:`QueryResult`.

        The result's ``bound`` evaluates the plan's predicted cost at the
        access path's raw output size — per subplan for unions, so each
        branch's formula sees only the records that branch produced (see
        the module docstring); the plan itself is attached as
        ``result.plan``.  ``accounting="bulk"`` brackets the I/O counters
        once around the whole drain instead of once per record — the
        prepared-query fast path (see :class:`~repro.engine.result.
        QueryResult` for the interleaving caveat).
        """
        if plan.kind == "index" and plan.residual is None and not plan.modifiers:
            # fast path: pure pushdown — no residual, no modifiers, no
            # union, so the raw output IS the yielded output and the
            # result's own count serves as ``t``; stream the access path
            # without the counting wrapper (one generator frame per record
            # saved on the hottest shape)
            acc = self._accessor(plan.index)
            access = plan.access

            def direct() -> Iterator[Any]:
                out = acc.run(access)
                return out.raw() if isinstance(out, QueryResult) else iter(out)

            result = QueryResult(
                direct,
                disk=self.disk,
                bound=plan.bound,
                label=f"plan:index:{plan.index}",
                accounting=accounting,
            )
            result.plan = plan
            return result

        counts: Dict[int, List[int]] = {}
        self._count_cells(plan, counts)
        sorted_memo: Dict[int, List[Any]] = {}

        def source() -> Iterator[Any]:
            stream: Iterator[Any] = self._run(plan, counts)
            for i, m in enumerate(plan.modifiers):
                if isinstance(m, OrderBy):
                    # stable sort, materialised at most once per result:
                    # ties keep the access path's emission order, and a
                    # re-invoked source serves the memoised list instead of
                    # re-sorting (the QueryResult cache then replays it)
                    if i not in sorted_memo:
                        sorted_memo[i] = sorted(
                            stream, key=m.key_fn(), reverse=m.reverse
                        )
                    stream = iter(sorted_memo[i])
                elif isinstance(m, Limit):
                    stream = islice(stream, m.n)
            return stream

        def bound_at(p: Plan, t: int) -> float:
            if p.kind == "union":
                # each subplan's formula at its own raw output size; the
                # deduplicated yield count ``t`` never exceeds the sum
                return sum(bound_at(sub, 0) for sub in p.subplans)
            cell = counts.get(id(p))
            raw = cell[0] if cell else 0
            return p.bound(max(t, raw))

        result = QueryResult(
            source,
            disk=self.disk,
            bound=lambda t: bound_at(plan, t),
            label=f"plan:{plan.kind}:{plan.index or 'union'}",
            accounting=accounting,
        )
        result.plan = plan
        return result

    def query(self, q: Any) -> QueryResult:
        """Plan ``q`` (cache-aware) and execute the chosen plan."""
        return self.execute(self.plan(q))

    def _accessor(self, name: str) -> Accessor:
        acc = self._accessor_or_none(name)
        if acc is None:
            raise KeyError(f"plan references unknown index {name!r}")
        return acc

    def _accessor_or_none(self, name: Optional[str]) -> Optional[Accessor]:
        for acc in self.accessors:
            if acc.name == name:
                return acc
        return None

    def _count_cells(self, plan: Plan, counts: Dict[int, List[int]]) -> None:
        """One mutable raw-output counter per non-union plan node."""
        if plan.kind == "union":
            for sub in plan.subplans:
                self._count_cells(sub, counts)
        else:
            counts[id(plan)] = [0]

    def _run(self, plan: Plan, counts: Dict[int, List[int]]) -> Iterator[Any]:
        if plan.kind == "union":
            seen = set()
            rk = record_key
            for sub in plan.subplans:
                for rec in self._run(sub, counts):
                    key = rk(rec)
                    if key not in seen:
                        seen.add(key)
                        yield rec
            return
        acc = self._accessor(plan.index)
        cell = counts.get(id(plan))
        if cell is None:  # plan executed directly, not via execute()
            cell = counts[id(plan)] = [0]
        stream = acc.scan() if plan.kind == "scan" else acc.run(plan.access)
        if isinstance(stream, QueryResult):
            # the executing QueryResult owns accounting and replay; paying
            # for the inner result's per-record bookkeeping as well would
            # double the hot-loop overhead without measuring anything new
            stream = stream.raw()
        residual = plan.residual
        # hoist the per-record lookups out of the hot loop: one bound-method
        # fetch instead of two attribute chases per streamed record
        if residual is None:
            for rec in stream:
                cell[0] += 1
                yield rec
        else:
            matches = residual.matches
            # the residual span carries counts, not an I/O sink: the filter
            # itself does no I/O, and this generator can be abandoned by an
            # outer Limit — its late GC-driven close must not have to
            # unwind a sink registration
            sp = obs_tracer.span("plan.residual", index=plan.index)
            with sp:
                examined = emitted = 0
                try:
                    for rec in stream:
                        cell[0] += 1
                        examined += 1
                        if matches(rec):
                            emitted += 1
                            yield rec
                finally:
                    sp.annotate(examined=examined, emitted=emitted)
