"""The cost-aware query planner: *what* is the user's, *how* is ours.

Given a (possibly composed) query from the algebra of
:mod:`repro.engine.queries` and a set of physical indexes — either the
several indexes of a :class:`~repro.engine.collection.Collection` or a
single engine index — the :class:`QueryPlanner`

1. **enumerates** candidate ``(index, sub-query)`` plans: direct pushdown
   when an index ``supports`` the whole shape; for :class:`And`, one
   candidate per (index, conjunct) pair with the remaining conjuncts as a
   residual post-filter; for :class:`Or`, a union of recursively-planned
   parts with on-the-fly deduplication; and, where an accessor offers it,
   a full-scan fallback that serves *any* query through its ``matches``
   oracle;
2. **costs** each candidate with the paper's predicted bounds (the
   :meth:`~repro.engine.protocols.Index.cost` capability, compared at the
   output-independent ``t = 0`` point since output sizes are unknown before
   execution; ties go to the earlier-attached index); and
3. **executes** the cheapest as one lazy
   :class:`~repro.engine.result.QueryResult` — residual predicates are
   applied as a streaming post-filter (records are already in memory, so
   the filter costs no I/O), :class:`OrderBy` sorts, :class:`Limit`
   truncates the stream lazily.

The chosen plan is a frozen :class:`Plan` dataclass.
``Engine.explain(name, q)`` returns it without executing anything;
executed results carry the identical plan as ``result.plan``, so callers
can verify the plan reported is the plan run.

Bound accounting
----------------
The executed result's ``bound`` evaluates the plan's predicted formula at
the number of records the *access path* produced (before residual
filtering, deduplication or ``Limit``), which is the quantity the paper's
theorems bound.  Observed ``ios`` may exceed the prediction only by
constant factors — :data:`BOUND_SLACK` is the documented slack the test
suite holds every planner-chosen plan to.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.engine.protocols import Bound
from repro.engine.queries import MODIFIERS, And, Limit, Or, OrderBy
from repro.engine.result import QueryResult
from repro.records import record_key  # canonical home; re-exported for callers

#: Documented slack: a planner-chosen plan's observed I/Os never exceed
#: ``BOUND_SLACK * bound(t) + BOUND_SLACK_PAGES`` where ``t`` is the access
#: path's raw output size.  The paper's bounds are asymptotic — the
#: reproduction claims the shape, with this constant-factor allowance; the
#: additive term absorbs the fixed cost of touching a handful of root /
#: control blocks on queries whose output is tiny.
BOUND_SLACK = 4.0
BOUND_SLACK_PAGES = 8.0


@dataclass
class Accessor:
    """One physical index as the planner sees it.

    ``translate`` maps a *logical* query node to the query the index
    actually answers (``None`` when this index cannot serve the node);
    ``run`` streams logical records for a translated query.  ``scan``
    (optional) streams every record — the fallback that serves arbitrary
    ``matches`` oracles at full-scan cost.  ``rewrite`` (optional) binds
    index context onto residual oracle nodes (see
    :meth:`repro.core.ClassIndexer.bind`).

    The write path rides on the same records: ``insert``/``delete`` apply
    one logical record to this physical index, ``bulk`` absorbs a batch in
    one reorganisation.  All three are optional — a read-only physical
    index simply leaves them unset, and the owning
    :class:`~repro.engine.collection.Collection` skips it on writes.
    """

    name: str
    index: Any
    translate: Callable[[Any], Optional[Any]]
    run: Callable[[Any], Iterable[Any]]
    scan: Optional[Callable[[], Iterable[Any]]] = None
    scan_bound: Optional[Callable[[], Bound]] = None
    rewrite: Optional[Callable[[Any], Any]] = None
    insert: Optional[Callable[[Any], None]] = None
    delete: Optional[Callable[[Any], Any]] = None
    bulk: Optional[Callable[[List[Any]], Any]] = None

    @classmethod
    def for_index(cls, name: str, index: Any) -> "Accessor":
        """The identity accessor a plain (single-index) engine entry gets."""
        return cls(
            name=name,
            index=index,
            translate=lambda q: q if index.supports(q) else None,
            run=lambda pq: index.query(pq),
            rewrite=getattr(index, "bind", None),
        )

    def supports(self, q: Any) -> bool:
        return self.translate(q) is not None

    def cost(self, q: Any) -> Bound:
        return self.index.cost(self.translate(q))


@dataclass(frozen=True)
class Plan:
    """The planner's chosen strategy for one query, as structured data.

    ``kind`` is ``"index"`` (pushdown + optional residual), ``"union"``
    (execute every subplan, deduplicate), or ``"scan"`` (full scan +
    oracle filter).  ``modifiers`` are the :class:`Limit`/:class:`OrderBy`
    nodes peeled off the top, outermost last, applied in order after the
    base plan's stream.
    """

    kind: str
    index: Optional[str]
    access: Any
    residual: Any
    bound: Bound
    modifiers: Tuple[Any, ...] = ()
    subplans: Tuple["Plan", ...] = ()

    def predicted(self, t: int = 0) -> float:
        """Predicted I/Os at access-path output size ``t``."""
        return self.bound(t)

    def describe(self, indent: str = "") -> str:
        """Human-readable rendering (what the CLI ``explain`` prints)."""
        lines: List[str] = []
        if self.kind == "union":
            lines.append(f"{indent}Union  [bound: {self.bound.formula}]")
            for sub in self.subplans:
                lines.append(sub.describe(indent + "  "))
        elif self.kind == "scan":
            lines.append(
                f"{indent}Scan({self.index})  filter: {self.residual!r}  "
                f"[bound: {self.bound.formula}]"
            )
        else:
            lines.append(
                f"{indent}Index({self.index})  access: {self.access!r}  "
                f"[bound: {self.bound.formula}]"
            )
            if self.residual is not None:
                lines.append(f"{indent}  residual filter: {self.residual!r}")
        for m in self.modifiers:
            if isinstance(m, Limit):
                lines.append(f"{indent}  then: limit {m.n}")
            else:
                lines.append(f"{indent}  then: order by {m.key!r}"
                             f"{' desc' if m.reverse else ''}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class QueryPlanner:
    """Enumerate, cost and execute plans over a set of accessors."""

    def __init__(self, accessors: Sequence[Accessor], disk: Any = None) -> None:
        # a list is kept by reference so owners (Collection) can attach
        # further physical indexes after constructing the planner
        self.accessors = accessors if isinstance(accessors, list) else list(accessors)
        self.disk = disk

    @classmethod
    def for_index(cls, name: str, index: Any, disk: Any = None) -> "QueryPlanner":
        """A single-index planner (what ``Engine.explain`` uses for plain indexes)."""
        return cls([Accessor.for_index(name, index)], disk=disk)

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def plan(self, q: Any) -> Plan:
        """The cheapest plan for ``q`` (pure: executes nothing)."""
        base, modifiers = self._peel(q)
        plan = self._plan_base(base)
        if modifiers:
            plan = Plan(
                kind=plan.kind,
                index=plan.index,
                access=plan.access,
                residual=plan.residual,
                bound=plan.bound,
                modifiers=tuple(modifiers),
                subplans=plan.subplans,
            )
        return plan

    @staticmethod
    def _peel(q: Any) -> Tuple[Any, List[Any]]:
        """Strip Limit/OrderBy off the top; innermost modifier first."""
        modifiers: List[Any] = []
        while isinstance(q, MODIFIERS):
            modifiers.append(q)
            q = q.part
        modifiers.reverse()
        return q, modifiers

    def _plan_base(self, q: Any) -> Plan:
        candidates = self._candidates(q)
        if not candidates:
            raise TypeError(
                f"no index among {[a.name for a in self.accessors]} can serve "
                f"{type(q).__name__} queries (and no scan fallback is attached)"
            )
        return min(candidates, key=lambda p: p.bound.pages)

    def _candidates(self, q: Any) -> List[Plan]:
        plans: List[Plan] = []
        # direct pushdown of the whole shape
        for acc in self.accessors:
            if acc.supports(q):
                plans.append(
                    Plan("index", acc.name, acc.translate(q), None, acc.cost(q))
                )
        # conjunction: push one conjunct down, keep the rest as residual
        if isinstance(q, And):
            for i, part in enumerate(q.parts):
                rest = q.parts[:i] + q.parts[i + 1 :]
                residual = rest[0] if len(rest) == 1 else (And(*rest) if rest else None)
                for acc in self.accessors:
                    if acc.supports(part):
                        plans.append(
                            Plan(
                                "index",
                                acc.name,
                                acc.translate(part),
                                self._rewrite(acc, residual),
                                acc.cost(part),
                            )
                        )
        # disjunction: union of recursively planned parts
        if isinstance(q, Or) and q.parts:
            try:
                subplans = tuple(self._plan_base(p) for p in q.parts)
            except TypeError:
                subplans = None
            if subplans:
                bound = subplans[0].bound
                for sub in subplans[1:]:
                    bound = bound + sub.bound
                plans.append(Plan("union", None, q, None, bound, subplans=subplans))
        # scan fallback: any oracle-bearing query over a scannable accessor
        if hasattr(q, "matches"):
            for acc in self.accessors:
                if acc.scan is not None:
                    plans.append(
                        Plan(
                            "scan",
                            acc.name,
                            None,
                            self._rewrite(acc, q),
                            acc.scan_bound() if acc.scan_bound else Bound("full scan", float("inf")),
                        )
                    )
        return plans

    @staticmethod
    def _rewrite(acc: Accessor, residual: Any) -> Any:
        if residual is None or acc.rewrite is None:
            return residual
        return acc.rewrite(residual)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def execute(self, plan: Plan) -> QueryResult:
        """Run a plan as one lazy, I/O-accounted :class:`QueryResult`.

        The result's ``bound`` evaluates the plan's predicted cost at the
        access path's raw output size (see the module docstring); the plan
        itself is attached as ``result.plan``.
        """
        raw_count = [0]

        def source() -> Iterator[Any]:
            stream = self._run(plan, raw_count)
            for m in plan.modifiers:
                if isinstance(m, OrderBy):
                    stream = iter(sorted(stream, key=m.key_fn(), reverse=m.reverse))
                elif isinstance(m, Limit):
                    stream = islice(stream, m.n)
            return stream

        result = QueryResult(
            source,
            disk=self.disk,
            bound=lambda t: plan.bound(max(t, raw_count[0])),
            label=f"plan:{plan.kind}:{plan.index or 'union'}",
        )
        result.plan = plan
        return result

    def query(self, q: Any) -> QueryResult:
        """Plan ``q`` and execute the chosen plan."""
        return self.execute(self.plan(q))

    def _accessor(self, name: str) -> Accessor:
        for acc in self.accessors:
            if acc.name == name:
                return acc
        raise KeyError(f"plan references unknown index {name!r}")

    def _run(self, plan: Plan, raw_count: List[int]) -> Iterator[Any]:
        if plan.kind == "union":
            seen = set()
            for sub in plan.subplans:
                for rec in self._run(sub, raw_count):
                    key = record_key(rec)
                    if key not in seen:
                        seen.add(key)
                        yield rec
            return
        acc = self._accessor(plan.index)
        if plan.kind == "scan":
            for rec in acc.scan():
                raw_count[0] += 1
                if plan.residual is None or plan.residual.matches(rec):
                    yield rec
            return
        for rec in acc.run(plan.access):
            raw_count[0] += 1
            if plan.residual is None or plan.residual.matches(rec):
                yield rec
