"""The ``Index`` protocol: the one shape every index in the engine shares.

The paper's structures solve different problems (stabbing, 3-sided search,
class extents) but, as database components, they all reduce to the same
surface: put a record in, stream records matching a query descriptor out,
account for space and I/O.  The protocol is structural
(:func:`typing.runtime_checkable`), so the concrete classes —
:class:`~repro.core.ExternalIntervalManager`,
:class:`~repro.core.ClassIndexer`,
:class:`~repro.constraints.GeneralizedOneDimensionalIndex`,
:class:`~repro.pst.ExternalPST`, :class:`~repro.btree.BPlusTree` — need no
common base class; they simply all implement these four methods.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from repro.io.counters import IOStats


@runtime_checkable
class Index(Protocol):
    """Uniform surface of an I/O-efficient index.

    ``query`` takes a descriptor from :mod:`repro.engine.queries` (or one of
    the geometric query dataclasses) and returns a lazy
    :class:`~repro.engine.result.QueryResult`; no I/O happens until the
    result is iterated.  ``insert`` may raise :class:`NotImplementedError`
    on structures the paper analyses as static (callers can probe with
    ``getattr(index, 'dynamic', True)``).
    """

    def insert(self, item: Any) -> None:
        """Add one record to the index."""
        ...

    def query(self, q: Any) -> Any:
        """Answer a query descriptor with a lazy ``QueryResult``."""
        ...

    def block_count(self) -> int:
        """Disk blocks used by the structure (the space bound)."""
        ...

    def io_stats(self) -> IOStats:
        """Live I/O counters of the structure's storage backend."""
        ...
