"""The ``Index`` protocol and the ``Bound`` capability surface.

The paper's structures solve different problems (stabbing, 3-sided search,
class extents) but, as database components, they all reduce to the same
surface: put a record in, stream records matching a query descriptor out,
account for space and I/O, and *advertise* which query shapes they serve at
which predicted cost.  The protocol is structural
(:func:`typing.runtime_checkable`), so the concrete classes —
:class:`~repro.core.ExternalIntervalManager`,
:class:`~repro.core.ClassIndexer`,
:class:`~repro.constraints.GeneralizedOneDimensionalIndex`,
:class:`~repro.pst.ExternalPST`, :class:`~repro.btree.BPlusTree`, the
metablock trees, and the multi-index
:class:`~repro.engine.collection.Collection` — need no common base class;
they simply all implement these six methods.

``supports``/``cost`` are what the
:class:`~repro.engine.planner.QueryPlanner` consumes: per candidate
(index, sub-query) pair it asks the index whether it can serve the shape
and what the paper predicts it will pay, then executes the cheapest plan.

:class:`MutableIndex` layers the capability-tiered *write* surface on top:
``delete``/``bulk_load`` plus the ``supports_deletes``/``supports_bulk_load``
flags — implemented natively by the dynamic structures and supplied to the
static ones by the :class:`~repro.engine.rebuilding.RebuildingIndex`
adapter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Protocol, runtime_checkable

from repro.io.counters import IOStats


@dataclass(frozen=True)
class Bound:
    """A predicted I/O bound: a formula from the paper plus its evaluation.

    ``pages`` is the output-independent part of the bound (the formula at
    ``t = 0``, e.g. the ``log_B n`` search cost) — it is what the planner
    compares when choosing among candidate plans, since the output size is
    unknown before execution.  ``at(t)`` evaluates the full formula at
    output size ``t``; equality and hashing ignore it so plans built for the
    same query compare equal.
    """

    formula: str
    pages: float
    at: Optional[Callable[[int], float]] = field(default=None, compare=False, repr=False)

    def __call__(self, t: int = 0) -> float:
        """Predicted I/Os at output size ``t``."""
        if self.at is None:
            return self.pages
        return self.at(t)

    @classmethod
    def of(cls, formula: str, fn: Callable[[int], float]) -> "Bound":
        """Build a bound from a ``t -> pages`` function (``pages = fn(0)``)."""
        return cls(formula, fn(0), fn)

    def __add__(self, other: "Bound") -> "Bound":
        """Sum of two bounds (union plans execute both sides)."""
        if not isinstance(other, Bound):
            return NotImplemented
        left, right = self, other
        return Bound(
            f"{left.formula} + {right.formula}",
            left.pages + right.pages,
            at=lambda t: left(t) + right(t),
        )


@runtime_checkable
class Index(Protocol):
    """Uniform surface of an I/O-efficient index.

    ``query`` takes a descriptor from :mod:`repro.engine.queries` (or one of
    the geometric query dataclasses) and returns a lazy
    :class:`~repro.engine.result.QueryResult`; no I/O happens until the
    result is iterated.  ``insert`` may raise :class:`NotImplementedError`
    on structures the paper analyses as static (callers can probe with
    ``getattr(index, 'dynamic', True)``).

    ``supports``/``cost`` form the capability surface the
    :class:`~repro.engine.planner.QueryPlanner` plans against: ``supports``
    must be total (``False`` for unknown descriptors, never an exception)
    and ``cost`` may assume ``supports(q)`` is true.
    """

    def insert(self, item: Any) -> None:
        """Add one record to the index."""
        ...

    def query(self, q: Any) -> Any:
        """Answer a query descriptor with a lazy ``QueryResult``."""
        ...

    def supports(self, q: Any) -> bool:
        """Whether this index can serve the query shape directly."""
        ...

    def cost(self, q: Any) -> Bound:
        """The paper's predicted I/O bound for serving ``q`` here."""
        ...

    def block_count(self) -> int:
        """Disk blocks used by the structure (the space bound)."""
        ...

    def io_stats(self) -> IOStats:
        """Live I/O counters of the structure's storage backend."""
        ...


@runtime_checkable
class MutableIndex(Index, Protocol):
    """The capability-tiered *write* surface layered on :class:`Index`.

    The paper presents its structures with full maintenance semantics —
    inserts *and* deletes within the I/O bounds, plus efficient bulk
    construction.  ``MutableIndex`` is that lifecycle-complete tier:

    * ``delete(item)`` removes one record (matched by its stable ``uid``
      where the record carries one) and returns whether it was present;
    * ``bulk_load(items)`` absorbs a batch in one reorganisation — packed
      bottom-up builds for B+-trees, a global rebuild for the
      tombstone-bearing structures — and returns the number of records
      added;
    * the ``supports_deletes`` / ``supports_bulk_load`` flags advertise
      the tier, so callers (the :class:`~repro.engine.collection.Collection`
      write path, the CLI, the catalog restore) can probe capabilities
      without ``try``/``except`` around every call.

    Structures the paper analyses as static (:class:`~repro.pst.ExternalPST`,
    the static metablock tree) do not implement this protocol natively;
    the :class:`~repro.engine.rebuilding.RebuildingIndex` adapter gives
    them the same surface through tombstones and threshold-triggered
    global rebuilds, with every rebuild I/O charged to the counters.
    """

    supports_deletes: bool
    supports_bulk_load: bool

    def delete(self, item: Any) -> bool:
        """Remove one record; ``True`` when it was present."""
        ...

    def bulk_load(self, items: Iterable[Any]) -> int:
        """Absorb a batch of records in one reorganisation; returns the count."""
        ...


def supports_deletes(index: Any) -> bool:
    """Whether ``index`` advertises the delete capability tier."""
    return bool(getattr(index, "supports_deletes", False))


def supports_bulk_load(index: Any) -> bool:
    """Whether ``index`` advertises the bulk-load capability tier."""
    return bool(getattr(index, "supports_bulk_load", False))
