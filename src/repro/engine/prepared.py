"""Prepared queries: plan once, execute many times with fresh bindings.

``Engine.prepare(name, q)`` plans ``q`` — which may contain
:class:`~repro.engine.queries.Param` placeholders in scalar operand
positions — against the named index and hands back a :class:`PreparedQuery`.
``run(**params)`` substitutes the bindings and re-instantiates the *cached
strategy* directly: no candidate enumeration, no costing of alternatives,
no signature lookup — the per-call work is one parameter substitution, one
``translate`` + ``cost`` call against the live structures (so predicted
bounds always reflect current sizes, even as plain inserts grow the index),
and the execution itself under bulk I/O accounting.

Correctness is guarded twice:

* the planner's **generation key** (see :mod:`repro.engine.planner`) —
  every ``run``/``plan`` call compares the generation captured at prepare
  time against the live one, and any invalidating write event in between
  (attaching or detaching a physical index, a bulk load, a
  threshold-triggered global rebuild) forces a full re-plan before
  execution; and
* an **identity check against the engine namespace** — running a prepared
  query whose index was dropped raises the engine's descriptive
  :class:`KeyError`, and one whose name was re-bound to a *different*
  index object raises :class:`RuntimeError`, instead of silently answering
  from freed blocks.

The :attr:`PreparedQuery.last_from_cache` flag reports which path the most
recent call took, which is what the invalidation tests assert on.

>>> from repro import Engine, Interval, Param, Stab
>>> eng = Engine(block_size=16)
>>> _ = eng.create_collection("ivs", [Interval(1, 5), Interval(3, 9)])
>>> stab = eng.prepare("ivs", Stab(Param("x")))
>>> sorted(iv.low for iv in stab.run(x=4))
[1, 3]
>>> sorted(iv.low for iv in stab.run(x=8))
[3]
"""

from __future__ import annotations

from typing import Any, List, Optional, Set

from repro.engine.planner import Plan, PlanTemplate, QueryPlanner
from repro.engine.queries import bind_params, unbound_params
from repro.engine.result import QueryResult


class PreparedQuery:
    """A named query planned once and re-executed with fresh bindings.

    Built by ``Engine.prepare``; not constructed directly in application
    code.  The prepared query may contain unbound
    :class:`~repro.engine.queries.Param` nodes — ``run``/``plan`` bind
    them and, while the planner's cache generation holds, re-instantiate
    the cached :class:`~repro.engine.planner.PlanTemplate` instead of
    planning from scratch.
    """

    def __init__(
        self,
        name: str,
        query: Any,
        planner: QueryPlanner,
        engine: Any = None,
        index: Any = None,
    ) -> None:
        self.name = name
        self.query = query
        self.planner = planner
        self._engine = engine
        self._index = index
        #: parameter names ``run()`` requires, sorted for the repr
        self.params: List[str] = sorted(unbound_params(query))
        self._param_set: Set[str] = set(self.params)
        self._template: Optional[PlanTemplate] = None
        self._gen_key: Any = None
        #: whether the most recent ``run``/``plan`` served the cached
        #: strategy (``False`` means an invalidation forced a re-plan);
        #: ``None`` until the first call
        self.last_from_cache: Optional[bool] = None
        self._prime()

    # ------------------------------------------------------------------ #
    # planning
    # ------------------------------------------------------------------ #
    def _prime(self) -> None:
        """Plan the (possibly parameterised) query; keep the chosen strategy.

        Planning an unbound query works for every standard shape — index
        capability checks and cost formulas never compare operand values —
        but an exotic index could reject a placeholder, in which case the
        prepared query plans per run instead (still through the planner's
        signature cache; ``_gen_key`` remembers the failure, so the failing
        enumeration is not retried until the next generation bump).  A
        query *without* placeholders that fails to plan is simply
        unservable — that error belongs at the ``prepare`` call site, not
        at the first ``run``.
        """
        # under the planner's (reentrant) lock: the cache peek after plan()
        # must see the entry that call wrote, not a concurrent eviction
        with self.planner._lock:
            self._gen_key = self.planner._generation_key()
            self._template = None
            try:
                self.planner.plan(self.query)
            except Exception:
                if not self._param_set:
                    raise
                return
            sig = self.planner._signature(self.query)
            entry = self.planner._cache.get(sig) if sig is not None else None
            if entry is not None:
                self._template = entry[1]

    def _check_live(self) -> None:
        """Fail loudly when the prepared index left the engine namespace."""
        if self._engine is None:
            return
        live = self._engine.index(self.name)  # descriptive KeyError if dropped
        if live is not self._index:
            raise RuntimeError(
                f"index {self.name!r} was dropped and re-created since this "
                "query was prepared; call Engine.prepare again"
            )

    def _check_params(self, params: dict) -> None:
        if set(params) != self._param_set:
            missing = sorted(self._param_set - set(params))
            extras = sorted(set(params) - self._param_set)
            detail = []
            if missing:
                detail.append(f"missing {missing}")
            if extras:
                detail.append(f"unknown {extras}")
            raise KeyError(
                f"prepared query {self.name!r} takes parameters "
                f"{self.params}: " + ", ".join(detail)
            )

    def plan(self, **params: Any) -> Plan:
        """The plan :meth:`run` would execute for these bindings (no I/O).

        Re-instantiates the cached strategy — fresh ``cost`` against the
        live structures, no enumeration — while the cache generation
        holds; re-plans otherwise.
        """
        self._check_live()
        self._check_params(params)
        if self._gen_key != self.planner._generation_key():
            # an invalidating write event happened since the last plan
            self.last_from_cache = False
            self._prime()
        else:
            self.last_from_cache = self._template is not None
        # _check_params validated the exact set; partial=True skips the
        # redundant per-node bookkeeping of the strict mode
        bound_q = bind_params(self.query, params, partial=True) if params else self.query
        if self._template is not None:
            plan = self.planner._try_instantiate(self._template, bound_q)
            if plan is not None:
                return plan
            self.last_from_cache = False
        # no usable cached strategy at this generation: plan the bound
        # query (one signature-cache lookup; full enumeration at worst)
        return self.planner.plan(bound_q)

    def run(self, **params: Any) -> QueryResult:
        """Execute with these bindings; returns the usual lazy result.

        Prepared execution uses bulk I/O accounting: the backend counters
        are bracketed once around the drain instead of once per record,
        which is the dominant Python cost on large outputs.  Totals are
        identical when the result is consumed on its own (the prepared
        pattern); drain interleaved results with ``Engine.query`` instead.
        """
        return self.planner.execute(self.plan(**params), accounting="bulk")

    def explain(self, **params: Any) -> Plan:
        """Alias of :meth:`plan`, mirroring ``Engine.explain``."""
        return self.plan(**params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        args = ", ".join(self.params) or "no params"
        return f"PreparedQuery({self.name!r}, {self.query!r}, {args})"
