"""The :class:`Engine` — one facade over every index and storage backend.

An engine owns a storage backend (any :class:`~repro.io.StorageBackend`:
the in-memory :class:`~repro.io.SimulatedDisk`, the file-backed
:class:`~repro.io.FileDisk`, or either wrapped in a
:class:`~repro.io.BufferManager`) and a namespace of indexes built on it.
All index kinds from the paper hang off ``create_*`` constructors and share
the uniform :class:`~repro.engine.protocols.Index` surface, so application
code never touches the concrete structures:

>>> from repro import Engine, Interval, Stab
>>> eng = Engine(block_size=16)
>>> _ = eng.create_interval_index("temporal", [Interval(1, 5), Interval(3, 9)])
>>> result = eng.query("temporal", Stab(4))      # lazy: no I/O yet
>>> sorted((iv.low, iv.high) for iv in result)   # streaming starts here
[(1, 5), (3, 9)]
>>> result.ios > 0 and result.bound is not None
True
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from types import MappingProxyType
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.analysis import lockdep
from repro.btree import BPlusTree
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.constraints.index import GeneralizedOneDimensionalIndex
from repro.constraints.relation import GeneralizedRelation
from repro.core.class_indexer import ClassIndexer
from repro.core.interval_manager import ExternalIntervalManager
from repro.durability import EpochManager, WriteAheadLog
from repro.durability.recovery import replay_wal
from repro.engine.collection import Collection
from repro.engine.planner import Plan, QueryPlanner
from repro.engine.queries import COMPOSED
from repro.engine.rebuilding import RebuildingIndex
from repro.engine.result import QueryResult
from repro.engine.session import EngineSession, RWLock
from repro.interval import Interval
from repro.io import BufferManager, FileDisk, SimulatedDisk
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs_tracer
from repro.metablock.geometry import PlanarPoint
from repro.pst import ExternalPST
from repro.records import record_key

DEFAULT_BLOCK_SIZE = 16

#: the write-ahead log lives next to the page file: ``<path>.wal``
WAL_SUFFIX = ".wal"


def _catalog_records(kind: str, index: Any) -> List[Any]:
    """The logical records the catalog persists for one index kind."""
    if kind == "interval":
        return index.intervals()
    if kind == "collection":
        return index.records()
    if kind == "key":
        return list(index.iter_pairs())
    if kind == "point":
        return index.items()
    if kind == "class":
        return index.objects()
    if kind == "constraint":
        return list(index.relation.tuples)
    raise ValueError(f"unknown catalog kind {kind!r}")


def _record_uid(record: Any) -> Optional[int]:
    """The integer uid a catalog record carries, if any.

    'key'-kind entries restore ``(key, value)`` pairs; the value is the
    uid-bearing record there.
    """
    if isinstance(record, tuple) and len(record) == 2:
        record = record[1]
    uid = getattr(record, "uid", None)
    return uid if isinstance(uid, int) else None


def advance_uid_floor(horizon: int) -> None:
    """Advance the process-wide uid counters past ``horizon``.

    Catalog restores use this through :func:`_advance_uid_counters`; a
    cluster router uses it directly, seeding its minting counter past the
    highest uid any shard reports (``uid_horizon`` in the server's
    ``stats``), so a restarted router can never re-mint a resident uid.
    """
    import itertools

    from repro.classes import hierarchy as _hierarchy
    from repro.metablock import geometry as _geometry

    from repro import interval as _interval

    if horizon < 0:
        return
    for module, attr in (
        (_interval, "_INTERVAL_UIDS"),
        (_hierarchy, "_OBJECT_UIDS"),
        (_geometry, "_POINT_UIDS"),
    ):
        counter = getattr(module, attr)
        current = next(counter)  # consumes one value; restart above both
        setattr(module, attr, itertools.count(max(current, horizon + 1)))


def _advance_uid_counters(records: Iterable[Any]) -> None:
    """Move the process-wide uid counters past every restored record's uid.

    Record uids are process-unique by construction; after a catalog restore
    the already-assigned uids re-enter this process, so the counters must
    skip past them or a freshly constructed record could collide with a
    restored one (breaking duplicate detection and union deduplication).
    """
    highest = -1
    for record in records:
        uid = _record_uid(record)
        if uid is not None:
            highest = max(highest, uid)
    advance_uid_floor(highest)


class Engine:
    """A database engine over the paper's I/O-efficient index structures.

    Parameters
    ----------
    backend:
        Any :class:`~repro.io.StorageBackend`.  Defaults to a fresh
        :class:`~repro.io.SimulatedDisk` of ``block_size`` records per page.
    block_size:
        Page capacity used when constructing the default backend.  Ignored
        when an explicit ``backend`` is supplied.
    buffer_pages:
        When given, wrap the backend in an LRU
        :class:`~repro.io.BufferManager` of that many resident pages
        (the paper's ``O(B^2)`` words of main memory correspond to
        ``buffer_pages=B``).
    """

    def __init__(
        self,
        backend: Any = None,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        buffer_pages: Optional[int] = None,
    ) -> None:
        self.backend = backend if backend is not None else SimulatedDisk(block_size)
        self.disk = (
            BufferManager(self.backend, buffer_pages) if buffer_pages else self.backend
        )
        self._indexes: Dict[str, Any] = {}
        #: kept for compatibility with callers that constructed sessions
        #: around it; sessions no longer hold it for reads (they pin an
        #: MVCC epoch and take a per-index latch instead)
        self._rwlock = RWLock("engine.session_rwlock", rank=lockdep.RANK_MUTEX)
        #: the global MVCC epoch clock: committed writes advance it,
        #: reader sessions pin it (see :mod:`repro.durability.mvcc`)
        self._epochs = EpochManager()
        #: serializes committed write turns engine-wide (reentrant: a
        #: write turn may issue nested commits, e.g. delete-by-query)
        self._write_mutex = lockdep.WitnessedMutex("engine.write_mutex")
        #: per-index-name structural latches: readers share one while
        #: draining, the committing writer takes it exclusively while
        #: applying — so a write to index A never blocks readers of B
        self._latches: Dict[str, RWLock] = {}
        self._latch_guard = threading.Lock()
        #: the attached :class:`~repro.durability.WriteAheadLog`, or
        #: ``None`` (in-memory engines run without one by default)
        self.wal: Optional[WriteAheadLog] = None
        #: per-index catalog spec (kind + construction parameters); what
        #: :meth:`checkpoint` serializes through the storage backend
        self._catalog: Dict[str, Dict[str, Any]] = {}
        #: one long-lived (plan-caching) planner per plain index, built
        #: lazily — constructing a planner per query would re-enumerate
        #: candidates every call and throw the plan cache away with it
        self._planners: Dict[str, QueryPlanner] = {}

    # ------------------------------------------------------------------ #
    # the commit kernel (every mutation is one committed write turn)
    # ------------------------------------------------------------------ #
    def _latch(self, name: str) -> RWLock:
        """The structural latch for one index name (created on first use)."""
        with self._latch_guard:
            latch = self._latches.get(name)
            if latch is None:
                # no_block: a latch holder must never wait on the platter —
                # that is the commit kernel's core promise, and the lockdep
                # witness enforces it at runtime
                latch = self._latches[name] = RWLock(
                    f"latch:{name}", no_block=True
                )
            return latch

    def _commit(
        self,
        name: str,
        fn: Callable[[], Any],
        op: Any = None,
    ) -> Any:
        """One committed write turn: apply → log → fsync → publish → GC.

        Inside the engine-wide write mutex the commit allocates its epoch,
        applies ``fn`` under the target index's exclusive latch (readers of
        *other* indexes are untouched; readers of this one wait only for
        the structural change, never for the fsync), and appends the WAL
        record — so log order equals epoch order.  The durability barrier
        (:meth:`~repro.durability.WriteAheadLog.sync_to`) runs *outside*
        the mutex: concurrent committers overlap here and group-commit one
        fsync.  Publication is ordered; the caller is only answered — the
        write acknowledged — after its epoch is both durable and visible.

        ``op`` is the WAL operation tuple (or a zero-argument callable
        producing it, evaluated after a successful apply; ``None`` skips
        logging).  A failed apply publishes an empty epoch so the epoch
        chain never stalls, and logs nothing.
        """
        lsn = None
        epoch: Optional[int] = None
        wait0 = time.perf_counter()
        try:
            with self._write_mutex:
                obs_metrics.REGISTRY.histogram("engine.write_mutex_wait_ms").observe(
                    (time.perf_counter() - wait0) * 1e3
                )
                epoch = self._epochs.begin()
                latch = self._latch(name)
                latch.acquire_write()
                self._epochs.set_write_epoch(epoch)
                try:
                    with obs_tracer.span(
                        "commit.apply", stats=self.io_stats(), index=name, epoch=epoch
                    ):
                        out = fn()
                finally:
                    self._epochs.clear_write_epoch()
                    latch.release_write()
                if self.wal is not None and op is not None:
                    logged = op() if callable(op) else op
                    if logged is not None:
                        with obs_tracer.span(
                            "wal.append", stats=self.io_stats(), index=name
                        ):
                            lsn = self.wal.append(epoch, logged)
            if lsn is not None:
                with obs_tracer.span("wal.sync", stats=self.io_stats(), lsn=lsn):
                    self.wal.sync_to(lsn)
        finally:
            if epoch is not None:
                with obs_tracer.span("epoch.publish", epoch=epoch):
                    self._epochs.publish(epoch)
        # version GC: physically reclaim tombstones no pinned reader can
        # see — with no readers pinned this purges the commit's own
        # tombstones before returning, so single-caller deletes stay
        # physically immediate
        index = self._indexes.get(name)
        if isinstance(index, Collection) and index.has_mvcc_state:
            with self._write_mutex:
                latch = self._latch(name)
                latch.acquire_write()
                try:
                    index.purge_versions(self._epochs.safe_epoch())
                finally:
                    latch.release_write()
        return out

    @contextmanager
    def read_turn(self, name: str) -> Iterator[int]:
        """One snapshot read turn: pin the current epoch, share the latch.

        Yields the pinned epoch.  The caller drains its result inside the
        scope and filters it with :meth:`visible_records` — records of
        commits published after the pin (or deleted at/before it) are
        residual-filtered out, so the answer is the oracle of the pinned
        epoch even while writers commit concurrently.
        """
        latch = self._latch(name)
        with self._epochs.pinned() as epoch:
            wait0 = time.perf_counter()
            latch.acquire_read()
            obs_metrics.REGISTRY.histogram("engine.read_latch_wait_ms").observe(
                (time.perf_counter() - wait0) * 1e3
            )
            try:
                with obs_tracer.span(
                    "engine.read_turn", stats=self.io_stats(), index=name, epoch=epoch
                ):
                    yield epoch
            finally:
                latch.release_read()

    @contextmanager
    def write_turn(self) -> Iterator[None]:
        """Hold the engine write mutex across several commits (reentrant).

        What :meth:`~repro.engine.session.EngineSession.delete_matching`
        uses: the victim query and the per-victim deletes run with no
        other writer in between.
        """
        with self._write_mutex:
            yield

    @property
    def epochs(self) -> EpochManager:
        """The engine's MVCC epoch clock."""
        return self._epochs

    def visible_records(self, name: str, records: List[Any], epoch: int) -> List[Any]:
        """Filter a drained result down to what ``epoch`` may see.

        Only collections carry version tags (and only while some version
        is newer than the GC horizon), so this is a no-op pass-through in
        the common case.  Plain indexes get per-turn consistency from the
        latch instead of snapshot semantics — the server documents that
        contract.
        """
        index = self._indexes.get(name)
        if isinstance(index, Collection) and index.has_mvcc_state:
            return [r for r in records if index.visible_at(record_key(r), epoch)]
        return records

    # ------------------------------------------------------------------ #
    # index creation
    # ------------------------------------------------------------------ #
    def _claim_name(self, name: str) -> None:
        """Reject duplicates *before* any blocks are allocated for the index."""
        if name in self._indexes:
            raise ValueError(f"an index named {name!r} already exists")

    def _register(self, name: str, index: Any, kind: str, **params: Any) -> Any:
        self._indexes[name] = index
        self._catalog[name] = {"kind": kind, "params": params}
        if isinstance(index, Collection):
            index.epochs = self._epochs
        return index

    def _create_op(self, name: str) -> Tuple[Any, ...]:
        """The WAL record for a just-registered index: entry + records.

        Mirrors the catalog checkpoint format, so recovery replays a
        create through the same ``_restore`` machinery — which is what
        makes WAL-only recovery (a crash before the first checkpoint)
        work for every index kind.
        """
        spec = self._catalog[name]
        records = _catalog_records(spec["kind"], self._indexes[name])
        entry = {"name": name, "kind": spec["kind"], "params": dict(spec["params"])}
        return ("create", entry, records)

    def create_interval_index(
        self, name: str, intervals: Iterable[Interval] = (), *, dynamic: bool = True
    ) -> ExternalIntervalManager:
        """Stabbing/intersection index (Proposition 2.2 + Section 3)."""
        items = list(intervals)

        def do() -> ExternalIntervalManager:
            self._claim_name(name)
            return self._register(
                name,
                ExternalIntervalManager(self.disk, items, dynamic=dynamic),
                "interval",
                dynamic=dynamic,
            )

        return self._commit(name, do, op=lambda: self._create_op(name))

    def create_class_index(
        self,
        name: str,
        hierarchy: ClassHierarchy,
        objects: Iterable[ClassObject] = (),
        *,
        method: str = "simple",
    ) -> ClassIndexer:
        """Full-extent class index (Theorems 2.6 / 4.7 or a baseline)."""
        items = list(objects)

        def do() -> ClassIndexer:
            self._claim_name(name)
            return self._register(
                name,
                ClassIndexer(self.disk, hierarchy, items, method=method),
                "class",
                method=method,
                hierarchy=hierarchy,
            )

        return self._commit(name, do, op=lambda: self._create_op(name))

    def create_constraint_index(
        self,
        name: str,
        relation: GeneralizedRelation,
        attribute: str,
        *,
        dynamic: bool = True,
    ) -> GeneralizedOneDimensionalIndex:
        """Generalized 1-D index over a constraint relation (Section 2.1)."""

        def do() -> GeneralizedOneDimensionalIndex:
            self._claim_name(name)
            return self._register(
                name,
                GeneralizedOneDimensionalIndex(
                    self.disk, relation, attribute, dynamic=dynamic
                ),
                "constraint",
                attribute=attribute,
                dynamic=dynamic,
                variables=list(relation.variables),
                relation_name=relation.name,
            )

        return self._commit(name, do, op=lambda: self._create_op(name))

    def create_point_index(
        self, name: str, points: Iterable[PlanarPoint] = ()
    ) -> RebuildingIndex:
        """Blocked priority search tree for 3-sided queries (Lemma 4.1).

        The PST itself is static; it is served through the
        :class:`~repro.engine.rebuilding.RebuildingIndex` adapter, which
        adds the full :class:`~repro.engine.protocols.MutableIndex` write
        surface (side-log inserts, tombstone deletes, bulk loads) via
        threshold-triggered global rebuilds — exactly the wholesale
        reconstruction Lemma 4.4 prescribes, with the I/Os charged.
        """
        pts = list(points)
        disk = self.disk

        def do() -> RebuildingIndex:
            self._claim_name(name)
            return self._register(
                name,
                RebuildingIndex(disk, lambda items: ExternalPST(disk, items), pts),
                "point",
            )

        return self._commit(name, do, op=lambda: self._create_op(name))

    def create_key_index(self, name: str, pairs: Iterable[Tuple[Any, Any]] = ()) -> BPlusTree:
        """Plain external B+-tree over ``(key, value)`` pairs (Section 1.4)."""
        items = list(pairs)

        def do() -> BPlusTree:
            self._claim_name(name)
            return self._register(
                name, BPlusTree.bulk_load(self.disk, items, name=name), "key"
            )

        return self._commit(name, do, op=lambda: self._create_op(name))

    def create_collection(
        self,
        name: str,
        intervals: Iterable[Interval] = (),
        *,
        dynamic: bool = True,
    ) -> Collection:
        """Multi-index interval :class:`~repro.engine.collection.Collection`.

        Owns an interval manager *plus* B+-trees over both endpoints, kept
        in sync by the write path (``insert``/``delete``/``update``/
        ``bulk_load``/``batch``); queries go through the cost-aware
        :class:`~repro.engine.planner.QueryPlanner` (see ``explain``).
        """
        items = list(intervals)

        def do() -> Collection:
            self._claim_name(name)
            return self._register(
                name,
                Collection.for_intervals(self.disk, items, name=name, dynamic=dynamic),
                "collection",
                dynamic=dynamic,
            )

        return self._commit(name, do, op=lambda: self._create_op(name))

    def drop_index(self, name: str) -> None:
        """Forget an index (and free its blocks when it knows how to).

        The name becomes immediately reusable by the ``create_*``
        constructors (and disappears from the persisted catalog at the
        next :meth:`checkpoint`).  Unknown names raise the same
        descriptive :class:`KeyError` as :meth:`index`.
        """

        def do() -> None:
            index = self.index(name)
            del self._indexes[name]
            self._catalog.pop(name, None)
            planner = self._planners.pop(name, None)
            if planner is not None:
                # prepared queries still holding this planner must re-plan
                # (and fail loudly against the destroyed index) rather than
                # serve a cached strategy over freed blocks
                planner.invalidate()
            destroy = getattr(index, "destroy", None)
            if callable(destroy):
                destroy()

        self._commit(name, do, op=("drop", name))

    # ------------------------------------------------------------------ #
    # namespace
    # ------------------------------------------------------------------ #
    def index(self, name: str) -> Any:
        try:
            return self._indexes[name]
        except KeyError as exc:
            raise KeyError(
                f"no index named {name!r}; have {sorted(self._indexes)}"
            ) from exc

    def __getitem__(self, name: str) -> Any:
        return self.index(name)

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def names(self) -> List[str]:
        return sorted(self._indexes)

    @property
    def indexes(self) -> Mapping[str, Any]:
        """Read-only live view of the index namespace (name -> index)."""
        return MappingProxyType(self._indexes)

    # ------------------------------------------------------------------ #
    # the query/update surface
    # ------------------------------------------------------------------ #
    def insert(self, name: str, *item: Any) -> None:
        """Insert a record into the named index.

        B+-tree indexes take ``engine.insert(name, key, value)``; every
        other index takes the single record object.  Inserting a record
        whose uid the index already holds raises a descriptive
        :class:`ValueError` instead of silently double-indexing it.

        Like every engine mutation, this is one committed write turn:
        applied under the index's latch, WAL-logged and fsynced (when a
        log is attached), and published as one MVCC epoch before the call
        returns — the returning call *is* the acknowledgement.
        """
        self._commit(
            name,
            lambda: self.index(name).insert(*item),
            op=("insert", name, item),
        )

    def delete(self, name: str, *item: Any) -> bool:
        """Delete a record from the named index; ``True`` when present.

        B+-tree indexes take ``engine.delete(name, key[, value])``; every
        other index takes the single record object (matched by uid).
        """
        outcome: List[bool] = []

        def do() -> bool:
            removed = bool(self.index(name).delete(*item))
            outcome.append(removed)
            return removed

        # a miss mutates nothing: log (and fsync) only actual removals
        return self._commit(
            name,
            do,
            op=lambda: ("delete", name, item) if outcome[0] else None,
        )

    def update(self, name: str, old: Any, new: Any) -> None:
        """Replace ``old`` with ``new`` in the named index.

        Collections do this natively (batch-aware); for every other index
        it is a delete + insert, raising :class:`KeyError` when ``old``
        is absent so a lost update never turns into a silent insert, and
        restoring ``old`` when the insert side fails.  B+-tree indexes
        take ``(key, value)`` pairs for both arguments, mirroring the
        :meth:`insert`/:meth:`delete` calling convention.
        """

        def do() -> None:
            index = self.index(name)
            native = getattr(index, "update", None)
            if callable(native):
                native(old, new)
                return

            def spread(item: Any) -> Tuple[Any, ...]:
                # B+-trees address records as (key, value); everything else
                # takes the single record object
                if isinstance(index, BPlusTree) and isinstance(item, tuple):
                    return tuple(item)
                return (item,)

            if not index.delete(*spread(old)):
                raise KeyError(f"cannot update {name!r}: record not present")
            try:
                index.insert(*spread(new))
            except BaseException:
                # restore through the bulk path: it works even where single
                # inserts are what just failed (static structures)
                restore = getattr(index, "bulk_load", None)
                if callable(restore):
                    restore([old])
                else:
                    index.insert(*spread(old))
                raise

        self._commit(name, do, op=("update", name, old, new))

    def bulk_load(self, name: str, items: Iterable[Any]) -> int:
        """Load a batch into the named index in one reorganisation.

        Routed to the index's native ``bulk_load`` (bottom-up B+-tree
        builds, global rebuilds) when it advertises the capability, with a
        per-record insert fallback otherwise; returns the number of
        records added.
        """
        batch = list(items)

        def do() -> int:
            index = self.index(name)
            bulk = getattr(index, "bulk_load", None)
            try:
                if callable(bulk):
                    return int(bulk(batch))
                count = 0
                for item in batch:
                    index.insert(item)
                    count += 1
                return count
            finally:
                # a bulk reorganisation changes costs wholesale: cached plan
                # strategies over this index must be re-costed (Collections
                # invalidate their own planner inside bulk_load)
                planner = self._planners.get(name)
                if planner is not None:
                    planner.invalidate()

        return self._commit(name, do, op=lambda: ("bulk", name, batch))

    def _planner_for(self, name: str, index: Any) -> QueryPlanner:
        """The long-lived planner for an index (Collections own their own).

        One planner — and therefore one plan cache — per index name,
        created lazily and replaced if the name was dropped and re-created
        over a different index object.
        """
        if isinstance(index, Collection):
            return index.planner
        planner = self._planners.get(name)
        if planner is None or planner.accessors[0].index is not index:
            planner = QueryPlanner.for_index(name, index, disk=self.disk)
            self._planners[name] = planner
        return planner

    def planner(self, name: str) -> QueryPlanner:
        """The named index's long-lived (plan-caching) query planner.

        Collections answer with their own multi-accessor planner; every
        other index gets the engine-held single-index planner :meth:`query`
        and :meth:`prepare` use.  Raises the usual :class:`KeyError` for
        unknown names.
        """
        return self._planner_for(name, self.index(name))

    def query(self, name: str, q: Any) -> QueryResult:
        """Answer one query descriptor lazily (no I/O until iteration).

        Plain descriptors go straight to the named index.  Composed algebra
        nodes (``And``/``Or``/``Not``/``Limit``/``OrderBy``) are routed
        through the :class:`~repro.engine.planner.QueryPlanner`:
        :class:`~repro.engine.collection.Collection` indexes plan across
        all their physical structures, every other index gets a
        single-index planner (pushdown of the cheapest supported part,
        residual ``matches`` post-filter for the rest).  Planners are
        long-lived — one per index — so repeated queries of the same shape
        hit the signature-keyed plan cache instead of re-enumerating
        candidates (see :meth:`prepare` for the fastest path).
        """
        index = self.index(name)
        if isinstance(index, Collection):
            return index.query(q)
        if isinstance(q, COMPOSED):
            return self._planner_for(name, index).query(q)
        result = index.query(q)
        if isinstance(result, QueryResult) and index.supports(q):
            # same trivial pushdown plan explain() reports for this query
            result.plan = Plan("index", name, q, None, index.cost(q))
        return result

    def explain(self, name: str, q: Any) -> Plan:
        """The :class:`~repro.engine.planner.Plan` that :meth:`query` would
        execute for ``q`` on the named index — structured, pure, no I/O.

        Executed results carry the identical plan as ``result.plan``.
        """
        index = self.index(name)
        if isinstance(index, Collection):
            return index.plan(q)
        return self._planner_for(name, index).plan(q)

    def prepare(self, name: str, q: Any) -> "PreparedQuery":
        """Plan ``q`` against the named index once; re-run it cheaply.

        ``q`` may contain :class:`~repro.engine.queries.Param` placeholders
        in scalar operand positions (``Stab(Param("x"))``); the returned
        :class:`~repro.engine.prepared.PreparedQuery` binds them per call:

        >>> stab = engine.prepare("temporal", Stab(Param("x")))   # doctest: +SKIP
        >>> stab.run(x=42.0).all()                                # doctest: +SKIP

        ``run``/``plan`` skip candidate enumeration entirely while the plan
        cache generation holds, and transparently re-plan after any
        invalidating write event (attach/detach, bulk loads, threshold
        rebuilds) — see :mod:`repro.engine.prepared`.
        """
        from repro.engine.prepared import PreparedQuery

        index = self.index(name)
        return PreparedQuery(
            name, q, self._planner_for(name, index), engine=self, index=index
        )

    def session(self) -> EngineSession:
        """A thread-safe :class:`~repro.engine.session.EngineSession` handle.

        All sessions of one engine share its readers-writer lock: queries
        drain under shared read turns, writes take exclusive turns, and
        each request's I/O is attributed to the issuing session (see the
        consistency model in :mod:`repro.engine.session`).  Open one
        session per thread or client connection — the session object
        itself is not shared between threads.
        """
        return EngineSession(self, self._rwlock)

    def query_many(self, queries: Iterable[Tuple[str, Any]]) -> List[QueryResult]:
        """Batch API: build one lazy result per ``(index_name, descriptor)``.

        Results are independent streams over the shared backend; each
        carries its own per-query I/O count, so a throughput workload can
        drain them in any order (or partially) and still report faithful
        per-query costs.
        """
        return [self.query(name, q) for name, q in queries]

    # ------------------------------------------------------------------ #
    # accounting / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def block_size(self) -> int:
        return self.disk.block_size

    def io_stats(self):
        """Live I/O counters of the backend."""
        return self.disk.stats

    def plan_cache_info(self) -> Dict[str, Any]:
        """Aggregated plan-cache counters across every live planner.

        Collections answer with their own planner's cache, plain indexes
        with the engine-held one; indexes never queried through a planner
        simply do not appear.  ``hit_ratio`` is ``None`` until the first
        plan lookup, so exporters can tell "no traffic" from "0% hits".
        """
        entries = hits = misses = 0
        per_index: Dict[str, Dict[str, int]] = {}
        for name in sorted(self._indexes):
            index = self._indexes[name]
            if isinstance(index, Collection):
                planner = index.planner
            else:
                planner = self._planners.get(name)
            if planner is None:
                continue
            info = planner.cache_info()
            per_index[name] = info
            entries += info["entries"]
            hits += info["hits"]
            misses += info["misses"]
        lookups = hits + misses
        return {
            "entries": entries,
            "hits": hits,
            "misses": misses,
            "hit_ratio": round(hits / lookups, 6) if lookups else None,
            "per_index": per_index,
        }

    def measure(self):
        """Scoped I/O measurement over the whole engine (see ``SimulatedDisk.measure``)."""
        return self.disk.measure()

    def block_count(self) -> int:
        """Blocks used by all indexes together (the space bound)."""
        return sum(ix.block_count() for ix in self._indexes.values())

    def flush(self) -> None:
        """Write back any buffered dirty pages."""
        flush = getattr(self.disk, "flush", None)
        if callable(flush):
            flush()

    # ------------------------------------------------------------------ #
    # the persistent catalog
    # ------------------------------------------------------------------ #
    def catalog(self) -> List[Dict[str, Any]]:
        """The catalog as structured data (what :meth:`checkpoint` persists).

        One entry per index: name, kind, construction parameters, and the
        current live record count.
        """
        out = []
        for name in sorted(self._catalog):
            spec = self._catalog[name]
            index = self._indexes[name]
            count = getattr(index, "live_count", None)
            if count is None:
                count = len(index) if hasattr(index, "__len__") else None
            out.append(
                {
                    "name": name,
                    "kind": spec["kind"],
                    "params": {
                        k: v for k, v in spec["params"].items() if k != "hierarchy"
                    },
                    "records": count,
                }
            )
        return out

    def uid_horizon(self) -> int:
        """The highest record uid resident in any index (``-1`` when empty).

        Served to clients through the ``stats`` command so a cluster
        router can seed its uid-minting counter past every shard's
        resident records on open (see :func:`advance_uid_floor`).
        """
        highest = -1
        for name in self._catalog:
            spec = self._catalog[name]
            for record in _catalog_records(spec["kind"], self._indexes[name]):
                uid = _record_uid(record)
                if uid is not None:
                    highest = max(highest, uid)
        return highest

    def checkpoint(self) -> int:
        """Serialize the catalog through the storage backend; returns the root id.

        For every index the live logical records are written to a chain of
        data blocks (``O(n/B)`` writes) and an entry — name, kind,
        construction parameters, chain head — is recorded in a root
        catalog block whose id goes into the backend's ``meta`` store.
        :meth:`open` reverses the process.  Superseded catalog blocks from
        a previous checkpoint are freed first, so repeated checkpoints do
        not leak space.

        With a WAL attached the checkpoint is also the log's horizon: the
        commit stream is quiesced, the catalog is stamped with the
        ``durable_epoch`` it covers and made durable (the backend's
        ``sync`` fsyncs pages and sidecar), and only *then* is the log
        truncated — a crash anywhere in between replays a tail the
        ``durable_epoch`` filter recognises as already applied.
        """
        meta = getattr(self.backend, "meta", None)
        if meta is None:
            raise TypeError(
                f"backend {type(self.backend).__name__} has no meta store; "
                "cannot persist a catalog"
            )
        with self._write_mutex:
            # wait for in-flight commits to publish: the checkpoint must
            # cover a prefix of the epoch order, not race its tail
            self._epochs.quiesce()
            for name, index in sorted(self._indexes.items()):
                if isinstance(index, Collection) and index.has_mvcc_state:
                    latch = self._latch(name)
                    latch.acquire_write()
                    try:
                        index.purge_versions(self._epochs.safe_epoch())
                    finally:
                        latch.release_write()
            for bid in meta.get("catalog_blocks", ()):
                self.disk.free(bid)
            blocks: List[int] = []
            entries: List[Dict[str, Any]] = []
            B = self.block_size
            for name in sorted(self._catalog):
                spec = self._catalog[name]
                records = _catalog_records(spec["kind"], self._indexes[name])
                head = None
                for start in reversed(range(0, len(records), B)):
                    chunk = records[start : start + B]
                    block = self.disk.allocate(
                        records=list(chunk), header={"next": head}
                    )
                    head = block.block_id
                    blocks.append(block.block_id)
                entries.append(
                    {
                        "name": name,
                        "kind": spec["kind"],
                        "params": dict(spec["params"]),
                        "head": head,
                        "count": len(records),
                    }
                )
            root = self.disk.allocate(
                records=[], header={"entries": entries, "format": 1}
            )
            blocks.append(root.block_id)
            meta["catalog_root"] = root.block_id
            meta["catalog_blocks"] = blocks
            meta["durable_epoch"] = self._epochs.current
            self.flush()
            sync = getattr(self.backend, "sync", None)
            if callable(sync):
                # the checkpoint is the one place a durability barrier runs
                # under the write mutex: commits are quiesced, every latch
                # was released above, and the truncate that follows *must*
                # happen-after this sync — the barrier belongs inside
                # lint: allow(blocking-under-mutex)
                sync()
            if self.wal is not None:
                self.wal.truncate()
        return root.block_id

    @classmethod
    def open(
        cls,
        path: str,
        *,
        buffer_pages: Optional[int] = None,
        wal: bool = True,
        commit_latency: float = 0.0,
    ) -> "Engine":
        """Reopen an engine from a page file written by a prior process.

        Reads the catalog chain back (``O(n/B)`` I/Os) and restores every
        index through its bulk constructor — a global rebuild, *not* a
        replay of per-record inserts — so queries answer with the same
        results and within the same I/O bounds as the original engine.
        The dead blocks of the previous incarnation are freed and the page
        file compacted, keeping the space bound at ``O(n/B)``.

        With ``wal=True`` (the default) recovery then replays the
        write-ahead log at ``path + ".wal"``: every commit acknowledged
        after the restored checkpoint — including after a crash that never
        reached :meth:`close` — is re-applied, the log is re-attached for
        the new incarnation's writes, and a fresh checkpoint truncates it.
        ``wal=False`` opts out (checkpoint-only durability, the pre-WAL
        behaviour).
        """
        backend = FileDisk.open(path)
        engine = cls(backend, buffer_pages=buffer_pages)
        root_id = backend.meta.get("catalog_root")
        durable_epoch = int(backend.meta.get("durable_epoch", 0))
        if root_id is not None:
            stale = set(backend.block_ids())
            root = engine.disk.read(root_id)
            for entry in root.header["entries"]:
                records: List[Any] = []
                head = entry["head"]
                while head is not None:
                    block = engine.disk.read(head)
                    records.extend(block.records)
                    head = block.header["next"]
                _advance_uid_counters(records)
                engine._restore(entry, records)
        # the restore itself ran commits and advanced the clock; realign to
        # the epoch the checkpoint covers so WAL-tail filtering is exact
        engine._epochs.advance_to(durable_epoch)
        replayed = 0
        if wal:
            replayed = engine.attach_wal(
                path + WAL_SUFFIX, durable_epoch=durable_epoch, checkpoint=False,
                commit_latency=commit_latency,
            )
        if root_id is None and replayed == 0:
            # nothing restored, nothing replayed: keep the fast no-op open
            return engine
        if root_id is not None:
            # everything that predates the restore — the consumed catalog
            # chain and the previous incarnation's structure blocks — is dead
            for bid in stale:
                engine.disk.free(bid)
            backend.meta.pop("catalog_root", None)
            backend.meta["catalog_blocks"] = []
            backend.compact()
        # checkpoint immediately: compact() rewrote the page file and the
        # restore consumed the old catalog chain, so a process that exits
        # between here and close() must find a sidecar + catalog that
        # describe the file as it now is, not as it was before the restore
        engine.checkpoint()
        return engine

    def attach_wal(
        self,
        path: Optional[str] = None,
        *,
        replay: bool = True,
        checkpoint: bool = True,
        fsync: bool = True,
        durable_epoch: Optional[int] = None,
        commit_latency: float = 0.0,
    ) -> int:
        """Open (or create) a write-ahead log and attach it to this engine.

        From the attach onwards every committed mutation appends a
        checksummed record and is acknowledged only after the record is
        fsync-durable (see :meth:`_commit`).  If the log already holds a
        tail — the engine's last incarnation crashed — and ``replay`` is
        true, the tail past ``durable_epoch`` (defaulting to the current
        epoch) is re-applied *before* attaching.  On a persistent backend
        ``checkpoint=True`` then writes a checkpoint and truncates the log
        — both to fold in any replayed state and to establish the log's
        baseline (sidecar + ``durable_epoch``) for a fresh database, so a
        crash at *any* later point finds a reopenable checkpoint to replay
        against.  Returns the number of replayed records.
        """
        if self.wal is not None:
            raise RuntimeError("engine already has a WAL attached")
        if path is None:
            file_path = getattr(self.backend, "path", None)
            if file_path is None:
                raise TypeError(
                    "backend has no path; pass an explicit WAL path"
                )
            path = str(file_path) + WAL_SUFFIX
        wal = WriteAheadLog(path, stats=self.io_stats(), fsync=fsync,
                            commit_latency=commit_latency)
        replayed = 0
        try:
            if replay:
                baseline = (
                    self._epochs.current if durable_epoch is None else durable_epoch
                )
                replayed = replay_wal(self, wal, baseline)
        except Exception:
            wal.close()
            raise
        self.wal = wal
        if checkpoint and getattr(self.backend, "persistent", False):
            self.checkpoint()
        return replayed

    def _restore(self, entry: Dict[str, Any], records: List[Any]) -> None:
        """Rebuild one catalog entry through the matching ``create_*``."""
        kind, name, params = entry["kind"], entry["name"], entry["params"]
        if kind == "interval":
            self.create_interval_index(name, records, dynamic=params["dynamic"])
        elif kind == "collection":
            self.create_collection(name, records, dynamic=params["dynamic"])
        elif kind == "key":
            self.create_key_index(name, records)
        elif kind == "point":
            self.create_point_index(name, records)
        elif kind == "class":
            self.create_class_index(
                name, params["hierarchy"], records, method=params["method"]
            )
        elif kind == "constraint":
            relation = GeneralizedRelation(
                params["variables"], records, name=params["relation_name"]
            )
            self.create_constraint_index(
                name, relation, params["attribute"], dynamic=params["dynamic"]
            )
        else:
            raise ValueError(f"unknown catalog kind {kind!r}")

    def close(self) -> None:
        """Checkpoint persistent backends, flush buffers and close them.

        On a named :class:`~repro.io.FileDisk`, the catalog is serialized
        first — even when empty, so a dropped index stays dropped instead
        of being resurrected by a stale catalog root — and ``Engine.open``
        in a later process restores exactly the surviving indexes;
        in-memory and temporary backends skip the checkpoint.
        ``with Engine(...) as engine: ...`` calls this automatically.
        """
        # a second close() must stay a no-op, not checkpoint a closed disk
        if getattr(self.backend, "closed", False):
            return
        if getattr(self.backend, "persistent", False):
            self.checkpoint()
        self.flush()
        close = getattr(self.backend, "close", None)
        if callable(close):
            close()
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self.backend).__name__
        return (
            f"Engine(backend={kind}, B={self.block_size}, "
            f"indexes={self.names()})"
        )
