"""The :class:`Engine` — one facade over every index and storage backend.

An engine owns a storage backend (any :class:`~repro.io.StorageBackend`:
the in-memory :class:`~repro.io.SimulatedDisk`, the file-backed
:class:`~repro.io.FileDisk`, or either wrapped in a
:class:`~repro.io.BufferManager`) and a namespace of indexes built on it.
All index kinds from the paper hang off ``create_*`` constructors and share
the uniform :class:`~repro.engine.protocols.Index` surface, so application
code never touches the concrete structures:

>>> from repro import Engine, Interval, Stab
>>> eng = Engine(block_size=16)
>>> _ = eng.create_interval_index("temporal", [Interval(1, 5), Interval(3, 9)])
>>> result = eng.query("temporal", Stab(4))      # lazy: no I/O yet
>>> sorted((iv.low, iv.high) for iv in result)   # streaming starts here
[(1, 5), (3, 9)]
>>> result.ios > 0 and result.bound is not None
True
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.btree import BPlusTree
from repro.classes.hierarchy import ClassHierarchy, ClassObject
from repro.constraints.index import GeneralizedOneDimensionalIndex
from repro.constraints.relation import GeneralizedRelation
from repro.core.class_indexer import ClassIndexer
from repro.core.interval_manager import ExternalIntervalManager
from repro.engine.collection import Collection
from repro.engine.planner import Plan, QueryPlanner
from repro.engine.queries import COMPOSED
from repro.engine.result import QueryResult
from repro.interval import Interval
from repro.io import BufferManager, SimulatedDisk
from repro.metablock.geometry import PlanarPoint
from repro.pst import ExternalPST

DEFAULT_BLOCK_SIZE = 16


class Engine:
    """A database engine over the paper's I/O-efficient index structures.

    Parameters
    ----------
    backend:
        Any :class:`~repro.io.StorageBackend`.  Defaults to a fresh
        :class:`~repro.io.SimulatedDisk` of ``block_size`` records per page.
    block_size:
        Page capacity used when constructing the default backend.  Ignored
        when an explicit ``backend`` is supplied.
    buffer_pages:
        When given, wrap the backend in an LRU
        :class:`~repro.io.BufferManager` of that many resident pages
        (the paper's ``O(B^2)`` words of main memory correspond to
        ``buffer_pages=B``).
    """

    def __init__(
        self,
        backend: Any = None,
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        buffer_pages: Optional[int] = None,
    ) -> None:
        self.backend = backend if backend is not None else SimulatedDisk(block_size)
        self.disk = (
            BufferManager(self.backend, buffer_pages) if buffer_pages else self.backend
        )
        self._indexes: Dict[str, Any] = {}

    # ------------------------------------------------------------------ #
    # index creation
    # ------------------------------------------------------------------ #
    def _claim_name(self, name: str) -> None:
        """Reject duplicates *before* any blocks are allocated for the index."""
        if name in self._indexes:
            raise ValueError(f"an index named {name!r} already exists")

    def _register(self, name: str, index: Any) -> Any:
        self._indexes[name] = index
        return index

    def create_interval_index(
        self, name: str, intervals: Iterable[Interval] = (), *, dynamic: bool = True
    ) -> ExternalIntervalManager:
        """Stabbing/intersection index (Proposition 2.2 + Section 3)."""
        self._claim_name(name)
        return self._register(
            name, ExternalIntervalManager(self.disk, intervals, dynamic=dynamic)
        )

    def create_class_index(
        self,
        name: str,
        hierarchy: ClassHierarchy,
        objects: Iterable[ClassObject] = (),
        *,
        method: str = "simple",
    ) -> ClassIndexer:
        """Full-extent class index (Theorems 2.6 / 4.7 or a baseline)."""
        self._claim_name(name)
        return self._register(name, ClassIndexer(self.disk, hierarchy, objects, method=method))

    def create_constraint_index(
        self,
        name: str,
        relation: GeneralizedRelation,
        attribute: str,
        *,
        dynamic: bool = True,
    ) -> GeneralizedOneDimensionalIndex:
        """Generalized 1-D index over a constraint relation (Section 2.1)."""
        self._claim_name(name)
        return self._register(
            name,
            GeneralizedOneDimensionalIndex(self.disk, relation, attribute, dynamic=dynamic),
        )

    def create_point_index(
        self, name: str, points: Iterable[PlanarPoint] = ()
    ) -> ExternalPST:
        """Blocked priority search tree for 3-sided queries (Lemma 4.1)."""
        self._claim_name(name)
        return self._register(name, ExternalPST(self.disk, points))

    def create_key_index(self, name: str, pairs: Iterable[Tuple[Any, Any]] = ()) -> BPlusTree:
        """Plain external B+-tree over ``(key, value)`` pairs (Section 1.4)."""
        self._claim_name(name)
        return self._register(name, BPlusTree.bulk_load(self.disk, pairs, name=name))

    def create_collection(
        self,
        name: str,
        intervals: Iterable[Interval] = (),
        *,
        dynamic: bool = True,
    ) -> Collection:
        """Multi-index interval :class:`~repro.engine.collection.Collection`.

        Owns an interval manager *plus* B+-trees over both endpoints, kept
        in sync on insert; queries go through the cost-aware
        :class:`~repro.engine.planner.QueryPlanner` (see ``explain``).
        """
        self._claim_name(name)
        return self._register(
            name, Collection.for_intervals(self.disk, intervals, name=name, dynamic=dynamic)
        )

    def drop_index(self, name: str) -> None:
        """Forget an index (and free its blocks when it knows how to).

        The name becomes immediately reusable by the ``create_*``
        constructors.  Unknown names raise the same descriptive
        :class:`KeyError` as :meth:`index`.
        """
        index = self.index(name)
        del self._indexes[name]
        destroy = getattr(index, "destroy", None)
        if callable(destroy):
            destroy()

    # ------------------------------------------------------------------ #
    # namespace
    # ------------------------------------------------------------------ #
    def index(self, name: str) -> Any:
        try:
            return self._indexes[name]
        except KeyError as exc:
            raise KeyError(
                f"no index named {name!r}; have {sorted(self._indexes)}"
            ) from exc

    def __getitem__(self, name: str) -> Any:
        return self.index(name)

    def __contains__(self, name: str) -> bool:
        return name in self._indexes

    def names(self) -> List[str]:
        return sorted(self._indexes)

    @property
    def indexes(self) -> Mapping[str, Any]:
        """Read-only live view of the index namespace (name -> index)."""
        return MappingProxyType(self._indexes)

    # ------------------------------------------------------------------ #
    # the query/update surface
    # ------------------------------------------------------------------ #
    def insert(self, name: str, *item: Any) -> None:
        """Insert a record into the named index.

        B+-tree indexes take ``engine.insert(name, key, value)``; every
        other index takes the single record object.
        """
        self.index(name).insert(*item)

    def query(self, name: str, q: Any) -> QueryResult:
        """Answer one query descriptor lazily (no I/O until iteration).

        Plain descriptors go straight to the named index.  Composed algebra
        nodes (``And``/``Or``/``Not``/``Limit``/``OrderBy``) are routed
        through the :class:`~repro.engine.planner.QueryPlanner`:
        :class:`~repro.engine.collection.Collection` indexes plan across
        all their physical structures, every other index gets a
        single-index planner (pushdown of the cheapest supported part,
        residual ``matches`` post-filter for the rest).
        """
        index = self.index(name)
        if isinstance(index, Collection):
            return index.query(q)
        if isinstance(q, COMPOSED):
            return QueryPlanner.for_index(name, index, disk=self.disk).query(q)
        result = index.query(q)
        if isinstance(result, QueryResult) and index.supports(q):
            # same trivial pushdown plan explain() reports for this query
            result.plan = Plan("index", name, q, None, index.cost(q))
        return result

    def explain(self, name: str, q: Any) -> Plan:
        """The :class:`~repro.engine.planner.Plan` that :meth:`query` would
        execute for ``q`` on the named index — structured, pure, no I/O.

        Executed results carry the identical plan as ``result.plan``.
        """
        index = self.index(name)
        if isinstance(index, Collection):
            return index.plan(q)
        return QueryPlanner.for_index(name, index, disk=self.disk).plan(q)

    def query_many(self, queries: Iterable[Tuple[str, Any]]) -> List[QueryResult]:
        """Batch API: build one lazy result per ``(index_name, descriptor)``.

        Results are independent streams over the shared backend; each
        carries its own per-query I/O count, so a throughput workload can
        drain them in any order (or partially) and still report faithful
        per-query costs.
        """
        return [self.query(name, q) for name, q in queries]

    # ------------------------------------------------------------------ #
    # accounting / lifecycle
    # ------------------------------------------------------------------ #
    @property
    def block_size(self) -> int:
        return self.disk.block_size

    def io_stats(self):
        """Live I/O counters of the backend."""
        return self.disk.stats

    def measure(self):
        """Scoped I/O measurement over the whole engine (see ``SimulatedDisk.measure``)."""
        return self.disk.measure()

    def block_count(self) -> int:
        """Blocks used by all indexes together (the space bound)."""
        return sum(ix.block_count() for ix in self._indexes.values())

    def flush(self) -> None:
        """Write back any buffered dirty pages."""
        flush = getattr(self.disk, "flush", None)
        if callable(flush):
            flush()

    def close(self) -> None:
        """Flush buffers and close closeable backends (e.g. ``FileDisk``)."""
        self.flush()
        close = getattr(self.backend, "close", None)
        if callable(close):
            close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self.backend).__name__
        return (
            f"Engine(backend={kind}, B={self.block_size}, "
            f"indexes={self.names()})"
        )
