"""Multi-index ``Collection``: several physical structures, one record set.

The paper gives one provably-good structure per query shape; a real
workload composes shapes.  A :class:`Collection` owns *several* physical
indexes over one logical set of records — the canonical interval
collection (:meth:`Collection.for_intervals`) keeps

* an :class:`~repro.core.ExternalIntervalManager` (stabbing /
  intersection, Theorem 3.2/3.7),
* a B+-tree over **low** endpoints, and
* a B+-tree over **high** endpoints,

all on the same storage backend, kept in sync by :meth:`insert`.  Queries
go through a :class:`~repro.engine.planner.QueryPlanner` that picks the
cheapest physical index per shape: ``Stab``/``Range`` run on the interval
manager, ``EndpointRange`` on the matching endpoint tree, conjunctions
push the cheapest conjunct down and post-filter the rest, disjunctions
union deduplicated subplans, and anything else (e.g. a bare ``Not``)
falls back to a full scan of the low-endpoint tree filtered through the
query's ``matches`` oracle.

A ``Collection`` itself satisfies the
:class:`~repro.engine.protocols.Index` protocol, so it registers in the
:class:`~repro.engine.Engine` namespace like any other index
(``engine.create_collection(...)``) and answers ``engine.query`` /
``engine.explain`` calls.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, List, Optional

from repro.analysis.complexity import log_b
from repro.engine.planner import Accessor, Plan, QueryPlanner
from repro.engine.protocols import Bound
from repro.engine.queries import EndpointRange, Range, Stab
from repro.engine.result import QueryResult


class Collection:
    """Several physical indexes over one logical record set.

    Build one with :meth:`for_intervals` (the canonical configuration) or
    assemble a custom one by calling :meth:`attach` per physical index.
    The collection keeps the logical records in memory as the brute-force
    :meth:`oracle` substrate — the planner's answers are always checkable
    against ``[r for r in records if q.matches(r)]``.
    """

    def __init__(self, disk: Any, *, name: str = "collection") -> None:
        self.disk = disk
        self.name = name
        self._records: List[Any] = []
        self._accessors: List[Accessor] = []
        self._inserters: List[Callable[[Any], None]] = []
        self._planner = QueryPlanner(self._accessors, disk=disk)

    # ------------------------------------------------------------------ #
    # assembly
    # ------------------------------------------------------------------ #
    def attach(
        self,
        name: str,
        index: Any,
        *,
        translate: Callable[[Any], Optional[Any]],
        run: Callable[[Any], Iterable[Any]],
        insert: Optional[Callable[[Any], None]] = None,
        scan: Optional[Callable[[], Iterable[Any]]] = None,
        scan_bound: Optional[Callable[[], Bound]] = None,
    ) -> Any:
        """Attach one physical index.

        ``translate`` maps a logical query node to this index's query (or
        ``None``); ``run`` streams logical records for a translated query;
        ``insert`` (when given) is called on every :meth:`insert` so the
        index stays in sync; ``scan``/``scan_bound`` advertise the
        full-scan fallback.  Earlier-attached indexes win cost ties.
        """
        self._accessors.append(
            Accessor(
                name=name,
                index=index,
                translate=translate,
                run=run,
                scan=scan,
                scan_bound=scan_bound,
                rewrite=getattr(index, "bind", None),
            )
        )
        if insert is not None:
            self._inserters.append(insert)
        return index

    @classmethod
    def for_intervals(
        cls,
        disk: Any,
        intervals: Iterable[Any] = (),
        *,
        name: str = "intervals",
        dynamic: bool = True,
    ) -> "Collection":
        """The canonical interval collection (manager + endpoint B+-trees)."""
        from repro.btree import BPlusTree
        from repro.core.interval_manager import ExternalIntervalManager

        items = list(intervals)
        coll = cls(disk, name=name)
        coll._records = list(items)

        manager = ExternalIntervalManager(disk, items, dynamic=dynamic)
        coll.attach(
            "interval-manager",
            manager,
            translate=lambda q: q if isinstance(q, (Stab, Range)) else None,
            run=lambda pq: manager.query(pq),
            # attached first: on static collections manager.insert raises
            # before any other physical index has been touched
            insert=manager.insert,
        )

        def endpoint_tree(side: str) -> BPlusTree:
            tree = BPlusTree.bulk_load(
                disk,
                ((getattr(iv, side), iv) for iv in items),
                name=f"{side}-endpoints",
            )

            def translate(q: Any) -> Optional[Any]:
                if isinstance(q, EndpointRange) and q.side == side:
                    return Range(
                        q.low,
                        q.high,
                        min_inclusive=q.min_inclusive,
                        max_inclusive=q.max_inclusive,
                    )
                return None

            coll.attach(
                f"{side}-endpoints",
                tree,
                translate=translate,
                run=lambda pq: (iv for _, iv in tree.query(pq)),
                insert=lambda iv: tree.insert(getattr(iv, side), iv),
                # only one scan provider is needed; the low tree volunteers
                scan=(lambda: (iv for _, iv in tree.iter_pairs())) if side == "low" else None,
                # priced arithmetically (leaves are at least half full, so a
                # full scan reads <= 2n/B leaf blocks plus the root path) —
                # walking the tree to count blocks here would itself cost
                # O(n/B) per plan() call
                scan_bound=(
                    (
                        lambda: Bound.of(
                            "log_B n + 2n/B (full scan)",
                            lambda t, tree=tree: log_b(max(tree.size, 2), tree.branching)
                            + 2.0 * max(tree.size, 1) / tree.branching,
                        )
                    )
                    if side == "low"
                    else None
                ),
            )
            return tree

        endpoint_tree("low")
        endpoint_tree("high")
        return coll

    # ------------------------------------------------------------------ #
    # the uniform Index surface
    # ------------------------------------------------------------------ #
    def insert(self, record: Any) -> None:
        """Insert one logical record into every physical index."""
        # the manager raises on static collections *before* any state changes
        for insert in self._inserters:
            insert(record)
        self._records.append(record)

    def query(self, q: Any) -> QueryResult:
        """Plan ``q``, execute the cheapest plan, return the lazy result.

        The executed plan rides along as ``result.plan`` and is identical
        to what :meth:`plan` / ``Engine.explain`` report for the same query.
        """
        return self._planner.query(q)

    def plan(self, q: Any) -> Plan:
        """The plan :meth:`query` would execute (pure; no I/O)."""
        return self._planner.plan(q)

    explain = plan

    def supports(self, q: Any) -> bool:
        """Whether some plan serves ``q`` (the scan fallback makes this broad)."""
        try:
            self._planner.plan(q)
        except TypeError:
            return False
        return True

    def cost(self, q: Any) -> Bound:
        """The predicted bound of the plan :meth:`query` would choose."""
        return self._planner.plan(q).bound

    def oracle(self, q: Any) -> List[Any]:
        """Brute-force answer over the in-memory records (the test oracle).

        ``Limit`` is honoured as a cap, ``OrderBy`` as a sort, mirroring
        the planner's modifier semantics.
        """
        from repro.engine.queries import Limit, OrderBy

        base, modifiers = QueryPlanner._peel(q)
        out = [r for r in self._records if base.matches(r)]
        for m in modifiers:
            if isinstance(m, OrderBy):
                out.sort(key=m.key_fn(), reverse=m.reverse)
            elif isinstance(m, Limit):
                out = out[: m.n]
        return out

    def block_count(self) -> int:
        """Blocks used by all physical indexes together."""
        return sum(acc.index.block_count() for acc in self._accessors)

    def io_stats(self):
        """Live I/O counters of the shared backing store."""
        return self.disk.stats

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #
    @property
    def physical(self) -> List[str]:
        """Names of the attached physical indexes, in attachment order."""
        return [acc.name for acc in self._accessors]

    def records(self) -> List[Any]:
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._records)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Collection({self.name!r}, n={len(self)}, "
            f"physical={self.physical})"
        )
